//! Hazard-pointer safe memory reclamation.
//!
//! The paper's queues sidestep reclamation by recycling nodes through a
//! type-stable free list (an arena in this reproduction). For the idiomatic
//! heap-allocated `MsQueue<T>` in `msq-core` — where nodes are `Box`es that
//! must eventually be dropped — something stronger is needed: a dequeuer
//! may free a node another thread still holds a raw pointer to. This crate
//! implements Michael's hazard-pointer scheme (the historical successor to
//! this very paper): readers publish the pointers they are about to
//! dereference in single-writer/multi-reader slots; threads that retire
//! nodes defer the actual `drop` until a scan shows no hazard slot mentions
//! them.
//!
//! The implementation is deliberately compact but complete: per-thread slot
//! acquisition/release, bounded hazards per thread, amortized O(R) scans,
//! and an orphan list so nodes retired by exiting threads are adopted
//! rather than leaked.
//!
//! # Example
//!
//! ```
//! use msq_hazard::{Domain, HazardPointer};
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! static DOMAIN: Domain = Domain::new();
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(42_u64)));
//!
//! let mut hazard = HazardPointer::new(&DOMAIN);
//! let protected = hazard.protect(&shared);
//! assert!(!protected.is_null());
//! // Safety: `protect` guarantees the node cannot be freed while held.
//! assert_eq!(unsafe { *protected }, 42);
//! hazard.clear();
//!
//! // Retiring transfers ownership to the domain, which drops it once no
//! // hazard pointer protects it.
//! let old = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! unsafe { DOMAIN.retire(old) };
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum number of threads that may simultaneously hold hazard pointers
/// in one domain.
pub const MAX_SLOTS: usize = 512;

/// Retired-list length that triggers a reclamation scan. Chosen so scans
/// amortize to O(1) per retire while bounding unreclaimed garbage at
/// O(`MAX_SLOTS`).
const SCAN_THRESHOLD: usize = 128;

struct Retired {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// Retired nodes are owned by the domain; the raw pointer is not shared
// until dropped.
unsafe impl Send for Retired {}

/// A reclamation domain: a fixed array of hazard slots plus an orphan list
/// for retirements from exited threads.
///
/// Domains are usually `static`; every structure sharing a domain also
/// shares its slots and scan costs.
pub struct Domain {
    slots: [Slot; MAX_SLOTS],
    orphans: Mutex<Vec<Retired>>,
    /// Upper bound on slots ever used, to shorten scans.
    high_water: AtomicUsize,
}

struct Slot {
    /// 0 = free, 1 = owned by some live thread.
    owner: AtomicUsize,
    hazard: AtomicPtr<u8>,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    owner: AtomicUsize::new(0),
    hazard: AtomicPtr::new(std::ptr::null_mut()),
};

impl Domain {
    /// Creates an empty domain (const, so domains can be `static`).
    pub const fn new() -> Self {
        Domain {
            slots: [EMPTY_SLOT; MAX_SLOTS],
            orphans: Mutex::new(Vec::new()),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Retires `ptr` for deferred destruction via `Box::from_raw`.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from `Box::into_raw`, must not be reachable by
    /// new readers (it has been unlinked from every shared location), and
    /// must not be retired twice.
    pub unsafe fn retire<T>(&'static self, ptr: *mut T) {
        unsafe fn drop_box<T>(p: *mut u8) {
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        self.retire_with(ptr.cast::<u8>(), drop_box::<T>);
    }

    /// Retires `ptr` with a custom destructor.
    ///
    /// # Safety
    ///
    /// As [`Domain::retire`]; additionally `drop_fn` must be safe to call
    /// exactly once on `ptr` after no hazard pointer protects it.
    pub unsafe fn retire_with(&'static self, ptr: *mut u8, drop_fn: unsafe fn(*mut u8)) {
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            let participant = local.participant_mut(self);
            participant.retired.push(Retired { ptr, drop_fn });
            if participant.retired.len() >= SCAN_THRESHOLD {
                let mut retired = std::mem::take(&mut participant.retired);
                self.scan(&mut retired);
                participant.retired = retired;
            }
        });
    }

    /// Drops every retired node not currently protected. Called
    /// automatically; exposed for tests and for quiescent teardown.
    pub fn eager_scan(&'static self) {
        let mut batch = Vec::new();
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            let participant = local.participant_mut(self);
            batch.append(&mut participant.retired);
        });
        self.scan(&mut batch);
        if !batch.is_empty() {
            LOCAL.with(|local| {
                let mut local = local.borrow_mut();
                local.participant_mut(self).retired.append(&mut batch);
            });
        }
    }

    /// Whether any hazard slot currently protects `ptr`.
    ///
    /// A `false` answer is advisory: a reader may publish `ptr` right
    /// after the scan, so this alone never justifies freeing memory.
    /// It is intended as a *reuse* gate — e.g. the segment pool in
    /// `msq-core`'s `SegQueue` recycles an unlinked segment only when no
    /// slot mentions it, falling back to `retire` otherwise. The race is
    /// benign there because readers re-validate reachability after
    /// publishing, and an unlinked segment fails that re-validation.
    pub fn is_protected(&self, ptr: *mut u8) -> bool {
        if ptr.is_null() {
            return false;
        }
        let limit = self.high_water.load(Ordering::SeqCst);
        self.slots[..limit]
            .iter()
            .any(|s| s.hazard.load(Ordering::SeqCst) == ptr)
    }

    /// Number of currently protected (non-null) hazard slots; diagnostic.
    pub fn active_hazards(&self) -> usize {
        let limit = self.high_water.load(Ordering::Acquire);
        self.slots[..limit]
            .iter()
            .filter(|s| !s.hazard.load(Ordering::Acquire).is_null())
            .count()
    }

    fn scan(&'static self, retired: &mut Vec<Retired>) {
        // Adopt orphans from exited threads first so they cannot linger.
        {
            let mut orphans = self.orphans.lock().expect("orphan list");
            retired.append(&mut orphans);
        }
        let limit = self.high_water.load(Ordering::Acquire);
        let protected: HashSet<*mut u8> = self.slots[..limit]
            .iter()
            .map(|s| s.hazard.load(Ordering::Acquire))
            .filter(|p| !p.is_null())
            .collect();
        retired.retain(|r| {
            if protected.contains(&r.ptr) {
                true
            } else {
                // Safety: unlinked (retire contract) and unprotected now;
                // protection cannot be re-established for an unlinked node.
                unsafe { (r.drop_fn)(r.ptr) };
                false
            }
        });
    }

    fn acquire_slot(&'static self) -> usize {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.owner.load(Ordering::Relaxed) == 0
                && slot
                    .owner
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.high_water.fetch_max(i + 1, Ordering::AcqRel);
                return i;
            }
        }
        panic!("hazard domain slot capacity ({MAX_SLOTS}) exhausted");
    }

    fn release_slot(&'static self, index: usize) {
        self.slots[index]
            .hazard
            .store(std::ptr::null_mut(), Ordering::Release);
        self.slots[index].owner.store(0, Ordering::Release);
    }
}

impl Default for Domain {
    fn default() -> Self {
        Domain::new()
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Domain(active_hazards={})", self.active_hazards())
    }
}

/// The global domain used by `msq-core`'s heap queues by default.
pub static GLOBAL_DOMAIN: Domain = Domain::new();

// --- per-thread state -----------------------------------------------------

struct Participant {
    domain: &'static Domain,
    retired: Vec<Retired>,
}

#[derive(Default)]
struct LocalState {
    participants: Vec<Participant>,
}

impl LocalState {
    fn participant_mut(&mut self, domain: &'static Domain) -> &mut Participant {
        let idx = self
            .participants
            .iter()
            .position(|p| std::ptr::eq(p.domain, domain));
        match idx {
            Some(i) => &mut self.participants[i],
            None => {
                self.participants.push(Participant {
                    domain,
                    retired: Vec::new(),
                });
                self.participants.last_mut().expect("just pushed")
            }
        }
    }
}

impl Drop for LocalState {
    fn drop(&mut self) {
        // A thread exiting with unreclaimed retirements hands them to the
        // domain's orphan list; the next scan (from any thread) adopts them.
        for participant in self.participants.drain(..) {
            if !participant.retired.is_empty() {
                let mut orphans = participant.domain.orphans.lock().expect("orphan list");
                orphans.extend(participant.retired);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalState> = RefCell::new(LocalState::default());
}

/// One hazard slot held by the current thread.
///
/// `HazardPointer` is intentionally *not* `Send`: the slot is released when
/// the value is dropped on the owning thread.
pub struct HazardPointer {
    domain: &'static Domain,
    slot: usize,
    _not_send: std::marker::PhantomData<*mut u8>,
}

impl HazardPointer {
    /// Acquires a hazard slot in `domain`.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_SLOTS`] slots are taken.
    pub fn new(domain: &'static Domain) -> Self {
        HazardPointer {
            domain,
            slot: domain.acquire_slot(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Protects the current value of `src`: publishes it as a hazard and
    /// re-validates until the publication is consistent. The returned
    /// pointer (possibly null) is safe to dereference until
    /// [`HazardPointer::clear`], the next `protect`, or drop — provided it
    /// was reachable from `src`, which is what re-validation establishes.
    pub fn protect<T>(&mut self, src: &AtomicPtr<T>) -> *mut T {
        loop {
            let p = src.load(Ordering::Acquire);
            self.domain.slots[self.slot]
                .hazard
                .store(p.cast::<u8>(), Ordering::SeqCst);
            if src.load(Ordering::SeqCst) == p {
                return p;
            }
        }
    }

    /// Publishes a specific pointer value without validation.
    ///
    /// Callers must re-validate reachability themselves (the Michael–Scott
    /// dequeue's `head == Q->Head` re-check plays that role).
    pub fn protect_raw<T>(&mut self, ptr: *mut T) {
        self.domain.slots[self.slot]
            .hazard
            .store(ptr.cast::<u8>(), Ordering::SeqCst);
    }

    /// Clears the slot, allowing the previously protected node to be
    /// reclaimed.
    pub fn clear(&mut self) {
        self.domain.slots[self.slot]
            .hazard
            .store(std::ptr::null_mut(), Ordering::Release);
    }
}

impl Drop for HazardPointer {
    fn drop(&mut self) {
        self.domain.release_slot(self.slot);
    }
}

impl std::fmt::Debug for HazardPointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HazardPointer(slot={})", self.slot)
    }
}

// --- pooled hazard pointers -------------------------------------------------

thread_local! {
    static HP_POOL: RefCell<Vec<HazardPointer>> = const { RefCell::new(Vec::new()) };
}

/// A [`HazardPointer`] borrowed from a per-thread pool; on drop the slot is
/// cleared and returned to the pool instead of being released, so hot paths
/// (queue operations) avoid the slot-acquisition scan.
pub struct PooledHazard {
    inner: Option<HazardPointer>,
}

impl PooledHazard {
    /// Takes a hazard pointer in `domain` from the current thread's pool,
    /// acquiring a fresh slot only on first use.
    ///
    /// # Panics
    ///
    /// Panics if a fresh slot is needed and the domain is exhausted.
    pub fn acquire(domain: &'static Domain) -> Self {
        let cached = HP_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            let idx = pool.iter().position(|h| std::ptr::eq(h.domain, domain));
            idx.map(|i| pool.swap_remove(i))
        });
        PooledHazard {
            inner: Some(cached.unwrap_or_else(|| HazardPointer::new(domain))),
        }
    }
}

impl std::ops::Deref for PooledHazard {
    type Target = HazardPointer;

    fn deref(&self) -> &HazardPointer {
        self.inner.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledHazard {
    fn deref_mut(&mut self) -> &mut HazardPointer {
        self.inner.as_mut().expect("present until drop")
    }
}

impl Drop for PooledHazard {
    fn drop(&mut self) {
        if let Some(mut hp) = self.inner.take() {
            hp.clear();
            let returned = HP_POOL.try_with(|pool| {
                pool.borrow_mut().push(hp);
            });
            // If the thread-local pool is already gone (thread teardown),
            // `hp` was moved into the closure that never ran... it wasn't:
            // try_with failing means the closure did not run, so `hp` is
            // dropped here, releasing the slot — exactly what we want.
            let _ = returned;
        }
    }
}

impl std::fmt::Debug for PooledHazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledHazard({:?})", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    static TEST_DOMAIN: Domain = Domain::new();

    struct DropCounter(Arc<StdAtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn protect_returns_current_pointer() {
        let value = Box::into_raw(Box::new(5_u64));
        let shared = AtomicPtr::new(value);
        let mut h = HazardPointer::new(&TEST_DOMAIN);
        let p = h.protect(&shared);
        assert_eq!(p, value);
        assert_eq!(unsafe { *p }, 5);
        h.clear();
        unsafe { drop(Box::from_raw(value)) };
    }

    #[test]
    fn protected_node_survives_scans() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        let shared = AtomicPtr::new(node);

        let mut h = HazardPointer::new(&TEST_DOMAIN);
        let p = h.protect(&shared);
        assert_eq!(p, node);

        // Unlink and retire while protected.
        shared.store(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { TEST_DOMAIN.retire(node) };
        TEST_DOMAIN.eager_scan();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "still protected");

        h.clear();
        TEST_DOMAIN.eager_scan();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "reclaimed after clear");
    }

    #[test]
    fn unprotected_retirements_are_dropped_at_threshold() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        for _ in 0..(SCAN_THRESHOLD * 2) {
            let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { TEST_DOMAIN.retire(node) };
        }
        assert!(
            drops.load(Ordering::SeqCst) >= SCAN_THRESHOLD,
            "automatic scans must have reclaimed"
        );
        TEST_DOMAIN.eager_scan();
        assert_eq!(drops.load(Ordering::SeqCst), SCAN_THRESHOLD * 2);
    }

    #[test]
    fn is_protected_tracks_hazard_publication() {
        static IP_DOMAIN: Domain = Domain::new();
        let value = Box::into_raw(Box::new(9_u64));
        let shared = AtomicPtr::new(value);

        assert!(!IP_DOMAIN.is_protected(value.cast()));
        assert!(!IP_DOMAIN.is_protected(std::ptr::null_mut()));

        let mut h = HazardPointer::new(&IP_DOMAIN);
        let p = h.protect(&shared);
        assert!(IP_DOMAIN.is_protected(p.cast()));

        h.clear();
        assert!(!IP_DOMAIN.is_protected(value.cast()));
        unsafe { drop(Box::from_raw(value)) };
    }

    #[test]
    fn slots_are_recycled() {
        let before = {
            let h = HazardPointer::new(&TEST_DOMAIN);
            h.slot
        };
        let after = {
            let h = HazardPointer::new(&TEST_DOMAIN);
            h.slot
        };
        assert_eq!(before, after, "released slot is reacquired");
    }

    #[test]
    fn exiting_thread_orphans_are_adopted() {
        static ORPHAN_DOMAIN: Domain = Domain::new();
        let drops = Arc::new(StdAtomicUsize::new(0));
        {
            let drops = Arc::clone(&drops);
            std::thread::spawn(move || {
                let node = Box::into_raw(Box::new(DropCounter(drops)));
                unsafe { ORPHAN_DOMAIN.retire(node) };
                // Thread exits with the node still on its local list.
            })
            .join()
            .unwrap();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "not yet adopted");
        ORPHAN_DOMAIN.eager_scan();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "adopted and dropped");
    }

    #[test]
    fn pooled_hazards_reuse_slots() {
        static POOL_DOMAIN: Domain = Domain::new();
        let first_slot = {
            let hp = PooledHazard::acquire(&POOL_DOMAIN);
            hp.slot
        };
        let second_slot = {
            let hp = PooledHazard::acquire(&POOL_DOMAIN);
            hp.slot
        };
        assert_eq!(first_slot, second_slot, "pool must hand back the slot");
        // Two simultaneous pooled hazards get distinct slots.
        let a = PooledHazard::acquire(&POOL_DOMAIN);
        let b = PooledHazard::acquire(&POOL_DOMAIN);
        assert_ne!(a.slot, b.slot);
    }

    #[test]
    fn pooled_hazard_protects_like_plain() {
        static POOL_DOMAIN2: Domain = Domain::new();
        let value = Box::into_raw(Box::new(11_u64));
        let shared = AtomicPtr::new(value);
        let mut hp = PooledHazard::acquire(&POOL_DOMAIN2);
        let p = hp.protect(&shared);
        assert_eq!(unsafe { *p }, 11);
        drop(hp);
        unsafe { drop(Box::from_raw(value)) };
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        static STRESS_DOMAIN: Domain = Domain::new();
        let shared = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(0_u64))));
        let stop = Arc::new(StdAtomicUsize::new(0));

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut h = HazardPointer::new(&STRESS_DOMAIN);
                    let mut checksum = 0_u64;
                    while stop.load(Ordering::SeqCst) == 0 {
                        let p = h.protect(&shared);
                        if !p.is_null() {
                            // Safety: protected ⇒ not freed.
                            checksum ^= unsafe { *p };
                        }
                        h.clear();
                    }
                    checksum
                })
            })
            .collect();

        for i in 1..3_000_u64 {
            let fresh = Box::into_raw(Box::new(i));
            let old = shared.swap(fresh, Ordering::AcqRel);
            unsafe { STRESS_DOMAIN.retire(old) };
        }
        stop.store(1, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
        unsafe { STRESS_DOMAIN.retire(last) };
        STRESS_DOMAIN.eager_scan();
    }
}
