//! The Prakash–Lee–Johnson non-blocking queue (IEEE ToC 1994) —
//! reconstructed.
//!
//! PLJ was "the best of the known non-blocking alternatives" in the
//! paper's evaluation. Its published algorithm requires operations to take
//! a **snapshot** of the queue to determine its state before updating it,
//! and achieves the non-blocking property by letting faster processes
//! *complete the operations of slower ones* (helping). Michael & Scott
//! contrast their own validation ("we need to check only one shared
//! variable rather than two") with PLJ's heavier two-variable snapshot.
//!
//! This reconstruction preserves those load-bearing characteristics:
//!
//! * each operation reads **both** `Head` and `Tail` (plus the relevant
//!   `next` link) and revalidates **both** before acting — two extra shared
//!   reads per operation relative to the MS queue, which is what costs PLJ
//!   its constant factor in Figure 3;
//! * a half-finished enqueue (node linked, `Tail` not yet swung) is
//!   completed by whichever process observes it, in both enqueue and
//!   dequeue — so no stalled process can block others (non-blocking);
//! * counted pointers defeat ABA, and nodes recycle through the shared
//!   free list.

use msq_arena::NodeArena;
use msq_platform::{
    AtomicWord, Backoff, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, Tagged,
    NULL_INDEX,
};

/// The Prakash–Lee–Johnson snapshot-based non-blocking queue.
///
/// # Example
///
/// ```
/// use msq_baselines::PljQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = PljQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(21).unwrap();
/// assert_eq!(queue.dequeue(), Some(21));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct PljQueue<P: Platform> {
    head: P::Cell,
    tail: P::Cell,
    arena: NodeArena<P>,
    platform: P,
    backoff: BackoffConfig,
}

impl<P: Platform> PljQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`PljQueue::with_capacity`] with explicit backoff parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`PljQueue::with_capacity`], metering the node pool (one unit per
    /// node, `capacity + 1` total for the dummy) against `budget` for the
    /// queue's lifetime. The pool is force-reserved — an over-budget queue
    /// surfaces in [`msq_arena::MemBudget::overruns`], not as a
    /// construction failure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<msq_arena::MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        PljQueue {
            head: platform.alloc_cell(Tagged::new(dummy, 0).raw()),
            tail: platform.alloc_cell(Tagged::new(dummy, 0).raw()),
            arena,
            platform: platform.clone(),
            backoff,
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }

    /// Takes a consistent snapshot of `(head, tail, tail->next)`, retrying
    /// until neither anchor moved while it was read.
    fn snapshot(&self) -> (Tagged, Tagged, Tagged) {
        loop {
            let head = Tagged::from_raw(self.head.load());
            let tail = Tagged::from_raw(self.tail.load());
            let next = self.arena.next(tail.index());
            if self.tail.load() != tail.raw() {
                continue;
            }
            if self.head.load() != head.raw() {
                continue;
            }
            return (head, tail, next);
        }
    }

    /// Completes a half-finished enqueue observed in a snapshot (the
    /// helping rule): swings `Tail` over the already-linked node.
    fn help_finish_enqueue(&self, tail: Tagged, next: Tagged) {
        debug_assert!(!next.is_null());
        self.tail
            .cas(tail.raw(), tail.with_index(next.index()).raw());
    }
}

impl<P: Platform> ConcurrentWordQueue for PljQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let (_head, tail, next) = self.snapshot();
            if !next.is_null() {
                // Another enqueue is half done: complete it, then retry.
                self.help_finish_enqueue(tail, next);
                continue;
            }
            if self.arena.cas_next(tail.index(), next, node) {
                // Linked but Tail not yet swung: the snapshot's helping
                // rule lets any other process finish this enqueue, so a
                // process halted or killed here blocks nobody.
                self.platform.fault_point("plj:enq:window");
                // Linked; complete our own enqueue (any helper may already
                // have done so).
                self.tail.cas(tail.raw(), tail.with_index(node).raw());
                return Ok(());
            }
            backoff.spin(&self.platform);
        }
    }

    fn dequeue(&self) -> Option<u64> {
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let (head, tail, tail_next) = self.snapshot();
            if head.index() == tail.index() {
                if tail_next.is_null() {
                    return None;
                }
                // Queue momentarily looks empty only because an enqueue is
                // half done: help it and retry.
                self.help_finish_enqueue(tail, tail_next);
                continue;
            }
            let next = self.arena.next(head.index());
            // Revalidate the snapshot against the link we just read.
            if self.head.load() != head.raw() {
                continue;
            }
            debug_assert!(!next.is_null(), "head != tail implies a successor");
            let value = self.arena.value(next.index());
            if self
                .head
                .cas(head.raw(), head.with_index(next.index()).raw())
            {
                // Head is swung but the old dummy is not yet freed: a
                // death here strands one node and blocks nobody — the
                // snapshot protocol never waits on a dequeuer.
                self.platform.fault_point("plj:deq:window");
                self.arena.free(head.index());
                return Some(value);
            }
            backoff.spin(&self.platform);
        }
    }

    fn name(&self) -> &'static str {
        "prakash-lee-johnson"
    }

    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: Platform> std::fmt::Debug for PljQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PljQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> PljQueue<NativePlatform> {
        PljQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_order() {
        let q = queue(16);
        for i in 0..12 {
            q.enqueue(i * 2).unwrap();
        }
        for i in 0..12 {
            assert_eq!(q.dequeue(), Some(i * 2));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_and_single_element_transitions() {
        let q = queue(4);
        assert_eq!(q.dequeue(), None);
        q.enqueue(1).unwrap();
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
        q.enqueue(2).unwrap();
        q.enqueue(3).unwrap();
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
    }

    #[test]
    fn node_reuse_across_generations() {
        let q = queue(2);
        for i in 0..5_000 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn capacity_enforced() {
        let q = queue(1);
        q.enqueue(1).unwrap();
        assert_eq!(q.enqueue(2), Err(QueueFull(2)));
    }

    #[test]
    fn mpmc_stress_conserves_values() {
        let q = Arc::new(queue(512));
        let total = 4 * 4_000_u64;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..4_000_u64 {
                    let v = t * 4_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn per_producer_order_preserved() {
        let q = Arc::new(queue(8_192));
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000_u64 {
                    q.enqueue((t << 32) | i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None::<u64>; 3];
        while let Some(v) = q.dequeue() {
            let producer = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[producer] {
                assert!(seq > prev, "producer {producer} reordered");
            }
            last[producer] = Some(seq);
        }
    }

    #[test]
    fn works_under_simulation_with_preemption() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            quantum_ns: 80_000,
            ..SimConfig::default()
        });
        let q = Arc::new(PljQueue::with_capacity(&sim.platform(), 64));
        sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..60 {
                    q.enqueue((info.pid as u64) << 32 | i).unwrap();
                    q.dequeue().expect("value available");
                }
            }
        });
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "prakash-lee-johnson");
        assert!(q.is_nonblocking());
    }
}
