//! The comparison algorithms from the paper's evaluation (Section 4), plus
//! two auxiliary published structures the paper builds on or cites.
//!
//! | Type | Algorithm | Properties |
//! |---|---|---|
//! | [`SingleLockQueue`] | one test-and-test_and_set lock around both ends | blocking; the paper's "straightforward single-lock queue" |
//! | [`McQueue`] | Mellor-Crummey TR 229 (reconstructed) | lock-free *but blocking*: `fetch_and_store`-based enqueue is ABA-immune, yet a stalled enqueuer stalls every dequeuer |
//! | [`PljQueue`] | Prakash–Lee–Johnson (reconstructed) | non-blocking, linearizable; takes a two-variable snapshot and helps stalled operations |
//! | [`ValoisQueue`] | Valois with the corrected reference-count manager | non-blocking; `Tail` may lag arbitrarily, so reclamation needs per-node counts — with the paper's memory-exhaustion failure mode |
//! | [`TreiberStack`] | Treiber's non-blocking stack | the free-list algorithm, exposed as a structure |
//! | [`HerlihyQueue`] | Herlihy's universal construction (native-only) | non-blocking but copies the whole object per op — the "general methodology" the paper says specialized algorithms beat |
//! | [`LamportQueue`] | Lamport's wait-free ring | single-producer/single-consumer only |
//! | [`RepairableSingleLockQueue`] / [`RepairableMcQueue`] | crash-survivable variants (DESIGN.md §13) | revocable-lock / announce-cell repair closes the blocking baselines' wedge-on-death hole |
//!
//! All queues implement [`msq_platform::ConcurrentWordQueue`] over any
//! [`msq_platform::Platform`], so the harness can drive them natively or in
//! the simulator. Reconstructions preserve exactly the properties the
//! paper's analysis depends on; see `DESIGN.md` §7.

#![warn(missing_docs)]

mod herlihy;
mod lamport;
mod mellor_crummey;
mod plj;
mod repairable;
mod single_lock;
mod treiber;
mod valois_queue;

pub use herlihy::HerlihyQueue;
pub use lamport::LamportQueue;
pub use mellor_crummey::McQueue;
pub use plj::PljQueue;
pub use repairable::{RepairableMcQueue, RepairableSingleLockQueue, REPAIR_PIDS};
pub use single_lock::SingleLockQueue;
pub use treiber::TreiberStack;
pub use valois_queue::ValoisQueue;
