//! Herlihy's universal construction, applied to a queue — reconstructed.
//!
//! The paper's related work surveys "general methodologies for generating
//! non-blocking versions of sequential ... algorithms" (Herlihy; Turek,
//! Shasha & Prakash; Barnes) and observes that "the resulting
//! implementations are generally inefficient compared to specialized
//! algorithms". This module makes that comparison concrete: the small-
//! object variant of Herlihy's 1993 methodology, where each operation
//! copies the entire sequential object, applies itself to the copy, and
//! installs the copy with one CAS on the root pointer.
//!
//! Properties preserved (and measured by the `ops` bench):
//!
//! * non-blocking and linearizable for *any* sequential object — here the
//!   plain `VecDeque` queue;
//! * O(n) copying per operation and a single contended root — the
//!   inefficiency the paper contrasts its specialized algorithm against.
//!
//! This baseline is heap-allocated and native-only (the whole-state copy
//! does not decompose into fixed word cells), so it appears in the native
//! benches but not the simulator sweeps — exactly like the paper, whose
//! figures also exclude the general constructions.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

/// A non-blocking FIFO queue built from a sequential `VecDeque` via
/// Herlihy's copy-the-object universal construction.
///
/// # Example
///
/// ```
/// use msq_baselines::HerlihyQueue;
///
/// let queue = HerlihyQueue::new();
/// queue.enqueue(1);
/// queue.enqueue(2);
/// assert_eq!(queue.dequeue(), Some(1));
/// assert_eq!(queue.dequeue(), Some(2));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct HerlihyQueue<T: Clone> {
    root: Atomic<VecDeque<T>>,
}

unsafe impl<T: Clone + Send + Sync> Send for HerlihyQueue<T> {}
unsafe impl<T: Clone + Send + Sync> Sync for HerlihyQueue<T> {}

impl<T: Clone> HerlihyQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HerlihyQueue {
            root: Atomic::new(VecDeque::new()),
        }
    }

    /// Applies `op` to a copy of the current state and installs the copy;
    /// retries on interference. Returns the operation's result.
    fn apply<R>(&self, op: impl Fn(&mut VecDeque<T>) -> R) -> R {
        let guard = epoch::pin();
        loop {
            let current = self.root.load(Ordering::Acquire, &guard);
            // Safety: root is never null and the epoch pin keeps the
            // snapshot alive while we copy it.
            let mut copy = unsafe { current.deref() }.clone();
            let result = op(&mut copy);
            match self.root.compare_exchange(
                current,
                Owned::new(copy),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    // Safety: `current` is unlinked; readers still inside
                    // the epoch keep it alive until they unpin.
                    unsafe { guard.defer_destroy(current) };
                    return result;
                }
                Err(_) => std::hint::spin_loop(),
            }
        }
    }

    /// Adds `value` at the tail (copies the whole queue).
    pub fn enqueue(&self, value: T) {
        self.apply(|queue| queue.push_back(value.clone()));
    }

    /// Removes the head value (copies the whole queue).
    pub fn dequeue(&self) -> Option<T> {
        self.apply(|queue| queue.pop_front())
    }

    /// Number of queued values at the observed snapshot.
    pub fn len(&self) -> usize {
        let guard = epoch::pin();
        // Safety: root is never null; pinned.
        unsafe { self.root.load(Ordering::Acquire, &guard).deref() }.len()
    }

    /// Whether the observed snapshot was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone> Default for HerlihyQueue<T> {
    fn default() -> Self {
        HerlihyQueue::new()
    }
}

impl<T: Clone> Drop for HerlihyQueue<T> {
    fn drop(&mut self) {
        // Safety: exclusive access during drop.
        let guard = unsafe { epoch::unprotected() };
        let state = self.root.load(Ordering::Relaxed, guard);
        if !state.is_null() {
            drop(unsafe { state.into_owned() });
        }
    }
}

impl<T: Clone> std::fmt::Debug for HerlihyQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HerlihyQueue(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = HerlihyQueue::new();
        for i in 0..20 {
            q.enqueue(i);
        }
        for i in 0..20 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn len_tracks_snapshot() {
        let q = HerlihyQueue::new();
        assert!(q.is_empty());
        q.enqueue("a");
        q.enqueue("b");
        assert_eq!(q.len(), 2);
        q.dequeue();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn concurrent_operations_conserve_values() {
        let q = Arc::new(HerlihyQueue::new());
        let total = 3 * 1_000_u64;
        let sum = Arc::new(AtomicU64::new(0));
        let got = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000_u64 {
                    q.enqueue(t * 1_000 + i + 1);
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        got.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), (1..=total).sum::<u64>());
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_order_preserved() {
        let q = Arc::new(HerlihyQueue::new());
        let mut handles = Vec::new();
        for t in 0..2_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..500_u64 {
                    q.enqueue((t << 32) | i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None::<u64>; 2];
        while let Some(v) = q.dequeue() {
            let producer = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[producer] {
                assert!(seq > prev);
            }
            last[producer] = Some(seq);
        }
    }
}
