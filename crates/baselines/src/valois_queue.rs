//! Valois's non-blocking queue (1994) over the corrected reference-count
//! manager.
//!
//! Valois keeps a dummy node like the MS queue, but allows `Tail` to lag
//! arbitrarily — even behind `Head` — which is why dequeued nodes cannot be
//! freed directly and every pointer acquisition goes through the counted
//! `safe_read` protocol of [`msq_arena::RcArena`]. The costs the paper
//! measures are faithfully present here: two extra atomic read-modify-
//! writes (increment + decrement) per pointer traversal, and the
//! characteristic failure mode that a delayed process holding one node
//! pins that node *and all its successors*, so "no finite memory can
//! guarantee to satisfy the memory requirements of the algorithm all the
//! time".

use msq_arena::RcArena;
use msq_platform::{
    AtomicWord, Backoff, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, Tagged,
    NULL_INDEX,
};

/// Valois's reference-counted non-blocking queue.
///
/// # Example
///
/// ```
/// use msq_baselines::ValoisQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = ValoisQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(9).unwrap();
/// assert_eq!(queue.dequeue(), Some(9));
/// ```
pub struct ValoisQueue<P: Platform> {
    head: P::Cell,
    tail: P::Cell,
    rc: RcArena<P>,
    platform: P,
    backoff: BackoffConfig,
}

impl<P: Platform> ValoisQueue<P> {
    /// Creates a queue with a pool of `capacity + 1` reference-counted
    /// nodes. Note that unlike the other queues, exhaustion does **not**
    /// imply `capacity` values are enqueued — pinned chains of dequeued
    /// nodes also consume the pool (the algorithm's documented flaw).
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`ValoisQueue::with_capacity`] with explicit backoff parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let rc = RcArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_rc(platform, rc, backoff)
    }

    /// As [`ValoisQueue::with_capacity`], metering the reference-counted
    /// node pool (one unit per node, `capacity + 1` total for the dummy)
    /// against `budget` for the queue's lifetime. The pool is
    /// force-reserved — an over-budget queue surfaces in
    /// [`msq_arena::MemBudget::overruns`], not as a construction failure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<msq_arena::MemBudget<P>>,
    ) -> Self {
        let rc = RcArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_rc(platform, rc, BackoffConfig::DEFAULT)
    }

    fn from_rc(platform: &P, rc: RcArena<P>, backoff: BackoffConfig) -> Self {
        let dummy = rc.alloc().expect("fresh arena");
        // Head and Tail each hold a counted reference to the dummy; our
        // allocation reference transfers to Head and we add one for Tail.
        rc.add_ref(dummy);
        ValoisQueue {
            head: platform.alloc_cell(Tagged::new(dummy, 0).raw()),
            tail: platform.alloc_cell(Tagged::new(dummy, 0).raw()),
            rc,
            platform: platform.clone(),
            backoff,
        }
    }

    /// Size of the node pool (excluding the dummy).
    pub fn capacity(&self) -> u32 {
        self.rc.nodes().capacity() - 1
    }

    /// Acquires a counted reference to the head node and exposes it to
    /// `f`; used by tests to emulate a stalled reader pinning the chain.
    pub fn with_pinned_head<R>(&self, f: impl FnOnce() -> R) -> R {
        let pinned = self.rc.safe_read(&self.head).expect("head is never null");
        let result = f();
        self.rc.release(pinned.index());
        result
    }
}

impl<P: Platform> ConcurrentWordQueue for ValoisQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let Some(node) = self.rc.alloc() else {
            return Err(QueueFull(value));
        };
        let nodes = self.rc.nodes();
        nodes.set_value(node, value);
        nodes.set_next(node, NULL_INDEX);
        let mut backoff = Backoff::new(self.backoff);
        loop {
            // Pin the current Tail target; the word (with its counter) is
            // what every CAS below is keyed to.
            let tail = self.rc.safe_read(&self.tail).expect("tail is never null");
            let next = nodes.next(tail.index());
            if next.is_null() {
                // Count the prospective link before publishing it.
                self.rc.add_ref(node);
                if nodes.cas_next(tail.index(), next, node) {
                    // Linked but Tail not yet swung: a process halted here
                    // leaves a lagging Tail any later enqueue can help
                    // forward — non-blocking, so faults here delay nobody.
                    self.platform.fault_point("valois:enq:window");
                    // Inserted. Try to swing Tail to the new node; on
                    // failure Tail simply lags (the defining Valois
                    // behaviour) until a later enqueue helps it forward.
                    self.rc.add_ref(node);
                    if self.tail.cas(tail.raw(), tail.with_index(node).raw()) {
                        // Tail dropped its reference to the old target.
                        self.rc.release(tail.index());
                    } else {
                        self.rc.release(node);
                    }
                    self.rc.release(tail.index()); // traversal pin
                    self.rc.release(node); // allocation reference
                    return Ok(());
                }
                self.rc.release(node);
                backoff.spin(&self.platform);
            } else {
                // Tail lags: help it forward one step. `next` is kept alive
                // by the pinned tail node's link reference, and its link
                // word never changes once non-null, so counting the
                // prospective Tail reference first is safe.
                self.rc.add_ref(next.index());
                if self
                    .tail
                    .cas(tail.raw(), tail.with_index(next.index()).raw())
                {
                    self.rc.release(tail.index());
                } else {
                    self.rc.release(next.index());
                }
            }
            self.rc.release(tail.index());
        }
    }

    fn dequeue(&self) -> Option<u64> {
        let nodes = self.rc.nodes();
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let head = self.rc.safe_read(&self.head).expect("head is never null");
            let next = nodes.next(head.index());
            if next.is_null() {
                self.rc.release(head.index());
                return None;
            }
            // Value read is safe while we pin `head`: its counted link
            // keeps the successor alive.
            let value = nodes.value(next.index());
            // Count Head's prospective reference to the successor before
            // the swing, so a racing dequeuer can never drive it to zero.
            self.rc.add_ref(next.index());
            if self
                .head
                .cas(head.raw(), head.with_index(next.index()).raw())
            {
                // Head is swung but our two references to the old dummy
                // are still counted: a death here strands the node on a
                // nonzero count (Valois's well-known leak) and blocks
                // nobody.
                self.platform.fault_point("valois:deq:window");
                // Head's reference to the old dummy, plus our pin.
                self.rc.release(head.index());
                self.rc.release(head.index());
                return Some(value);
            }
            self.rc.release(next.index());
            self.rc.release(head.index());
            backoff.spin(&self.platform);
        }
    }

    fn name(&self) -> &'static str {
        "valois"
    }

    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: Platform> std::fmt::Debug for ValoisQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ValoisQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> ValoisQueue<NativePlatform> {
        ValoisQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_order() {
        let q = queue(16);
        for i in 0..10 {
            q.enqueue(i + 7).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i + 7));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_transitions() {
        let q = queue(4);
        assert_eq!(q.dequeue(), None);
        q.enqueue(1).unwrap();
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
        q.enqueue(2).unwrap();
        assert_eq!(q.dequeue(), Some(2));
    }

    #[test]
    fn nodes_recycle_when_unpinned() {
        let q = queue(2);
        for i in 0..5_000 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn pinned_head_starves_the_pool() {
        // The paper's observed flaw: with a reader stalled holding one
        // node, churning the queue exhausts any finite pool even though
        // the queue itself stays tiny.
        let q = queue(8);
        q.enqueue(0).unwrap();
        let exhausted = q.with_pinned_head(|| {
            let mut exhausted = false;
            for i in 0..64 {
                if q.enqueue(i).is_err() {
                    exhausted = true;
                    break;
                }
                q.dequeue();
            }
            exhausted
        });
        assert!(exhausted, "pool must run dry while the head is pinned");
        // After the pin is dropped, churn works again (chain reclaimed).
        while q.dequeue().is_some() {}
        for i in 0..64 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn mpmc_stress_conserves_values() {
        let q = Arc::new(queue(1_024));
        let total = 3 * 3_000_u64;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..3_000_u64 {
                    let v = t * 3_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn works_under_simulation_with_preemption() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            quantum_ns: 80_000,
            ..SimConfig::default()
        });
        let q = Arc::new(ValoisQueue::with_capacity(&sim.platform(), 128));
        sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..50 {
                    // A preempted process pinning a chain can transiently
                    // exhaust the pool (the algorithm's documented flaw) —
                    // retrying is the only recourse; once the pinner
                    // resumes, the chain unravels and allocation succeeds.
                    while q.enqueue((info.pid as u64) << 32 | i).is_err() {}
                    q.dequeue().expect("value available");
                }
            }
        });
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "valois");
        assert!(q.is_nonblocking());
    }
}
