//! The single-lock queue: the baseline every experiment includes.

use msq_arena::NodeArena;
use msq_platform::{
    AtomicWord, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, NULL_INDEX,
};
use msq_sync::{RawLock, TtasLock};

/// A linked-list FIFO queue protected by one test-and-test_and_set lock
/// (with bounded exponential backoff, as in the paper's experiments).
///
/// Head and tail operations serialize completely — the queue the paper
/// calls "a straightforward single-lock queue", which wins at one or two
/// processors (lowest constant overhead) and collapses under contention
/// and multiprogramming.
///
/// # Example
///
/// ```
/// use msq_baselines::SingleLockQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = SingleLockQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(5).unwrap();
/// assert_eq!(queue.dequeue(), Some(5));
/// ```
pub struct SingleLockQueue<P: Platform> {
    head: P::Cell,
    tail: P::Cell,
    lock: TtasLock<P>,
    arena: NodeArena<P>,
    platform: P,
}

impl<P: Platform> SingleLockQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`SingleLockQueue::with_capacity`] with explicit lock backoff.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`SingleLockQueue::with_capacity`], metering the node pool (one
    /// unit per node, `capacity + 1` total for the dummy) against `budget`
    /// for the queue's lifetime. The pool is force-reserved — an
    /// over-budget queue surfaces in [`msq_arena::MemBudget::overruns`],
    /// not as a construction failure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<msq_arena::MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        SingleLockQueue {
            head: platform.alloc_cell(u64::from(dummy)),
            tail: platform.alloc_cell(u64::from(dummy)),
            lock: TtasLock::with_backoff(platform, backoff),
            arena,
            platform: platform.clone(),
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }
}

impl<P: Platform> ConcurrentWordQueue for SingleLockQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        self.lock.lock(&self.platform);
        // Holding the only lock: a process halted or killed here blocks
        // the entire queue — the behaviour the fault suite's watchdog
        // detects and asserts for the blocking baselines.
        self.platform.fault_point("single-lock:enq:locked");
        let tail = self.tail.load() as u32;
        self.arena.set_next(tail, node);
        self.tail.store(u64::from(node));
        self.lock.unlock(&self.platform);
        Ok(())
    }

    fn dequeue(&self) -> Option<u64> {
        self.lock.lock(&self.platform);
        // Death while holding the lock blocks every other process.
        self.platform.fault_point("single-lock:deq:locked");
        let node = self.head.load() as u32;
        let next = self.arena.next(node);
        if next.is_null() {
            self.lock.unlock(&self.platform);
            return None;
        }
        let value = self.arena.value(next.index());
        self.head.store(u64::from(next.index()));
        self.lock.unlock(&self.platform);
        self.arena.free(node);
        Some(value)
    }

    fn name(&self) -> &'static str {
        "single-lock"
    }

    fn is_nonblocking(&self) -> bool {
        false
    }
}

impl<P: Platform> std::fmt::Debug for SingleLockQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SingleLockQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> SingleLockQueue<NativePlatform> {
        SingleLockQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_order() {
        let q = queue(16);
        for i in 0..10 {
            q.enqueue(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn capacity_is_enforced_and_recovers() {
        let q = queue(1);
        q.enqueue(9).unwrap();
        assert_eq!(q.enqueue(10), Err(QueueFull(10)));
        assert_eq!(q.dequeue(), Some(9));
        q.enqueue(10).unwrap();
        assert_eq!(q.dequeue(), Some(10));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn concurrent_conservation() {
        let q = Arc::new(queue(256));
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let total = 4 * 3_000_u64;
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..3_000_u64 {
                    let v = t * 3_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
    }

    #[test]
    fn works_under_simulation() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 2,
            processes_per_processor: 2,
            quantum_ns: 100_000,
            ..SimConfig::default()
        });
        let q = Arc::new(SingleLockQueue::with_capacity(&sim.platform(), 32));
        sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..40 {
                    q.enqueue((info.pid as u64) << 32 | i).unwrap();
                    q.dequeue().expect("never empty after own enqueue");
                }
            }
        });
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "single-lock");
        assert!(!q.is_nonblocking());
    }
}
