//! Treiber's non-blocking stack (IBM RJ 5118, 1986).
//!
//! The paper uses this algorithm for its non-blocking free list (as does
//! [`msq_arena::NodeArena`] internally); it is exposed here as a value
//! stack in its own right — "simple and efficient" in the paper's words —
//! and for direct benchmarking.

use msq_arena::NodeArena;
use msq_platform::{AtomicWord, ConcurrentStack, Platform, QueueFull, Tagged, NULL_INDEX};

/// A lock-free LIFO stack of `u64` values over a node arena, with counted
/// top-of-stack pointers against ABA.
///
/// # Example
///
/// ```
/// use msq_baselines::TreiberStack;
/// use msq_platform::{ConcurrentStack, NativePlatform};
///
/// let stack = TreiberStack::with_capacity(&NativePlatform::new(), 8);
/// stack.push(1).unwrap();
/// stack.push(2).unwrap();
/// assert_eq!(stack.pop(), Some(2));
/// assert_eq!(stack.pop(), Some(1));
/// assert_eq!(stack.pop(), None);
/// ```
pub struct TreiberStack<P: Platform> {
    top: P::Cell,
    arena: NodeArena<P>,
}

impl<P: Platform> TreiberStack<P> {
    /// Creates a stack able to hold `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        TreiberStack {
            top: platform.alloc_cell(Tagged::NULL.raw()),
            arena: NodeArena::new(platform, capacity),
        }
    }

    /// Maximum number of values the stack can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity()
    }

    /// Whether the stack was observed empty (snapshot semantics).
    pub fn is_empty(&self) -> bool {
        Tagged::from_raw(self.top.load()).is_null()
    }
}

impl<P: Platform> ConcurrentStack for TreiberStack<P> {
    fn push(&self, value: u64) -> Result<(), QueueFull> {
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        loop {
            let top = Tagged::from_raw(self.top.load());
            self.arena.set_next(
                node,
                if top.is_null() {
                    NULL_INDEX
                } else {
                    top.index()
                },
            );
            if self.top.cas(top.raw(), top.with_index(node).raw()) {
                return Ok(());
            }
            std::hint::spin_loop();
        }
    }

    fn pop(&self) -> Option<u64> {
        loop {
            let top = Tagged::from_raw(self.top.load());
            if top.is_null() {
                return None;
            }
            let next = self.arena.next(top.index());
            // Read before the CAS: the node may be popped and reused by
            // another thread immediately after.
            let value = self.arena.value(top.index());
            if self.top.cas(top.raw(), top.with_index(next.index()).raw()) {
                self.arena.free(top.index());
                return Some(value);
            }
            std::hint::spin_loop();
        }
    }
}

impl<P: Platform> std::fmt::Debug for TreiberStack<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TreiberStack(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn stack(capacity: u32) -> TreiberStack<NativePlatform> {
        TreiberStack::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn lifo_order() {
        let s = stack(8);
        for i in 0..5 {
            s.push(i).unwrap();
        }
        for i in (0..5).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let s = stack(2);
        s.push(1).unwrap();
        s.push(2).unwrap();
        assert_eq!(s.push(3), Err(QueueFull(3)));
        assert_eq!(s.pop(), Some(2));
        s.push(3).unwrap();
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        let s = Arc::new(stack(256));
        let total = 4 * 5_000_u64;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000_u64 {
                    let v = t * 5_000 + i + 1;
                    while s.push(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..3 {
            let s = Arc::clone(&s);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = s.pop() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
        assert!(s.is_empty());
    }

    #[test]
    fn works_under_simulation() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 4,
            ..SimConfig::default()
        });
        let s = Arc::new(TreiberStack::with_capacity(&sim.platform(), 64));
        sim.run({
            let s = Arc::clone(&s);
            move |info| {
                for i in 0..50 {
                    s.push((info.pid as u64) << 32 | i).unwrap();
                    s.pop().expect("own push available");
                }
            }
        });
        assert!(s.is_empty());
    }
}
