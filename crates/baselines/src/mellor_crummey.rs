//! Mellor-Crummey's concurrent queue (TR 229, 1987) — reconstructed.
//!
//! The MS paper characterizes this algorithm precisely: it "requires no
//! special precautions to avoid the ABA problem because it uses
//! compare_and_swap in a fetch_and_store-modify-compare_and_swap sequence
//! rather than the usual read-modify-compare_and_swap sequence. However,
//! this same feature makes the algorithm blocking." This reconstruction
//! preserves exactly those properties:
//!
//! * **Enqueue** is a two-step `fetch_and_store` (swap) of `Tail` followed
//!   by a plain store that links the previous tail to the new node. It
//!   never retries and never suffers ABA — but between the swap and the
//!   link store, the list is disconnected at the tail.
//! * **Dequeue** advances `Head` with a counted CAS, and when it observes a
//!   missing link with `Tail` already moved on, it must **wait** for the
//!   stalled enqueuer — the blocking window the multiprogrammed
//!   experiments (Figures 4 and 5) punish so heavily.

use msq_arena::NodeArena;
use msq_platform::{
    AtomicWord, Backoff, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, Tagged,
    NULL_INDEX,
};

/// Mellor-Crummey's lock-free (but blocking) queue over a node arena.
///
/// # Example
///
/// ```
/// use msq_baselines::McQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = McQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(3).unwrap();
/// assert_eq!(queue.dequeue(), Some(3));
/// ```
pub struct McQueue<P: Platform> {
    /// Tagged word (dequeuers CAS it, so it needs the ABA counter).
    head: P::Cell,
    /// Plain node index: only ever `swap`ped, which is ABA-immune.
    tail: P::Cell,
    arena: NodeArena<P>,
    platform: P,
    backoff: BackoffConfig,
}

impl<P: Platform> McQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`McQueue::with_capacity`] with explicit backoff parameters for
    /// the dequeue-side waits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`McQueue::with_capacity`], metering the node pool (one unit per
    /// node, `capacity + 1` total for the dummy) against `budget` for the
    /// queue's lifetime. The pool is force-reserved — an over-budget queue
    /// surfaces in [`msq_arena::MemBudget::overruns`], not as a
    /// construction failure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<msq_arena::MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        McQueue {
            head: platform.alloc_cell(Tagged::new(dummy, 0).raw()),
            tail: platform.alloc_cell(u64::from(dummy)),
            arena,
            platform: platform.clone(),
            backoff,
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }
}

impl<P: Platform> ConcurrentWordQueue for McQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        // fetch_and_store: claim the tail position unconditionally. The
        // previous tail node cannot be freed before we link it (a node is
        // only freed once its next link is non-null), so the store below is
        // always to a live node.
        let prev = self.tail.swap(u64::from(node)) as u32;
        // ... but until this store lands, the list is torn at `prev`: a
        // process halted or killed in this window blocks every dequeuer
        // that reaches the tear — lock-free in mechanism, blocking in
        // behaviour, exactly as the MS paper characterizes it.
        self.platform.fault_point("mc:enq:window");
        self.arena.set_next(prev, node);
        Ok(())
    }

    fn dequeue(&self) -> Option<u64> {
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let head = Tagged::from_raw(self.head.load());
            let next = self.arena.next(head.index());
            if next.is_null() {
                if self.tail.load() as u32 == head.index() {
                    // Tail still points at the dummy: genuinely empty.
                    return None;
                }
                // An enqueuer swapped Tail but has not linked yet — the
                // blocking wait that distinguishes this algorithm.
                backoff.spin(&self.platform);
                continue;
            }
            // Read the value before the CAS: after it, another dequeue may
            // free and reuse the node.
            let value = self.arena.value(next.index());
            if self
                .head
                .cas(head.raw(), head.with_index(next.index()).raw())
            {
                // Head is swung but the old dummy is not yet recycled: a
                // death here strands one node and blocks nobody — the
                // dequeue side is survivable even though the enqueue side
                // (the torn-tail window above) is blocking.
                self.platform.fault_point("mc:deq:window");
                self.arena.free(head.index());
                return Some(value);
            }
            backoff.spin(&self.platform);
        }
    }

    fn name(&self) -> &'static str {
        "mellor-crummey"
    }

    fn is_nonblocking(&self) -> bool {
        false
    }
}

impl<P: Platform> std::fmt::Debug for McQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "McQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> McQueue<NativePlatform> {
        McQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_order() {
        let q = queue(16);
        for i in 0..10 {
            q.enqueue(i + 100).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i + 100));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_then_refill() {
        let q = queue(4);
        assert_eq!(q.dequeue(), None);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
        q.enqueue(3).unwrap();
        assert_eq!(q.dequeue(), Some(3));
    }

    #[test]
    fn node_reuse_across_generations() {
        let q = queue(2);
        for i in 0..5_000 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn capacity_enforced() {
        let q = queue(2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(QueueFull(3)));
    }

    #[test]
    fn mpmc_stress_conserves_values() {
        let q = Arc::new(queue(512));
        let total = 4 * 4_000_u64;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..4_000_u64 {
                    let v = t * 4_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn works_under_simulation_with_preemption() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            quantum_ns: 50_000,
            ..SimConfig::default()
        });
        let q = Arc::new(McQueue::with_capacity(&sim.platform(), 64));
        sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..60 {
                    q.enqueue((info.pid as u64) << 32 | i).unwrap();
                    // The dequeue may have to wait out a preempted
                    // enqueuer — that's the algorithm's defining hazard —
                    // but it must eventually succeed.
                    q.dequeue().expect("value available");
                }
            }
        });
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "mellor-crummey");
        assert!(!q.is_nonblocking(), "MC is lock-free but blocking");
    }
}
