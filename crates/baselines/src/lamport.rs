//! Lamport's wait-free single-producer/single-consumer queue (1983).
//!
//! Cited by the paper as the classic algorithm that "restricts concurrency
//! to a single enqueuer and a single dequeuer": a circular buffer where the
//! producer owns `tail`, the consumer owns `head`, and neither ever
//! executes an atomic read-modify-write — both operations are wait-free.

use msq_platform::{AtomicWord, ConcurrentWordQueue, Platform, QueueFull};

/// Lamport's SPSC ring buffer.
///
/// **Concurrency contract:** at most one thread may call
/// [`LamportQueue::enqueue`] (the producer) and at most one may call
/// [`LamportQueue::dequeue`] (the consumer) at any time; the two may run
/// concurrently. Violating this is a logic error (values may be lost or
/// duplicated), though never memory-unsafe here.
///
/// # Example
///
/// ```
/// use msq_baselines::LamportQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = LamportQueue::with_capacity(&NativePlatform::new(), 4);
/// queue.enqueue(1).unwrap();
/// queue.enqueue(2).unwrap();
/// assert_eq!(queue.dequeue(), Some(1));
/// assert_eq!(queue.dequeue(), Some(2));
/// ```
pub struct LamportQueue<P: Platform> {
    buffer: Vec<P::Cell>,
    head: P::Cell,
    tail: P::Cell,
}

impl<P: Platform> LamportQueue<P> {
    /// Creates a ring holding at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        LamportQueue {
            buffer: (0..capacity).map(|_| platform.alloc_cell(0)).collect(),
            head: platform.alloc_cell(0),
            tail: platform.alloc_cell(0),
        }
    }

    /// Maximum number of values the ring can hold.
    pub fn capacity(&self) -> u32 {
        self.buffer.len() as u32
    }

    /// Number of values currently buffered (exact in SPSC use).
    pub fn len(&self) -> u64 {
        self.tail.load().wrapping_sub(self.head.load())
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<P: Platform> ConcurrentWordQueue for LamportQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let tail = self.tail.load();
        let head = self.head.load();
        if tail.wrapping_sub(head) >= self.buffer.len() as u64 {
            return Err(QueueFull(value));
        }
        self.buffer[(tail % self.buffer.len() as u64) as usize].store(value);
        // Publishing the slot before bumping tail is the whole algorithm.
        self.tail.store(tail.wrapping_add(1));
        Ok(())
    }

    fn dequeue(&self) -> Option<u64> {
        let head = self.head.load();
        if head == self.tail.load() {
            return None;
        }
        let value = self.buffer[(head % self.buffer.len() as u64) as usize].load();
        self.head.store(head.wrapping_add(1));
        Some(value)
    }

    fn name(&self) -> &'static str {
        "lamport-spsc"
    }

    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: Platform> std::fmt::Debug for LamportQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LamportQueue(capacity={}, len={})",
            self.capacity(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> LamportQueue<NativePlatform> {
        LamportQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_order() {
        let q = queue(8);
        for i in 0..8 {
            q.enqueue(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let q = queue(2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(QueueFull(3)));
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3).unwrap();
    }

    #[test]
    fn wraps_around_many_times() {
        let q = queue(3);
        for i in 0..1_000 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_occupancy() {
        let q = queue(4);
        assert_eq!(q.len(), 0);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.len(), 2);
        q.dequeue();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn spsc_streaming_preserves_order() {
        let q = Arc::new(queue(16));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..30_000_u64 {
                    while q.enqueue(i).is_err() {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for expected in 0..30_000_u64 {
                    loop {
                        if let Some(v) = q.dequeue() {
                            assert_eq!(v, expected, "order violated");
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "lamport-spsc");
        assert!(q.is_nonblocking());
    }
}
