//! Crash-survivable variants of the blocking baselines.
//!
//! The plain blocking queues wedge forever when a process dies inside
//! their critical window (DESIGN.md §11). These variants close that hole
//! with the lock-revocation and invariant-repair protocol of DESIGN.md
//! §13:
//!
//! * [`RepairableSingleLockQueue`] swaps the TTAS lock for a
//!   [`RevocableLock`] and publishes an **intent cell** inside the
//!   critical section: `node + 1` while an enqueue (or the old dummy
//!   while a dequeue) is in flight, `0` otherwise. A waiter that revokes
//!   the lock from a dead holder reads the intent and either *completes*
//!   the half-done operation (the link or head swing already landed) or
//!   *discards* it (frees the half-inserted node back to the arena).
//! * [`RepairableMcQueue`] has no lock to revoke — Mellor-Crummey's
//!   enqueue is a `swap`-then-link sequence — so it publishes per-process
//!   **announce cells** around the torn-tail window instead. A dequeuer
//!   that finds the list torn (or simply observes a death notice)
//!   CAS-claims the dead process's announce cell and completes the link
//!   or rolls the allocation back.
//!
//! Every repair is stamped into the run's [`msq_sim::SimReport`] via
//! [`Platform::mark_repaired`] with an outcome label
//! (`…:repair:enq-complete`, `…:repair:enq-discard`,
//! `…:repair:deq-complete`, `…:repair:deq-rollback`), so the harness can
//! measure time-to-repair exactly like time-to-recover.
//!
//! The intent/announce traffic is charged like any other shared-memory
//! op — repairability has an honest price, which `faultbench` Cell 4
//! reports. The plain variants are untouched; repair is strictly
//! pay-for-use.

use msq_arena::NodeArena;
use msq_platform::{
    AtomicWord, Backoff, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, Tagged,
    NULL_INDEX,
};
use msq_sync::{Acquired, RevocableLock};

/// Process ids the repair protocol can track (the width of the death
/// board). Processes with higher ids still run correctly but die
/// unrepairably, exactly like the plain variants.
pub const REPAIR_PIDS: usize = 64;

/// The single-lock queue under a [`RevocableLock`], with intent-cell
/// repair: the crash-survivable counterpart of
/// [`crate::SingleLockQueue`].
///
/// # Example
///
/// ```
/// use msq_baselines::RepairableSingleLockQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = RepairableSingleLockQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(5).unwrap();
/// assert_eq!(queue.dequeue(), Some(5));
/// ```
pub struct RepairableSingleLockQueue<P: Platform> {
    head: P::Cell,
    tail: P::Cell,
    lock: RevocableLock<P>,
    /// `node + 1` while an enqueue is inside the critical section and its
    /// effect may be torn; `0` otherwise. Only the lock holder writes it.
    enq_intent: P::Cell,
    /// `old_dummy + 1` while a dequeue is past its emptiness check; `0`
    /// otherwise. Only the lock holder writes it.
    deq_intent: P::Cell,
    arena: NodeArena<P>,
    platform: P,
}

impl<P: Platform> RepairableSingleLockQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`RepairableSingleLockQueue::with_capacity`] with explicit lock
    /// backoff.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`RepairableSingleLockQueue::with_capacity`], metering the node
    /// pool (one unit per node, `capacity + 1` total for the dummy)
    /// against `budget` for the queue's lifetime. A node discarded by
    /// repair goes back to the arena free list, so its unit stays
    /// reserved by the pool and is credited back when the queue drops —
    /// repair never leaks a reservation.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<msq_arena::MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        // Touch the death board during untimed setup so its cell id (and
        // therefore every trace) is fixed before the run starts.
        let _ = platform.dead_peers();
        RepairableSingleLockQueue {
            head: platform.alloc_cell(u64::from(dummy)),
            tail: platform.alloc_cell(u64::from(dummy)),
            lock: RevocableLock::with_backoff(platform, backoff),
            enq_intent: platform.alloc_cell(0),
            deq_intent: platform.alloc_cell(0),
            arena,
            platform: platform.clone(),
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }

    /// Repairs the torn critical section of dead process `victim`, from
    /// whom the caller just revoked the lock. Reads the intent cells to
    /// learn what was in flight, then completes or rolls back:
    ///
    /// | intent | structure state | action | outcome |
    /// |---|---|---|---|
    /// | enqueue of `n` | `Tail == n` | nothing torn | `enq-complete` |
    /// | enqueue of `n` | `next(Tail) == n` | swing `Tail` to `n` | `enq-complete` |
    /// | enqueue of `n` | `n` unlinked | free `n` | `enq-discard` |
    /// | dequeue of `d` | `Head == d` | nothing happened | `deq-rollback` |
    /// | dequeue of `d` | `Head` moved past `d` | free `d` | `deq-complete` |
    /// | none | invariant intact | nothing | `intact` |
    fn repair(&self, victim: usize) {
        // A repairer killed here leaves `repairing(dead)` in the lock
        // word — revocable by the same rule, so the next waiter
        // re-revokes and inherits the repair duty (the fault sweep in
        // `tests/fault_injection.rs` drives exactly that chain).
        self.platform.fault_point("single-lock:repair:window");
        let outcome = self.repair_torn_state();
        self.platform.mark_repaired(victim, outcome);
    }

    fn repair_torn_state(&self) -> &'static str {
        let intent = self.enq_intent.load();
        if intent != 0 {
            let node = (intent - 1) as u32;
            self.enq_intent.store(0);
            let tail = self.tail.load() as u32;
            if tail == node {
                // The victim finished everything but the intent clear.
                return "single-lock:repair:enq-complete";
            }
            let link = self.arena.next(tail);
            if !link.is_null() && link.index() == node {
                // Linked but Tail not swung: finish the enqueue. The
                // victim's operation took effect — count it linearized.
                self.tail.store(u64::from(node));
                return "single-lock:repair:enq-complete";
            }
            // Never linked: the enqueue did not happen. Discard the node
            // so its arena unit (and any memory-budget reservation it
            // backs) is not leaked.
            self.arena.free(node);
            return "single-lock:repair:enq-discard";
        }
        let intent = self.deq_intent.load();
        if intent != 0 {
            let node = (intent - 1) as u32;
            self.deq_intent.store(0);
            if self.head.load() as u32 == node {
                // Head never swung: the dequeue did not happen.
                return "single-lock:repair:deq-rollback";
            }
            // Head swung but the victim died before recycling the old
            // dummy: free it.
            self.arena.free(node);
            return "single-lock:repair:deq-complete";
        }
        // Died between acquiring the lock and publishing intent (or after
        // clearing it): the invariant is intact.
        "single-lock:repair:intact"
    }
}

impl<P: Platform> ConcurrentWordQueue for RepairableSingleLockQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        if let Acquired::Repairing { victim } = self.lock.lock(&self.platform) {
            self.repair(victim);
        }
        self.enq_intent.store(u64::from(node) + 1);
        // Same kill window as the plain queue — but here a death leaves a
        // repairable intent record instead of a wedged queue.
        self.platform.fault_point("single-lock:enq:locked");
        let tail = self.tail.load() as u32;
        self.arena.set_next(tail, node);
        self.tail.store(u64::from(node));
        self.enq_intent.store(0);
        self.lock.unlock(&self.platform);
        Ok(())
    }

    fn dequeue(&self) -> Option<u64> {
        if let Acquired::Repairing { victim } = self.lock.lock(&self.platform) {
            self.repair(victim);
        }
        let node = self.head.load() as u32;
        let next = self.arena.next(node);
        if next.is_null() {
            self.lock.unlock(&self.platform);
            return None;
        }
        self.deq_intent.store(u64::from(node) + 1);
        self.platform.fault_point("single-lock:deq:locked");
        let value = self.arena.value(next.index());
        self.head.store(u64::from(next.index()));
        self.deq_intent.store(0);
        self.lock.unlock(&self.platform);
        self.arena.free(node);
        Some(value)
    }

    fn name(&self) -> &'static str {
        "single-lock-repair"
    }

    fn is_nonblocking(&self) -> bool {
        false
    }
}

impl<P: Platform> std::fmt::Debug for RepairableSingleLockQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RepairableSingleLockQueue(capacity={})", self.capacity())
    }
}

/// Mellor-Crummey's queue with announce-cell repair: the crash-survivable
/// counterpart of [`crate::McQueue`].
///
/// There is no lock to revoke — the hazard is the torn-tail window
/// between the enqueue's `swap` and its link store. Each enqueue
/// publishes its progress in a per-process announce cell:
///
/// 1. `node + 1` — allocated, not yet published (a death here is rolled
///    back by freeing the node);
/// 2. `(prev + 1) << 32 | (node + 1)` — `Tail` swapped, link not yet
///    stored (a death here is completed by storing the link);
/// 3. `0` — linked; nothing in flight.
///
/// Dequeues announce `old_dummy + 1` between their winning head CAS and
/// the recycle, so a death there frees the stranded dummy.
///
/// Dequeuers poll [`Platform::dead_peers`] once per call (and on every
/// torn-tail wait iteration) and CAS-claim dead processes' announce
/// cells; the claim makes each repair exactly-once even with several
/// concurrent repairers.
///
/// # Example
///
/// ```
/// use msq_baselines::RepairableMcQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = RepairableMcQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(3).unwrap();
/// assert_eq!(queue.dequeue(), Some(3));
/// ```
pub struct RepairableMcQueue<P: Platform> {
    /// Tagged word (dequeuers CAS it, so it needs the ABA counter).
    head: P::Cell,
    /// Plain node index: only ever `swap`ped, which is ABA-immune.
    tail: P::Cell,
    /// Per-process enqueue progress (see the type-level docs).
    enq_announce: Vec<P::Cell>,
    /// Per-process dequeue progress: `old_dummy + 1` between the winning
    /// head CAS and the recycle.
    deq_announce: Vec<P::Cell>,
    /// Bit `p` set once `p`'s death has been fully repaired — an
    /// optimization that spares later dequeues the announce-cell scan.
    repaired_mask: P::Cell,
    arena: NodeArena<P>,
    platform: P,
    backoff: BackoffConfig,
}

impl<P: Platform> RepairableMcQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`RepairableMcQueue::with_capacity`] with explicit backoff
    /// parameters for the dequeue-side waits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`RepairableMcQueue::with_capacity`], metering the node pool
    /// against `budget` for the queue's lifetime.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<msq_arena::MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        let _ = platform.dead_peers();
        RepairableMcQueue {
            head: platform.alloc_cell(Tagged::new(dummy, 0).raw()),
            tail: platform.alloc_cell(u64::from(dummy)),
            enq_announce: (0..REPAIR_PIDS).map(|_| platform.alloc_cell(0)).collect(),
            deq_announce: (0..REPAIR_PIDS).map(|_| platform.alloc_cell(0)).collect(),
            repaired_mask: platform.alloc_cell(0),
            arena,
            platform: platform.clone(),
            backoff,
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }

    /// Consults the death board and repairs any dead process whose
    /// announce cell still records an in-flight operation. Exactly-once
    /// per victim via the CAS claim on the announce cell itself; the
    /// `repaired_mask` short-circuit keeps the steady-state cost after a
    /// handled death to two loads per dequeue.
    fn repair_dead(&self) {
        let dead = self.platform.dead_peers();
        if dead == 0 {
            return;
        }
        let done = self.repaired_mask.load();
        let pending = dead & !done;
        if pending == 0 {
            return;
        }
        for pid in 0..REPAIR_PIDS.min(64) {
            if pending & (1 << pid) == 0 {
                continue;
            }
            let slot = &self.enq_announce[pid];
            let v = slot.load();
            if v != 0 && slot.cas(v, 0) {
                let outcome = if v >> 32 == 0 {
                    // Allocated but never published: roll back.
                    self.arena.free((v - 1) as u32);
                    "mc:repair:enq-discard"
                } else {
                    // Tail swapped but the link never landed — the tear
                    // that blocks every plain-MC dequeuer. Complete it.
                    let prev = ((v >> 32) - 1) as u32;
                    let node = ((v & 0xffff_ffff) - 1) as u32;
                    self.arena.set_next(prev, node);
                    "mc:repair:enq-complete"
                };
                self.platform.mark_repaired(pid, outcome);
            }
            let slot = &self.deq_announce[pid];
            let v = slot.load();
            if v != 0 && slot.cas(v, 0) {
                // Head swung but the old dummy was never recycled.
                self.arena.free((v - 1) as u32);
                self.platform.mark_repaired(pid, "mc:repair:deq-complete");
            }
        }
        // Best-effort: losing this CAS only means another repairer
        // published the bits; the announce claims above are what make
        // each repair exactly-once.
        let _ = self.repaired_mask.cas(done, done | pending);
    }
}

impl<P: Platform> ConcurrentWordQueue for RepairableMcQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        let pid = self.platform.affinity_hint();
        let slot = (pid < REPAIR_PIDS).then(|| &self.enq_announce[pid]);
        if let Some(slot) = slot {
            slot.store(u64::from(node) + 1);
        }
        let prev = self.tail.swap(u64::from(node)) as u32;
        if let Some(slot) = slot {
            slot.store((u64::from(prev) + 1) << 32 | (u64::from(node) + 1));
        }
        // The same torn-tail window as plain MC — but the announce cell
        // above lets any survivor complete the link if we die here.
        self.platform.fault_point("mc:enq:window");
        self.arena.set_next(prev, node);
        if let Some(slot) = slot {
            slot.store(0);
        }
        Ok(())
    }

    fn dequeue(&self) -> Option<u64> {
        self.repair_dead();
        let pid = self.platform.affinity_hint();
        let slot = (pid < REPAIR_PIDS).then(|| &self.deq_announce[pid]);
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let head = Tagged::from_raw(self.head.load());
            let next = self.arena.next(head.index());
            if next.is_null() {
                if self.tail.load() as u32 == head.index() {
                    return None;
                }
                // Torn tail: a stalled — or dead — enqueuer. Plain MC can
                // only wait; here we check for a death notice and repair.
                self.repair_dead();
                backoff.spin(&self.platform);
                continue;
            }
            let value = self.arena.value(next.index());
            if self
                .head
                .cas(head.raw(), head.with_index(next.index()).raw())
            {
                if let Some(slot) = slot {
                    slot.store(u64::from(head.index()) + 1);
                }
                self.platform.fault_point("mc:deq:window");
                self.arena.free(head.index());
                if let Some(slot) = slot {
                    slot.store(0);
                }
                return Some(value);
            }
            backoff.spin(&self.platform);
        }
    }

    fn name(&self) -> &'static str {
        "mellor-crummey-repair"
    }

    fn is_nonblocking(&self) -> bool {
        false
    }
}

impl<P: Platform> std::fmt::Debug for RepairableMcQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RepairableMcQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    #[test]
    fn single_lock_repairable_fifo_and_capacity() {
        let q = RepairableSingleLockQueue::with_capacity(&NativePlatform::new(), 2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(QueueFull(3)));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mc_repairable_fifo_and_capacity() {
        let q = RepairableMcQueue::with_capacity(&NativePlatform::new(), 2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(QueueFull(3)));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn repairable_variants_report_identity() {
        let p = NativePlatform::new();
        let q = RepairableSingleLockQueue::with_capacity(&p, 1);
        assert_eq!(q.name(), "single-lock-repair");
        assert!(!q.is_nonblocking());
        let q = RepairableMcQueue::with_capacity(&p, 1);
        assert_eq!(q.name(), "mellor-crummey-repair");
        assert!(!q.is_nonblocking());
    }

    #[test]
    fn single_lock_repairable_concurrent_conservation() {
        let q = Arc::new(RepairableSingleLockQueue::with_capacity(
            &NativePlatform::new(),
            256,
        ));
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let total = 4 * 2_000_u64;
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000_u64 {
                    let v = t * 2_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
    }

    #[test]
    fn mc_repairable_concurrent_conservation() {
        let q = Arc::new(RepairableMcQueue::with_capacity(
            &NativePlatform::new(),
            256,
        ));
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let total = 4 * 2_000_u64;
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000_u64 {
                    let v = t * 2_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
    }

    /// The headline tentpole property at the queue level: a process
    /// killed while holding the (single) queue lock is dispossessed by a
    /// survivor, the half-done enqueue is repaired, and the queue keeps
    /// serving — no watchdog retirement, conservation intact.
    #[test]
    fn killed_enqueuer_is_repaired_and_survivors_proceed() {
        use msq_sim::{FaultPlan, SimConfig, Simulation};
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 3,
                watchdog_ns: 400_000_000,
                ..SimConfig::default()
            },
            FaultPlan::new().kill_at_label(0, "single-lock:enq:locked", 2),
        );
        let platform = sim.platform();
        let q = Arc::new(RepairableSingleLockQueue::with_capacity(&platform, 64));
        let report = sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..20u64 {
                    q.enqueue((info.pid as u64) << 32 | i).unwrap();
                    q.dequeue().expect("a value is always available");
                }
            }
        });
        assert_eq!(report.killed, vec![0]);
        assert!(report.blocked.is_empty(), "repair must beat the watchdog");
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.repairs[0].victim, 0);
        assert!(report.repairs[0].point.starts_with("single-lock:repair:"));
        assert!(report.repairs[0].time_to_repair_ns() > 0);
        // Survivors completed all their pairs; at most the victim's
        // in-flight value remains (completed repair) or none (discard).
        let mut rest = 0;
        while q.dequeue().is_some() {
            rest += 1;
        }
        assert!(rest <= 1, "at most the victim's in-flight enqueue remains");
    }

    /// Same property for MC's torn-tail window: the dead enqueuer's link
    /// is completed by a waiting dequeuer (there is no lock — the repair
    /// is claimed through the announce cell).
    #[test]
    fn killed_mc_enqueuer_torn_tail_is_healed() {
        use msq_sim::{FaultPlan, SimConfig, Simulation};
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 3,
                watchdog_ns: 400_000_000,
                ..SimConfig::default()
            },
            FaultPlan::new().kill_at_label(0, "mc:enq:window", 2),
        );
        let platform = sim.platform();
        let q = Arc::new(RepairableMcQueue::with_capacity(&platform, 64));
        let report = sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..20u64 {
                    q.enqueue((info.pid as u64) << 32 | i).unwrap();
                    q.dequeue().expect("a value is always available");
                }
            }
        });
        assert_eq!(report.killed, vec![0]);
        assert!(report.blocked.is_empty(), "repair must beat the watchdog");
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.repairs[0].point, "mc:repair:enq-complete");
        assert!(report.repairs[0].time_to_repair_ns() > 0);
        // The victim's announced enqueue was completed by the repair, so
        // exactly its in-flight value remains after the survivors' pairs.
        assert!(q.dequeue().is_some(), "the healed enqueue is dequeueable");
        assert_eq!(q.dequeue(), None);
    }
}
