//! The composable scenario engine: pluggable workload shapes over one
//! unified driver.
//!
//! The harness originally grew one `run_*` entry point per workload
//! shape, each re-implementing the same plumbing — process spawn, fault
//! and recovery wiring, budget metering, the post-run drain, and
//! [`MeasuredPoint`]/[`FaultedPoint`] assembly. This module factors that
//! plumbing into two drivers ([`run_scenario_simulated`] and
//! [`run_scenario_native`]) parameterized by a [`Scenario`]: the
//! per-process op script plus the declarative bits the driver needs
//! (queue count, setup cells, drain safety, net-time accounting, and a
//! conservation predicate).
//!
//! The legacy entry points (`run_simulated`, `run_simulated_faulted`,
//! `run_simulated_recovered`, `run_simulated_repaired`,
//! `run_simulated_batched`, `run_native`, `run_native_batched`) are thin
//! wrappers over the same driver, and the `backend_equivalence`
//! integration test pins their `SimReport`s byte-identical to the
//! pre-refactor loops.
//!
//! Three scenario shapes beyond the paper's ship here:
//!
//! * [`StealingScenario`] — per-worker queues with a deterministic
//!   round-robin steal path, in the spirit of Sundell–Tsigas/Arora-style
//!   work-stealing runtimes (our queues are FIFO, so owner and thief
//!   take the same end; victim order is `pid+1, pid+2, …` so the steal
//!   schedule is a pure function of the seed under the simulator).
//! * [`PipelineScenario`] — a fan-out/fan-in pipeline: stage 0
//!   generates, interior stages transform queue-to-queue, the last
//!   stage consumes, with per-stage conservation checks.
//! * [`OpenLoopScenario`] — open-loop bursty arrivals: producers pace a
//!   seeded Poisson-like schedule on [`Platform::now_ns`] and stamp each
//!   item with its arrival time; consumers report enqueue-to-dequeue
//!   latency ([`Platform::record_latency`]) instead of only throughput,
//!   so saturation shows up as a latency distribution, not a smaller
//!   ops/sec number.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use msq_arena::MemBudget;
use msq_platform::{AtomicWord, ConcurrentWordQueue, NativePlatform, Platform};
use msq_sim::{FaultPlan, RecoveryPolicy, SimConfig, SimPlatform, SimReport, Simulation};

use crate::registry::Algorithm;
use crate::workload::{share, FaultedPoint, MeasuredPoint, WorkloadConfig, RECOVERY_BIT};

/// Low 40 bits of a value word: the arrival-time stamp an open-loop
/// producer folds into each item (the pid lives in bits 40+, so stamps
/// wrap modulo ~18 virtual minutes without colliding across producers).
const MASK40: u64 = (1 << 40) - 1;

/// Idle-wait backoff for a scenario worker with nothing to do yet (an
/// empty steal sweep, a starved pipeline stage, an idle open-loop
/// consumer): one timed wait instead of a step-dense `cpu_relax` spin.
/// Small against every per-item cost in play, so the added latency
/// noise is bounded; large against a single scheduler step, so a
/// simulated idle wait advances in one hop instead of hundreds.
const IDLE_BACKOFF_NS: u64 = 200;

/// Host-side counters shared by every process of a scenario run.
///
/// These live outside the simulated machine: updates are ordinary Rust
/// atomics, cost no virtual time, and are invisible to the `SimReport` —
/// which is what lets one scenario body serve both the plain and the
/// faulted legacy entry points byte-identically.
pub struct ScenarioCounters {
    /// Work units completed per process (a killed process's finished
    /// units still count — its closure never returns).
    pub per_process: Vec<AtomicU64>,
    /// Work units replayed on behalf of dead victims under a recovery
    /// policy.
    pub recovered: AtomicU64,
    /// Scenario-defined tally slots ([`Scenario::num_tallies`]): steal
    /// counts, per-stage throughput, and the like.
    pub tallies: Vec<AtomicU64>,
    /// Enqueue-to-dequeue latency samples in nanoseconds, pushed by
    /// consumers of latency-stamping scenarios.
    pub latencies_ns: Mutex<Vec<u64>>,
}

impl ScenarioCounters {
    fn new(processes: usize, tallies: usize) -> Self {
        ScenarioCounters {
            per_process: (0..processes).map(|_| AtomicU64::new(0)).collect(),
            recovered: AtomicU64::new(0),
            tallies: (0..tallies).map(|_| AtomicU64::new(0)).collect(),
            latencies_ns: Mutex::new(Vec::new()),
        }
    }

    /// Sum of completed work units over all processes.
    pub fn completed(&self) -> u64 {
        self.per_process
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// Everything a scenario's per-process script can touch.
pub struct ScenarioCtx<'a, P: Platform> {
    /// This process's id, `0..num_processes`.
    pub pid: usize,
    /// Total processes in the run.
    pub num_processes: usize,
    /// The execution platform (virtual or native time).
    pub platform: &'a P,
    /// The queues under test, `Scenario::num_queues` of them.
    pub queues: &'a [Arc<dyn ConcurrentWordQueue>],
    /// Shared cells allocated during untimed setup
    /// ([`Scenario::num_cells`]), in allocation order.
    pub cells: &'a [P::Cell],
    /// The run's host-side counters.
    pub counters: &'a ScenarioCounters,
}

/// A pluggable workload shape: the per-process op script plus the
/// declarative facts the unified driver needs to run it.
///
/// Implementations are generic over the [`Platform`] so one scenario
/// drives both the simulator and native threads; anything simulator-only
/// (death notices, fault points) degrades to a no-op natively through
/// the platform trait's defaults.
pub trait Scenario<P: Platform>: Send + Sync + 'static {
    /// Short label naming the scenario in reports and bench JSON.
    fn label(&self) -> &'static str;

    /// The workload parameters (op count, other-work spin, capacity,
    /// budget) driving the scenario.
    fn workload(&self) -> &WorkloadConfig;

    /// How many queues the driver builds (`n` = process count). The
    /// classic shapes use one; work-stealing uses one per worker.
    fn num_queues(&self, n: usize) -> usize {
        let _ = n;
        1
    }

    /// Whether queues are built as their crash-survivable repairable
    /// variants ([`Algorithm::build_repairable`]).
    fn repairable(&self) -> bool {
        false
    }

    /// Shared cells the driver allocates during untimed setup, before
    /// the run, so cell ids (and therefore schedules) are stable.
    fn num_cells(&self, n: usize) -> usize {
        let _ = n;
        0
    }

    /// Whether the simulator's death board must be allocated during
    /// setup (scenarios that poll [`Platform::dead_peers`] mid-run).
    fn uses_death_board(&self) -> bool {
        false
    }

    /// Host-side tally slots to allocate in [`ScenarioCounters::tallies`].
    fn num_tallies(&self) -> usize {
        0
    }

    /// Validates the machine shape before the run; panic on misuse.
    fn validate(&self, n: usize) {
        let _ = n;
    }

    /// The per-process op script.
    fn run(&self, cx: &ScenarioCtx<'_, P>);

    /// The "other work" one processor performs over the run, subtracted
    /// from elapsed time to produce the paper-style net time. Return 0
    /// for open-loop shapes whose figure of merit is latency.
    fn other_work_share(&self, processors: usize) -> u64;

    /// Whether the post-run drain is safe even when the plan killed a
    /// process on a blocking queue (repairable queues: the drain itself
    /// revokes a dead holder's lock).
    fn drain_after_kills(&self) -> bool {
        false
    }

    /// Conservation predicate, invoked by the driver after a clean run
    /// (nobody killed, nobody blocked, queue drained); panic on
    /// violation.
    fn check_conservation(&self, counters: &ScenarioCounters, drained: u64) {
        let _ = (counters, drained);
    }
}

/// The result of one scenario run: the fault-aware measurement, the raw
/// `SimReport` (simulated runs only — the equivalence tests pin it), the
/// scenario's tallies, and the sorted latency samples.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The measurement, in the same shape every legacy entry point
    /// reports (native runs leave the fault fields empty).
    pub point: FaultedPoint,
    /// The run's raw simulator report; `None` for native runs.
    pub sim_report: Option<SimReport>,
    /// Final values of the scenario's tally slots.
    pub tallies: Vec<u64>,
    /// Enqueue-to-dequeue latency samples, sorted ascending (empty for
    /// scenarios that do not stamp latencies).
    pub latencies_ns: Vec<u64>,
}

impl ScenarioOutcome {
    /// The `pct`-th percentile of the run's latency samples, or `None`
    /// when the scenario recorded none.
    pub fn latency_percentile_ns(&self, pct: f64) -> Option<u64> {
        if self.latencies_ns.is_empty() {
            None
        } else {
            Some(percentile_ns(&self.latencies_ns, pct))
        }
    }
}

/// Nearest-rank percentile (`pct` in (0, 100]) over an ascending-sorted
/// sample slice.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_ns(sorted: &[u64], pct: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn build_queues<P: Platform, S: Scenario<P> + ?Sized>(
    scenario: &S,
    algorithm: Algorithm,
    platform: &P,
    n: usize,
    budget: &Option<Arc<MemBudget<P>>>,
) -> Vec<Arc<dyn ConcurrentWordQueue>> {
    let workload = scenario.workload();
    (0..scenario.num_queues(n))
        .map(|_| {
            if scenario.repairable() {
                algorithm.build_repairable_with_budget(platform, workload.capacity, budget.clone())
            } else {
                algorithm.build_with_budget(platform, workload.capacity, budget.clone())
            }
        })
        .collect()
}

fn drain_all(queues: &[Arc<dyn ConcurrentWordQueue>]) -> u64 {
    let mut count = 0u64;
    for queue in queues {
        while queue.dequeue().is_some() {
            count += 1;
        }
    }
    count
}

fn sorted_latencies(counters: &ScenarioCounters) -> Vec<u64> {
    let mut samples = counters
        .latencies_ns
        .lock()
        .expect("latency samples")
        .clone();
    samples.sort_unstable();
    samples
}

/// Runs `scenario` for `algorithm` on the deterministic simulator with
/// `plan`'s faults injected.
///
/// This is the single driver every simulated legacy entry point wraps:
/// it owns budget wiring, queue construction, schedule-stable cell
/// allocation (scenario cells first, then the death board — the same
/// order on every backend), process spawn, the guarded post-run drain,
/// conservation checking, and measurement assembly.
pub fn run_scenario_simulated<S: Scenario<SimPlatform>>(
    algorithm: Algorithm,
    sim_config: SimConfig,
    scenario: S,
    plan: FaultPlan,
) -> ScenarioOutcome {
    let has_kills = plan.has_kills();
    let sim = Simulation::with_faults(sim_config, plan);
    let platform = sim.platform();
    let workload = *scenario.workload();
    let n = sim.num_processes();
    scenario.validate(n);
    let budget = workload
        .mem_budget
        .map(|limit| Arc::new(MemBudget::new(&platform, limit)));
    let queues: Arc<Vec<Arc<dyn ConcurrentWordQueue>>> =
        Arc::new(build_queues(&scenario, algorithm, &platform, n, &budget));
    // Setup is untimed: allocate the scenario's cells (and, if it polls
    // death notices, the board) before the run so every backend sees
    // identical cell ids.
    let cells: Arc<Vec<_>> = Arc::new(
        (0..scenario.num_cells(n))
            .map(|_| platform.alloc_cell(0))
            .collect(),
    );
    if scenario.uses_death_board() {
        let _ = platform.death_board();
    }
    let counters = Arc::new(ScenarioCounters::new(n, scenario.num_tallies()));
    let scenario = Arc::new(scenario);
    let report = sim.run({
        let queues = Arc::clone(&queues);
        let cells = Arc::clone(&cells);
        let counters = Arc::clone(&counters);
        let scenario = Arc::clone(&scenario);
        let platform = platform.clone();
        move |info| {
            let cx = ScenarioCtx {
                pid: info.pid,
                num_processes: info.num_processes,
                platform: &platform,
                queues: &queues,
                cells: &cells,
                counters: &counters,
            };
            scenario.run(&cx);
        }
    });
    // Draining a blocking queue whose lock died held would spin forever
    // on the *native* caller thread (no watchdog out here); skip it
    // unless the scenario's queues survive that (repairable variants).
    let drain_is_safe = scenario.drain_after_kills() || !has_kills || algorithm.is_nonblocking();
    let drained = if drain_is_safe && report.blocked.is_empty() {
        Some(drain_all(&queues))
    } else {
        None
    };
    if report.killed.is_empty() && report.blocked.is_empty() {
        if let Some(count) = drained {
            scenario.check_conservation(&counters, count);
        }
    }
    let per_processor_other_work = scenario.other_work_share(sim_config.processors);
    let point = FaultedPoint {
        point: MeasuredPoint {
            algorithm,
            processors: sim_config.processors,
            processes: n,
            pairs: workload.pairs_total,
            elapsed_ns: report.elapsed_ns,
            net_ns: report.elapsed_ns.saturating_sub(per_processor_other_work),
            miss_rate: report.miss_rate(),
            cas_failures: report.cas_failures,
            preemptions: report.preemptions,
            peak_resident_segments: budget.as_ref().map(|b| b.peak()),
            budget_denials: budget.as_ref().map(|b| b.denials()),
        },
        pairs_completed: counters.completed(),
        killed: report.killed.clone(),
        blocked: report.blocked.clone(),
        blocked_kinds: report.blocked_kinds.clone(),
        stalls_injected: report.stalls_injected,
        preempts_injected: report.preempts_injected,
        max_completion_ns: report.max_completion_ns(),
        drained,
        recovered_pairs: counters.recovered.load(Ordering::Relaxed),
        time_to_recover_ns: report.time_to_recover_ns(),
        recoveries: report.recoveries.clone(),
        repairs: report.repairs.clone(),
        time_to_repair_ns: report.time_to_repair_ns(),
    };
    ScenarioOutcome {
        point,
        tallies: counters
            .tallies
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .collect(),
        latencies_ns: sorted_latencies(&counters),
        sim_report: Some(report),
    }
}

/// Runs `scenario` for `algorithm` on real threads: the native
/// counterpart of [`run_scenario_simulated`] (no faults — threads either
/// run or the whole process is gone).
pub fn run_scenario_native<S: Scenario<NativePlatform>>(
    algorithm: Algorithm,
    processes: usize,
    scenario: S,
) -> ScenarioOutcome {
    assert!(processes >= 1);
    scenario.validate(processes);
    let platform = NativePlatform::new();
    let workload = *scenario.workload();
    let budget = workload
        .mem_budget
        .map(|limit| Arc::new(MemBudget::new(&platform, limit)));
    let queues: Arc<Vec<Arc<dyn ConcurrentWordQueue>>> = Arc::new(build_queues(
        &scenario, algorithm, &platform, processes, &budget,
    ));
    let cells: Arc<Vec<_>> = Arc::new(
        (0..scenario.num_cells(processes))
            .map(|_| platform.alloc_cell(0))
            .collect(),
    );
    let counters = Arc::new(ScenarioCounters::new(processes, scenario.num_tallies()));
    let scenario = Arc::new(scenario);
    let barrier = Arc::new(Barrier::new(processes + 1));
    let mut handles = Vec::new();
    for pid in 0..processes {
        let queues = Arc::clone(&queues);
        let cells = Arc::clone(&cells);
        let counters = Arc::clone(&counters);
        let scenario = Arc::clone(&scenario);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let platform = NativePlatform::new();
            barrier.wait();
            let cx = ScenarioCtx {
                pid,
                num_processes: processes,
                platform: &platform,
                queues: &queues,
                cells: &cells,
                counters: &counters,
            };
            scenario.run(&cx);
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for handle in handles {
        handle.join().expect("workload thread");
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let drained = drain_all(&queues);
    scenario.check_conservation(&counters, drained);
    let per_processor_other_work = scenario.other_work_share(processes);
    let point = FaultedPoint {
        point: MeasuredPoint {
            algorithm,
            processors: processes,
            processes,
            pairs: workload.pairs_total,
            elapsed_ns,
            net_ns: elapsed_ns.saturating_sub(per_processor_other_work),
            miss_rate: 0.0,
            cas_failures: 0,
            preemptions: 0,
            peak_resident_segments: budget.as_ref().map(|b| b.peak()),
            budget_denials: budget.as_ref().map(|b| b.denials()),
        },
        pairs_completed: counters.completed(),
        killed: Vec::new(),
        blocked: Vec::new(),
        blocked_kinds: Vec::new(),
        stalls_injected: 0,
        preempts_injected: 0,
        max_completion_ns: elapsed_ns,
        drained: Some(drained),
        recovered_pairs: counters.recovered.load(Ordering::Relaxed),
        time_to_recover_ns: None,
        recoveries: Vec::new(),
        repairs: Vec::new(),
        time_to_repair_ns: None,
    };
    ScenarioOutcome {
        point,
        tallies: counters
            .tallies
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .collect(),
        latencies_ns: sorted_latencies(&counters),
        sim_report: None,
    }
}

// ---------------------------------------------------------------------------
// The paper's shapes, as scenarios.
// ---------------------------------------------------------------------------

/// The paper's Section 4 workload: every process repeatedly enqueues,
/// spins ~6 µs of other work, dequeues, and spins again, for
/// `pairs_total` pairs across all processes.
#[derive(Clone, Copy, Debug)]
pub struct PairedScenario {
    /// Workload parameters.
    pub workload: WorkloadConfig,
}

impl<P: Platform> Scenario<P> for PairedScenario {
    fn label(&self) -> &'static str {
        "paired"
    }

    fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    fn run(&self, cx: &ScenarioCtx<'_, P>) {
        let my_pairs = share(self.workload.pairs_total, cx.num_processes, cx.pid);
        let other_work_ns = self.workload.other_work_ns;
        let queue = &*cx.queues[0];
        for i in 0..my_pairs {
            let value = ((cx.pid as u64) << 40) | i;
            // Valois can transiently exhaust its pool under preemption;
            // every other algorithm succeeds immediately when
            // capacity >= processes.
            while queue.enqueue(value).is_err() {
                cx.platform.cpu_relax();
            }
            cx.platform.delay(other_work_ns);
            // A dequeue may observe empty only transiently (each process
            // enqueued before dequeuing, so the queue holds at least as
            // many values as there are processes inside `dequeue`); retry.
            while queue.dequeue().is_none() {
                cx.platform.cpu_relax();
            }
            cx.platform.delay(other_work_ns);
            // Recorded per pair so a killed process's completed work
            // still counts (its closure never returns).
            cx.counters.per_process[cx.pid].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn other_work_share(&self, processors: usize) -> u64 {
        // Each processor's processes execute pairs_total / processors
        // pairs in aggregate, each pair spinning twice.
        (self.workload.pairs_total / processors as u64) * 2 * self.workload.other_work_ns
    }

    fn check_conservation(&self, counters: &ScenarioCounters, drained: u64) {
        assert_eq!(counters.completed(), self.workload.pairs_total);
        assert_eq!(drained, 0, "workload must drain the queue");
    }
}

/// The batch-mode workload: each process moves its pairs in rounds of
/// `batch` via `enqueue_batch`/`dequeue_batch` (trait defaults degrade
/// to per-op loops for the paper's six, so every algorithm is drivable).
#[derive(Clone, Copy, Debug)]
pub struct BatchedScenario {
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Pairs moved per round.
    pub batch: usize,
}

impl<P: Platform> Scenario<P> for BatchedScenario {
    fn label(&self) -> &'static str {
        "batched"
    }

    fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    fn validate(&self, n: usize) {
        assert!(self.batch >= 1);
        // Every process may hold a whole batch in flight; a tighter
        // capacity could deadlock all producers against a full queue.
        assert!(
            u64::from(self.workload.capacity) >= (n as u64) * (self.batch as u64),
            "capacity must cover processes * batch"
        );
    }

    fn run(&self, cx: &ScenarioCtx<'_, P>) {
        let my_pairs = share(self.workload.pairs_total, cx.num_processes, cx.pid);
        let other_work_ns = self.workload.other_work_ns;
        let batch = self.batch;
        let queue = &*cx.queues[0];
        let mut out: Vec<u64> = Vec::with_capacity(batch);
        let mut done = 0u64;
        while done < my_pairs {
            let b = (my_pairs - done).min(batch as u64);
            let values: Vec<u64> = (done..done + b)
                .map(|i| ((cx.pid as u64) << 40) | i)
                .collect();
            let mut rest: &[u64] = &values;
            // A bounded queue can fill transiently; retry the unconsumed
            // suffix (the prefix is already in, in order).
            loop {
                match queue.enqueue_batch(rest) {
                    Ok(()) => break,
                    Err(e) => {
                        rest = &rest[e.pushed..];
                        cx.platform.cpu_relax();
                    }
                }
            }
            cx.platform.delay(other_work_ns);
            // Every process enqueues its batch before collecting one
            // back, so the union of shards/segments holds at least `b`
            // values while anyone is still collecting; empty sweeps are
            // transient.
            let mut taken = 0usize;
            while taken < b as usize {
                let got = queue.dequeue_batch(&mut out, b as usize - taken);
                if got == 0 {
                    cx.platform.cpu_relax();
                }
                taken += got;
            }
            out.clear();
            cx.platform.delay(other_work_ns);
            done += b;
            cx.counters.per_process[cx.pid].fetch_add(b, Ordering::Relaxed);
        }
    }

    fn other_work_share(&self, processors: usize) -> u64 {
        // One round of `batch` pairs spins the other work twice.
        (self.workload.pairs_total / processors as u64 / self.batch as u64)
            * 2
            * self.workload.other_work_ns
    }

    fn check_conservation(&self, counters: &ScenarioCounters, drained: u64) {
        assert_eq!(counters.completed(), self.workload.pairs_total);
        assert_eq!(drained, 0, "workload must drain the queue");
    }
}

/// The paired workload under a restart-and-catch-up [`RecoveryPolicy`]:
/// every process publishes its progress to a shared cell, and the
/// designated survivor polls the death board — once per own pair and
/// then continuously after its own share — absorbing each killed
/// victim's residual share (replayed with `RECOVERY_BIT`-marked values)
/// before stamping the handoff with [`Platform::mark_recovered`].
///
/// With `repairable` set the queues are built crash-survivable
/// ([`Algorithm::build_repairable`]) and the post-run drain is always
/// attempted (the drain itself revokes a still-held dead lock).
#[derive(Clone, Copy, Debug)]
pub struct PolicyScenario {
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Which survivor absorbs victims' shares.
    pub policy: RecoveryPolicy,
    /// Build the crash-survivable repairable queue variants.
    pub repairable: bool,
}

impl<P: Platform> Scenario<P> for PolicyScenario {
    fn label(&self) -> &'static str {
        if self.repairable {
            "repaired"
        } else {
            "recovered"
        }
    }

    fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    fn repairable(&self) -> bool {
        self.repairable
    }

    fn num_cells(&self, n: usize) -> usize {
        n // one progress cell per process
    }

    fn uses_death_board(&self) -> bool {
        true
    }

    fn validate(&self, n: usize) {
        assert!(
            self.policy.survivor < n,
            "designated survivor must be a pid"
        );
    }

    fn drain_after_kills(&self) -> bool {
        self.repairable
    }

    fn run(&self, cx: &ScenarioCtx<'_, P>) {
        let n = cx.num_processes;
        let pairs_total = self.workload.pairs_total;
        let other_work_ns = self.workload.other_work_ns;
        let policy = self.policy;
        let queue = &*cx.queues[0];
        let progress = cx.cells;
        let my_pairs = share(pairs_total, n, cx.pid);
        let mut absorbed = vec![false; n];
        let run_pair = |value: u64| {
            while queue.enqueue(value).is_err() {
                cx.platform.cpu_relax();
            }
            cx.platform.delay(other_work_ns);
            while queue.dequeue().is_none() {
                cx.platform.cpu_relax();
            }
            cx.platform.delay(other_work_ns);
        };
        // Absorb any victim whose death notice is newly posted: size its
        // residual share from its progress cell, replay it, and stamp
        // the handoff.
        let absorb_new_deaths = |absorbed: &mut [bool]| {
            let notices = cx.platform.dead_peers();
            for victim in 0..n.min(64) {
                if victim == cx.pid || absorbed[victim] || notices & (1 << victim) == 0 {
                    continue;
                }
                absorbed[victim] = true;
                let done = progress[victim].load();
                for i in done..share(pairs_total, n, victim) {
                    run_pair(((victim as u64) << 40) | RECOVERY_BIT | i);
                    cx.counters.recovered.fetch_add(1, Ordering::Relaxed);
                }
                cx.platform.mark_recovered(victim);
            }
        };
        for i in 0..my_pairs {
            run_pair(((cx.pid as u64) << 40) | i);
            cx.counters.per_process[cx.pid].fetch_add(1, Ordering::Relaxed);
            progress[cx.pid].store(i + 1);
            if policy.is_survivor(cx.pid) {
                absorb_new_deaths(&mut absorbed);
            }
        }
        if policy.is_survivor(cx.pid) {
            // Stay on watch until every other process has either
            // finished its share or been absorbed. A watchdog-blocked
            // process (lock-based queue, dead lock-holder) posts no
            // notice and never finishes, so the watchdog eventually
            // retires this survivor too — the asserted blocking outcome.
            loop {
                absorb_new_deaths(&mut absorbed);
                let all_settled = (0..n).all(|v| {
                    v == cx.pid || absorbed[v] || progress[v].load() == share(pairs_total, n, v)
                });
                if all_settled {
                    break;
                }
                cx.platform.delay(other_work_ns);
            }
        }
    }

    fn other_work_share(&self, processors: usize) -> u64 {
        (self.workload.pairs_total / processors as u64) * 2 * self.workload.other_work_ns
    }

    fn check_conservation(&self, counters: &ScenarioCounters, drained: u64) {
        assert_eq!(
            counters.completed() + counters.recovered.load(Ordering::Relaxed),
            self.workload.pairs_total
        );
        assert_eq!(drained, 0, "a clean policy run must drain the queue");
    }
}

// ---------------------------------------------------------------------------
// The new shapes.
// ---------------------------------------------------------------------------

/// Work-stealing: every worker owns a queue; the first `max(n/2, 1)`
/// workers produce the task pool into their own queues (deliberately
/// imbalanced, so stealing is load-bearing), and every worker executes
/// tasks from its own queue first, falling back to stealing from victims
/// in deterministic round-robin order (`pid+1, pid+2, …`).
///
/// Production is interleaved with consumption (an owner whose queue is
/// full simply proceeds to execute and retries the enqueue next trip),
/// so any `capacity >= 1` is deadlock-free. A charged shared
/// consumed-counter doubles as the termination signal; owners also
/// publish their produced count to a charged progress cell, so when a
/// producer is killed mid-run the survivors read the death board,
/// subtract the victim's unproduced tasks from the target, and still
/// terminate (instead of spinning for tasks that will never exist).
/// Steals land in `tallies[0]`.
#[derive(Clone, Copy, Debug)]
pub struct StealingScenario {
    /// Workload parameters (`pairs_total` = tasks, `other_work_ns` = the
    /// cost of executing one task).
    pub workload: WorkloadConfig,
}

impl StealingScenario {
    /// Index of the steal tally in [`ScenarioOutcome::tallies`].
    pub const STEALS: usize = 0;

    fn owners(n: usize) -> usize {
        (n / 2).max(1)
    }
}

impl<P: Platform> Scenario<P> for StealingScenario {
    fn label(&self) -> &'static str {
        "stealing"
    }

    fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    fn num_queues(&self, n: usize) -> usize {
        n
    }

    fn num_cells(&self, n: usize) -> usize {
        1 + Self::owners(n) // the consumed counter + per-owner progress
    }

    fn uses_death_board(&self) -> bool {
        true
    }

    fn num_tallies(&self) -> usize {
        1
    }

    fn run(&self, cx: &ScenarioCtx<'_, P>) {
        let n = cx.num_processes;
        let total = self.workload.pairs_total;
        let owners = Self::owners(n);
        let my_seed = if cx.pid < owners {
            share(total, owners, cx.pid)
        } else {
            0
        };
        let consumed = &cx.cells[0];
        let progress = &cx.cells[1..1 + owners];
        let mut produced = 0u64;
        loop {
            // Seed the whole share up front — executing nothing while
            // the queue accepts tasks — so the imbalance is real: the
            // non-owning half works concurrently with production, and
            // stealing carries actual load for every contender. A full
            // queue backpressures production: fall through and execute
            // one task to make room instead of wedging.
            if produced < my_seed {
                let value = ((cx.pid as u64) << 40) | produced;
                if cx.queues[cx.pid].enqueue(value).is_ok() {
                    produced += 1;
                    progress[cx.pid].store(produced);
                    continue;
                }
            }
            let mut stolen = false;
            let mut task = cx.queues[cx.pid].dequeue();
            if task.is_none() {
                for k in 1..n {
                    let victim = (cx.pid + k) % n;
                    if let Some(v) = cx.queues[victim].dequeue() {
                        task = Some(v);
                        stolen = true;
                        break;
                    }
                }
            }
            match task {
                Some(_) => {
                    if stolen {
                        cx.counters.tallies[Self::STEALS].fetch_add(1, Ordering::Relaxed);
                    }
                    cx.platform.delay(self.workload.other_work_ns); // execute
                    consumed.fetch_add(1);
                    cx.counters.per_process[cx.pid].fetch_add(1, Ordering::Relaxed);
                }
                None if produced < my_seed => {} // still seeding; retry
                None => {
                    // Tasks a dead owner never produced will never exist;
                    // shrink the termination target by its residual.
                    let notices = cx.platform.dead_peers();
                    let lost: u64 = (0..owners.min(64))
                        .filter(|&o| notices & (1 << o) != 0)
                        .map(|o| share(total, owners, o) - progress[o].load())
                        .sum();
                    // `>=`: a victim's in-flight enqueue can linearize
                    // beyond its published progress, overshooting the
                    // shrunken target by one.
                    if consumed.load() >= total - lost {
                        break;
                    }
                    // Idle backoff: one timed wait instead of a
                    // step-dense spin, so simulated runs don't burn a
                    // scheduler step per empty probe.
                    cx.platform.delay(IDLE_BACKOFF_NS);
                }
            }
        }
    }

    fn other_work_share(&self, processors: usize) -> u64 {
        // Each task is executed exactly once, at one delay per task.
        (self.workload.pairs_total / processors as u64) * self.workload.other_work_ns
    }

    fn check_conservation(&self, counters: &ScenarioCounters, drained: u64) {
        assert_eq!(
            counters.completed(),
            self.workload.pairs_total,
            "every task executes exactly once"
        );
        assert_eq!(drained, 0, "all worker queues must drain");
    }
}

/// Fan-out/fan-in pipeline: `stages` stages connected by `stages - 1`
/// queues. Stage 0 (pids with `pid % stages == 0`) generates the items,
/// interior stages move them queue-to-queue, the last stage consumes;
/// every stage spins `other_work_ns` per item. A charged per-stage
/// completion counter is the termination signal, and per-stage host
/// tallies feed the stage-conservation check (every stage must handle
/// exactly `pairs_total` items).
#[derive(Clone, Copy, Debug)]
pub struct PipelineScenario {
    /// Workload parameters (`pairs_total` = items through the pipeline).
    pub workload: WorkloadConfig,
    /// Stage count (>= 2); processes are assigned round-robin
    /// (`stage = pid % stages`), so `n >= stages` staffs every stage.
    pub stages: usize,
}

impl<P: Platform> Scenario<P> for PipelineScenario {
    fn label(&self) -> &'static str {
        "pipeline"
    }

    fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    fn num_queues(&self, _n: usize) -> usize {
        self.stages - 1
    }

    fn num_cells(&self, _n: usize) -> usize {
        self.stages // per-stage completion counters
    }

    fn num_tallies(&self) -> usize {
        self.stages
    }

    fn validate(&self, n: usize) {
        assert!(self.stages >= 2, "a pipeline needs at least two stages");
        assert!(n >= self.stages, "every stage needs at least one process");
    }

    fn run(&self, cx: &ScenarioCtx<'_, P>) {
        let n = cx.num_processes;
        let total = self.workload.pairs_total;
        let other_work_ns = self.workload.other_work_ns;
        let stages = self.stages;
        let stage = cx.pid % stages;
        let done_cell = &cx.cells[stage];
        let finish_item = |item_done: &dyn Fn()| {
            cx.platform.delay(other_work_ns);
            item_done();
            done_cell.fetch_add(1);
            cx.counters.tallies[stage].fetch_add(1, Ordering::Relaxed);
            cx.counters.per_process[cx.pid].fetch_add(1, Ordering::Relaxed);
        };
        if stage == 0 {
            // Generator: split the item budget across stage-0 processes.
            let generators = (n - 1) / stages + 1;
            let my_items = share(total, generators, cx.pid / stages);
            for i in 0..my_items {
                let value = ((cx.pid as u64) << 40) | i;
                while cx.queues[0].enqueue(value).is_err() {
                    cx.platform.cpu_relax();
                }
                finish_item(&|| {});
            }
        } else {
            let in_q = &*cx.queues[stage - 1];
            let out_q = (stage < stages - 1).then(|| &*cx.queues[stage]);
            loop {
                match in_q.dequeue() {
                    Some(value) => finish_item(&|| {
                        if let Some(out) = out_q {
                            // Items flow through unchanged; a full
                            // downstream queue backpressures this stage.
                            while out.enqueue(value).is_err() {
                                cx.platform.cpu_relax();
                            }
                        }
                    }),
                    None => {
                        // Stage done iff this stage collectively handled
                        // every item: nothing can ever arrive upstream
                        // again.
                        if done_cell.load() == total {
                            break;
                        }
                        cx.platform.delay(IDLE_BACKOFF_NS);
                    }
                }
            }
        }
    }

    fn other_work_share(&self, processors: usize) -> u64 {
        // Every item is worked on once per stage.
        (self.workload.pairs_total * self.stages as u64 / processors as u64)
            * self.workload.other_work_ns
    }

    fn check_conservation(&self, counters: &ScenarioCounters, drained: u64) {
        for (stage, tally) in counters.tallies.iter().enumerate() {
            assert_eq!(
                tally.load(Ordering::Relaxed),
                self.workload.pairs_total,
                "stage {stage} must handle every item exactly once"
            );
        }
        assert_eq!(drained, 0, "all inter-stage queues must drain");
    }
}

/// Open-loop bursty arrivals: the first `max(n/2, 1)` processes produce
/// on a seeded Poisson-like schedule in platform time (gaps uniform in
/// `[0, 2*mean_gap_ns]`, with every ~4th gap collapsed to 0 — a burst),
/// pacing with [`Platform::now_ns`] and stamping each item's scheduled
/// arrival time into its low 40 bits. The remaining processes consume,
/// charging `other_work_ns` of service per item, and report
/// enqueue-to-dequeue latency both host-side (the sorted samples in
/// [`ScenarioOutcome::latencies_ns`]) and through
/// [`Platform::record_latency`], so simulated runs carry the identical
/// samples in `SimReport::latencies`.
///
/// Unlike the closed-loop shapes, arrivals do not wait for completions:
/// when the queue (or its consumers) can't keep up, latency grows —
/// which is exactly the signal this scenario exists to measure. Net
/// time equals elapsed time (`other_work_share` is 0); the figures of
/// merit are the p50/p95/p99 latency percentiles.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopScenario {
    /// Workload parameters (`pairs_total` = items, `other_work_ns` =
    /// per-item service time at the consumer).
    pub workload: WorkloadConfig,
    /// Mean inter-arrival gap per producer, in platform nanoseconds.
    pub mean_gap_ns: u64,
    /// Seed for the arrival schedule.
    pub seed: u64,
}

/// splitmix64: the arrival-schedule PRNG (tiny, seedable, and identical
/// on every platform).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<P: Platform> Scenario<P> for OpenLoopScenario {
    fn label(&self) -> &'static str {
        "open-loop"
    }

    fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    fn num_cells(&self, _n: usize) -> usize {
        1 // the consumed counter
    }

    fn validate(&self, n: usize) {
        assert!(n >= 2, "open-loop needs a producer and a consumer");
    }

    fn run(&self, cx: &ScenarioCtx<'_, P>) {
        let n = cx.num_processes;
        let total = self.workload.pairs_total;
        let producers = (n / 2).max(1);
        let consumed = &cx.cells[0];
        if cx.pid < producers {
            let my_items = share(total, producers, cx.pid);
            let mut rng = self.seed ^ (cx.pid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            // The schedule is anchored at this producer's run start, so
            // it is expressible on both the virtual clock (0 at start)
            // and the native epoch clock.
            let mut t = cx.platform.now_ns();
            for _ in 0..my_items {
                let r = splitmix64(&mut rng);
                // Poisson-like with bursts: every ~4th gap is 0.
                let gap = if r.is_multiple_of(4) {
                    0
                } else {
                    (r >> 2) % (2 * self.mean_gap_ns + 1)
                };
                t += gap;
                let now = cx.platform.now_ns();
                if t > now {
                    cx.platform.delay(t - now);
                }
                let value = ((cx.pid as u64) << 40) | (t & MASK40);
                // Open-loop until the queue fills; then backpressure
                // (the latency samples record the resulting delay).
                while cx.queues[0].enqueue(value).is_err() {
                    cx.platform.cpu_relax();
                }
            }
        } else {
            loop {
                match cx.queues[0].dequeue() {
                    Some(value) => {
                        let arrival = value & MASK40;
                        // Free, token-keeping stamps: the report's sample
                        // and the host-side sample read the same clock.
                        cx.platform.record_latency(arrival);
                        let now = cx.platform.now_ns();
                        let sample = now.wrapping_sub(arrival) & MASK40;
                        cx.counters
                            .latencies_ns
                            .lock()
                            .expect("latency samples")
                            .push(sample);
                        cx.platform.delay(self.workload.other_work_ns); // service
                        consumed.fetch_add(1);
                        cx.counters.per_process[cx.pid].fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if consumed.load() == total {
                            break;
                        }
                        cx.platform.delay(IDLE_BACKOFF_NS);
                    }
                }
            }
        }
    }

    fn other_work_share(&self, _processors: usize) -> u64 {
        // Open-loop: elapsed time is paced by the arrival schedule, so
        // net time is not meaningful — the latency distribution is.
        0
    }

    fn check_conservation(&self, counters: &ScenarioCounters, drained: u64) {
        assert_eq!(counters.completed(), self.workload.pairs_total);
        assert_eq!(
            counters.latencies_ns.lock().expect("latency samples").len() as u64,
            self.workload.pairs_total,
            "every consumed item must leave a latency sample"
        );
        assert_eq!(drained, 0, "consumers must empty the queue");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadConfig {
        WorkloadConfig {
            pairs_total: 300,
            other_work_ns: 500,
            capacity: 256,
            mem_budget: None,
        }
    }

    fn cfg(processors: usize) -> SimConfig {
        SimConfig {
            processors,
            ..SimConfig::default()
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&samples, 50.0), 50);
        assert_eq!(percentile_ns(&samples, 95.0), 95);
        assert_eq!(percentile_ns(&samples, 99.0), 99);
        assert_eq!(percentile_ns(&samples, 100.0), 100);
        assert_eq!(percentile_ns(&[7], 50.0), 7);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }

    #[test]
    fn stealing_completes_with_load_bearing_steals() {
        for alg in [Algorithm::NewNonBlocking, Algorithm::NewTwoLock] {
            let out = run_scenario_simulated(
                alg,
                cfg(4),
                StealingScenario { workload: tiny() },
                FaultPlan::new(),
            );
            assert_eq!(out.point.pairs_completed, 300, "{alg}");
            assert_eq!(out.point.drained, Some(0), "{alg}");
            // Half the workers own no tasks: their whole throughput is
            // stolen work.
            assert!(out.tallies[StealingScenario::STEALS] > 0, "{alg}");
            assert!(out.point.point.elapsed_ns > 0, "{alg}");
        }
    }

    #[test]
    fn stealing_is_deterministic() {
        let run = || {
            run_scenario_simulated(
                Algorithm::NewNonBlocking,
                cfg(3),
                StealingScenario { workload: tiny() },
                FaultPlan::new(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.point.point.elapsed_ns, b.point.point.elapsed_ns);
        assert_eq!(a.tallies, b.tallies);
        assert_eq!(a.sim_report, b.sim_report);
    }

    #[test]
    fn stealing_survives_a_tiny_capacity() {
        // Production is interleaved with consumption, so a queue that
        // cannot hold a worker's whole seed share must not deadlock.
        let out = run_scenario_simulated(
            Algorithm::NewNonBlocking,
            cfg(2),
            StealingScenario {
                workload: WorkloadConfig {
                    capacity: 8,
                    ..tiny()
                },
            },
            FaultPlan::new(),
        );
        assert_eq!(out.point.pairs_completed, 300);
    }

    #[test]
    fn pipeline_conserves_items_at_every_stage() {
        let out = run_scenario_simulated(
            Algorithm::NewNonBlocking,
            cfg(3),
            PipelineScenario {
                workload: tiny(),
                stages: 3,
            },
            FaultPlan::new(),
        );
        assert_eq!(out.tallies, vec![300, 300, 300]);
        assert_eq!(out.point.drained, Some(0));
        assert!(out.point.point.elapsed_ns > 0);
    }

    #[test]
    fn pipeline_staffs_stages_round_robin() {
        // 5 processes over 3 stages: stage 0 gets pids {0, 3}, the item
        // budget splits across both generators.
        let out = run_scenario_simulated(
            Algorithm::NewTwoLock,
            cfg(5),
            PipelineScenario {
                workload: tiny(),
                stages: 3,
            },
            FaultPlan::new(),
        );
        assert_eq!(out.tallies, vec![300, 300, 300]);
        assert_eq!(out.point.pairs_completed, 900, "300 items x 3 stages");
    }

    #[test]
    fn open_loop_reports_latency_in_report_and_host_samples() {
        let out = run_scenario_simulated(
            Algorithm::NewNonBlocking,
            cfg(2),
            OpenLoopScenario {
                workload: tiny(),
                mean_gap_ns: 2_000,
                seed: 42,
            },
            FaultPlan::new(),
        );
        assert_eq!(out.latencies_ns.len(), 300);
        let report = out.sim_report.as_ref().expect("simulated run");
        assert_eq!(report.latencies.len(), 300, "stamps land in the report");
        // Token-keeping stamps: the report's virtual-time samples are
        // exactly the host-side samples.
        let mut from_report: Vec<u64> = report.latencies.iter().map(|s| s.latency_ns()).collect();
        from_report.sort_unstable();
        assert_eq!(from_report, out.latencies_ns);
        let p50 = out.latency_percentile_ns(50.0).unwrap();
        let p95 = out.latency_percentile_ns(95.0).unwrap();
        let p99 = out.latency_percentile_ns(99.0).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        // Net time is elapsed time for open-loop runs.
        assert_eq!(out.point.point.net_ns, out.point.point.elapsed_ns);
    }

    #[test]
    fn open_loop_is_deterministic_and_seed_sensitive() {
        let run = |seed| {
            run_scenario_simulated(
                Algorithm::NewNonBlocking,
                cfg(3),
                OpenLoopScenario {
                    workload: tiny(),
                    mean_gap_ns: 1_000,
                    seed,
                },
                FaultPlan::new(),
            )
        };
        let (a, b, c) = (run(7), run(7), run(8));
        assert_eq!(a.latencies_ns, b.latencies_ns);
        assert_eq!(a.sim_report, b.sim_report);
        assert_ne!(
            a.point.point.elapsed_ns, c.point.point.elapsed_ns,
            "a different seed must produce a different arrival schedule"
        );
    }

    #[test]
    fn new_scenarios_run_natively() {
        let out = run_scenario_native(
            Algorithm::NewNonBlocking,
            2,
            StealingScenario { workload: tiny() },
        );
        assert_eq!(out.point.pairs_completed, 300);
        let out = run_scenario_native(
            Algorithm::NewNonBlocking,
            3,
            PipelineScenario {
                workload: tiny(),
                stages: 3,
            },
        );
        assert_eq!(out.tallies, vec![300, 300, 300]);
        let out = run_scenario_native(
            Algorithm::NewNonBlocking,
            2,
            OpenLoopScenario {
                workload: tiny(),
                mean_gap_ns: 1_000,
                seed: 1,
            },
        );
        assert_eq!(out.latencies_ns.len(), 300);
        assert!(out.sim_report.is_none());
    }

    #[test]
    fn stealing_under_a_kill_still_finishes_survivors() {
        // Kill one worker mid-enqueue on the non-blocking queue: the
        // other workers steal whatever it seeded and drain the pool,
        // minus the victim's unproduced tasks.
        let out = run_scenario_simulated(
            Algorithm::NewNonBlocking,
            SimConfig {
                processors: 4,
                watchdog_ns: 200_000_000,
                ..cfg(4)
            },
            StealingScenario { workload: tiny() },
            FaultPlan::new().kill_at_label(1, "msq:enq:window", 0),
        );
        assert_eq!(out.point.killed, vec![1]);
        assert!(out.point.survivors_completed());
        assert!(
            out.point.pairs_completed < 300,
            "the victim's pool is short"
        );
    }
}
