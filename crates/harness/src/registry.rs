//! The algorithm registry: every queue in the paper's evaluation, plus
//! extra contenders that are *not* part of the reproduced figures.

use std::sync::Arc;

use msq_arena::MemBudget;
use msq_baselines::{
    McQueue, PljQueue, RepairableMcQueue, RepairableSingleLockQueue, SingleLockQueue, ValoisQueue,
};
use msq_core::{
    RepairableTwoLockQueue, WordMsQueue, WordSegQueue, WordShardedQueue, WordTwoLockQueue,
    DEFAULT_SHARDS,
};
use msq_platform::{ConcurrentWordQueue, Platform};

/// The six algorithms of Figures 3–5, in the paper's legend order, plus
/// extension contenders (kept out of [`Algorithm::ALL`] so the reproduced
/// figures stay faithful to the paper's legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// "Single lock": one TTAS lock around both queue ends.
    SingleLock,
    /// "MC lock-free": Mellor-Crummey's swap-based (blocking) queue.
    MellorCrummey,
    /// "Valois non-blocking": reference-counted, lagging-tail queue.
    Valois,
    /// "new two-lock": the paper's Figure 2 algorithm.
    NewTwoLock,
    /// "PLJ non-blocking": Prakash–Lee–Johnson snapshot queue.
    PljNonBlocking,
    /// "new non-blocking": the paper's Figure 1 algorithm.
    NewNonBlocking,
    /// "seg-batched": extension — the MS list over array segments, with
    /// `fetch_add` slot claims amortizing the CAS traffic. Not one of the
    /// paper's six; excluded from the Figures 3–5 legends.
    SegBatched,
    /// "sharded": extension — a relaxed-FIFO front-end striping load
    /// across independent seg-batched sub-queues behind thread-affine
    /// dispatch. Per-shard FIFO only; excluded from the Figures 3–5
    /// legends.
    Sharded,
}

impl Algorithm {
    /// The paper's six algorithms in the paper's legend order. Figure
    /// sweeps iterate exactly this set.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::SingleLock,
        Algorithm::MellorCrummey,
        Algorithm::Valois,
        Algorithm::NewTwoLock,
        Algorithm::PljNonBlocking,
        Algorithm::NewNonBlocking,
    ];

    /// The extension contenders: everything benchable that is *not* one
    /// of the paper's six. New extensions are added here (and only here);
    /// [`Algorithm::WITH_EXTENSIONS`] is derived.
    pub const EXTENSIONS: [Algorithm; 2] = [Algorithm::SegBatched, Algorithm::Sharded];

    /// The paper's six plus the extension contenders, for benches and
    /// ad-hoc comparisons. Derived as `ALL ++ EXTENSIONS` so the paper
    /// prefix can never drift out of sync with the legend order.
    pub const WITH_EXTENSIONS: [Algorithm; Algorithm::ALL.len() + Algorithm::EXTENSIONS.len()] = {
        let mut out = [Algorithm::SingleLock; Algorithm::ALL.len() + Algorithm::EXTENSIONS.len()];
        let mut i = 0;
        while i < Algorithm::ALL.len() {
            out[i] = Algorithm::ALL[i];
            i += 1;
        }
        let mut j = 0;
        while j < Algorithm::EXTENSIONS.len() {
            out[Algorithm::ALL.len() + j] = Algorithm::EXTENSIONS[j];
            j += 1;
        }
        out
    };

    /// The label used in figures and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::SingleLock => "single-lock",
            Algorithm::MellorCrummey => "mellor-crummey",
            Algorithm::Valois => "valois",
            Algorithm::NewTwoLock => "new-two-lock",
            Algorithm::PljNonBlocking => "plj-nonblocking",
            Algorithm::NewNonBlocking => "new-nonblocking",
            Algorithm::SegBatched => "seg-batched",
            Algorithm::Sharded => "sharded",
        }
    }

    /// Parses a label back into an algorithm (extensions included).
    pub fn from_label(label: &str) -> Option<Algorithm> {
        Algorithm::WITH_EXTENSIONS
            .into_iter()
            .find(|a| a.label() == label)
    }

    /// Whether the algorithm is non-blocking in the paper's sense.
    pub fn is_nonblocking(self) -> bool {
        matches!(
            self,
            Algorithm::Valois
                | Algorithm::PljNonBlocking
                | Algorithm::NewNonBlocking
                | Algorithm::SegBatched
                | Algorithm::Sharded
        )
    }

    /// The fault-point label inside the algorithm's *enqueue* critical
    /// window (DESIGN.md §11 taxonomy): the spot where a stalled, preempted
    /// or killed process does maximal damage. For the non-blocking queues
    /// this is the linked-but-tail-lagging window that helping rules cover;
    /// for the lock-based queues it is "holding the enqueue lock"; for
    /// Mellor-Crummey it is the torn-tail window between its `swap` and
    /// link store. The fault bench and tests target these labels.
    ///
    /// Note the segment-based extensions only reach their window once per
    /// segment (the fast path is a `fetch_add` with no window at all), so
    /// faults aimed there fire correspondingly rarely.
    pub fn enqueue_fault_label(self) -> &'static str {
        match self {
            Algorithm::SingleLock => "single-lock:enq:locked",
            Algorithm::MellorCrummey => "mc:enq:window",
            Algorithm::Valois => "valois:enq:window",
            Algorithm::NewTwoLock => "two-lock:enq:locked",
            Algorithm::PljNonBlocking => "plj:enq:window",
            Algorithm::NewNonBlocking => "msq:enq:window",
            Algorithm::SegBatched | Algorithm::Sharded => "seg:enq:window",
        }
    }

    /// The *dequeue*-side counterpart of
    /// [`Algorithm::enqueue_fault_label`]: the window a halted dequeuer
    /// leaves torn. For the lock-based queues this is "holding the
    /// dequeue (head) lock" — a death there blocks every survivor. For
    /// the non-blocking queues (and, notably, Mellor-Crummey, whose
    /// dequeue side is survivable even though its enqueue window is
    /// blocking) it is the Head-swung-but-dummy-not-yet-recycled window:
    /// a death there strands at most one node and blocks nobody.
    ///
    /// As with the enqueue side, the segment-based extensions only reach
    /// their window (`seg:reclaim`, the D10–D14 unlink ladder) once per
    /// fully-consumed segment, so faults aimed there fire rarely.
    pub fn dequeue_fault_label(self) -> &'static str {
        match self {
            Algorithm::SingleLock => "single-lock:deq:locked",
            Algorithm::MellorCrummey => "mc:deq:window",
            Algorithm::Valois => "valois:deq:window",
            Algorithm::NewTwoLock => "two-lock:deq:locked",
            Algorithm::PljNonBlocking => "plj:deq:window",
            Algorithm::NewNonBlocking => "msq:deq:window",
            Algorithm::SegBatched | Algorithm::Sharded => "seg:reclaim",
        }
    }

    /// Whether a process killed inside the algorithm's *dequeue* window
    /// ([`Algorithm::dequeue_fault_label`]) leaves the queue operable for
    /// survivors. True for every non-blocking queue and for
    /// Mellor-Crummey (its dequeue tears nothing); false only for the
    /// queues whose dequeue window is a held lock.
    pub fn dequeue_death_survivable(self) -> bool {
        !matches!(self, Algorithm::SingleLock | Algorithm::NewTwoLock)
    }

    /// Whether the algorithm has a crash-survivable *repairable* variant
    /// (DESIGN.md §13): the blocking queues whose critical windows can
    /// wedge survivors get one; the non-blocking queues do not need one —
    /// their helping rules already make every death survivable.
    pub fn has_repairable_variant(self) -> bool {
        matches!(
            self,
            Algorithm::SingleLock | Algorithm::NewTwoLock | Algorithm::MellorCrummey
        )
    }

    /// Constructs the queue over any platform with the given capacity.
    pub fn build<P: Platform>(self, platform: &P, capacity: u32) -> Arc<dyn ConcurrentWordQueue> {
        self.build_with_budget(platform, capacity, None)
    }

    /// As [`Algorithm::build`], but constructing the crash-survivable
    /// repairable variant for the algorithms that have one
    /// ([`Algorithm::has_repairable_variant`]): revocable locks plus
    /// intent-cell repair for the lock-based queues, announce-cell repair
    /// for Mellor-Crummey. Algorithms without a repairable variant build
    /// their ordinary (already death-survivable) queue, so a
    /// repair-enabled sweep can still cover the full legend.
    pub fn build_repairable<P: Platform>(
        self,
        platform: &P,
        capacity: u32,
    ) -> Arc<dyn ConcurrentWordQueue> {
        self.build_repairable_with_budget(platform, capacity, None)
    }

    /// As [`Algorithm::build_repairable`], optionally metering memory
    /// residency against a shared [`MemBudget`].
    pub fn build_repairable_with_budget<P: Platform>(
        self,
        platform: &P,
        capacity: u32,
        budget: Option<Arc<MemBudget<P>>>,
    ) -> Arc<dyn ConcurrentWordQueue> {
        match (self, budget) {
            (Algorithm::SingleLock, Some(budget)) => Arc::new(
                RepairableSingleLockQueue::with_capacity_and_budget(platform, capacity, budget),
            ),
            (Algorithm::SingleLock, None) => {
                Arc::new(RepairableSingleLockQueue::with_capacity(platform, capacity))
            }
            (Algorithm::NewTwoLock, Some(budget)) => Arc::new(
                RepairableTwoLockQueue::with_capacity_and_budget(platform, capacity, budget),
            ),
            (Algorithm::NewTwoLock, None) => {
                Arc::new(RepairableTwoLockQueue::with_capacity(platform, capacity))
            }
            (Algorithm::MellorCrummey, Some(budget)) => Arc::new(
                RepairableMcQueue::with_capacity_and_budget(platform, capacity, budget),
            ),
            (Algorithm::MellorCrummey, None) => {
                Arc::new(RepairableMcQueue::with_capacity(platform, capacity))
            }
            (other, budget) => other.build_with_budget(platform, capacity, budget),
        }
    }

    /// As [`Algorithm::build`], optionally metering memory residency
    /// against a shared [`MemBudget`]. The segment-based extensions
    /// ([`Algorithm::SegBatched`], [`Algorithm::Sharded`]) reserve and
    /// release units segment by segment; every node-arena algorithm
    /// (the paper's six) force-reserves its whole preallocated pool for
    /// the queue's lifetime, so an over-budget pool surfaces in
    /// [`MemBudget::overruns`] rather than failing construction.
    pub fn build_with_budget<P: Platform>(
        self,
        platform: &P,
        capacity: u32,
        budget: Option<Arc<MemBudget<P>>>,
    ) -> Arc<dyn ConcurrentWordQueue> {
        if let Some(budget) = budget {
            return match self {
                Algorithm::SingleLock => Arc::new(SingleLockQueue::with_capacity_and_budget(
                    platform, capacity, budget,
                )),
                Algorithm::MellorCrummey => Arc::new(McQueue::with_capacity_and_budget(
                    platform, capacity, budget,
                )),
                Algorithm::Valois => Arc::new(ValoisQueue::with_capacity_and_budget(
                    platform, capacity, budget,
                )),
                Algorithm::PljNonBlocking => Arc::new(PljQueue::with_capacity_and_budget(
                    platform, capacity, budget,
                )),
                Algorithm::NewNonBlocking => Arc::new(WordMsQueue::with_capacity_and_budget(
                    platform, capacity, budget,
                )),
                Algorithm::SegBatched => Arc::new(WordSegQueue::with_capacity_and_budget(
                    platform, capacity, budget,
                )),
                Algorithm::Sharded => Arc::new(WordShardedQueue::with_shards_and_budget(
                    platform,
                    capacity,
                    DEFAULT_SHARDS,
                    budget,
                )),
                Algorithm::NewTwoLock => Arc::new(WordTwoLockQueue::with_capacity_and_budget(
                    platform, capacity, budget,
                )),
            };
        }
        match self {
            Algorithm::SingleLock => Arc::new(SingleLockQueue::with_capacity(platform, capacity)),
            Algorithm::MellorCrummey => Arc::new(McQueue::with_capacity(platform, capacity)),
            Algorithm::Valois => Arc::new(ValoisQueue::with_capacity(platform, capacity)),
            Algorithm::NewTwoLock => Arc::new(WordTwoLockQueue::with_capacity(platform, capacity)),
            Algorithm::PljNonBlocking => Arc::new(PljQueue::with_capacity(platform, capacity)),
            Algorithm::NewNonBlocking => Arc::new(WordMsQueue::with_capacity(platform, capacity)),
            Algorithm::SegBatched => Arc::new(WordSegQueue::with_capacity(platform, capacity)),
            Algorithm::Sharded => Arc::new(WordShardedQueue::with_capacity(platform, capacity)),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;

    #[test]
    fn all_algorithms_build_and_work() {
        let platform = NativePlatform::new();
        for alg in Algorithm::WITH_EXTENSIONS {
            let q = alg.build(&platform, 16);
            q.enqueue(42).unwrap();
            assert_eq!(q.dequeue(), Some(42), "{alg} round trip");
            assert_eq!(q.dequeue(), None, "{alg} empty");
        }
    }

    #[test]
    fn repairable_builds_cover_the_legend() {
        let platform = NativePlatform::new();
        for alg in Algorithm::WITH_EXTENSIONS {
            let q = alg.build_repairable(&platform, 16);
            q.enqueue(7).unwrap();
            assert_eq!(q.dequeue(), Some(7), "{alg} repairable round trip");
            assert_eq!(
                q.name().ends_with("-repair"),
                alg.has_repairable_variant(),
                "{alg} built {}",
                q.name()
            );
        }
    }

    #[test]
    fn labels_round_trip() {
        for alg in Algorithm::WITH_EXTENSIONS {
            assert_eq!(Algorithm::from_label(alg.label()), Some(alg));
        }
        assert_eq!(Algorithm::from_label("nope"), None);
    }

    #[test]
    fn nonblocking_flags_match_implementations() {
        let platform = NativePlatform::new();
        for alg in Algorithm::WITH_EXTENSIONS {
            let q = alg.build(&platform, 4);
            assert_eq!(q.is_nonblocking(), alg.is_nonblocking(), "{alg}");
        }
    }

    #[test]
    fn legend_order_matches_paper() {
        assert_eq!(Algorithm::ALL[0], Algorithm::SingleLock);
        assert_eq!(Algorithm::ALL[5], Algorithm::NewNonBlocking);
    }

    #[test]
    fn extensions_stay_out_of_the_paper_legend() {
        assert_eq!(Algorithm::ALL.len(), 6, "the paper has exactly six");
        for ext in Algorithm::EXTENSIONS {
            assert!(!Algorithm::ALL.contains(&ext), "{ext} leaked into ALL");
        }
        assert_eq!(Algorithm::SegBatched.label(), "seg-batched");
        assert_eq!(Algorithm::Sharded.label(), "sharded");
    }

    #[test]
    fn with_extensions_is_all_then_extensions() {
        assert_eq!(
            Algorithm::WITH_EXTENSIONS.len(),
            Algorithm::ALL.len() + Algorithm::EXTENSIONS.len()
        );
        assert_eq!(
            Algorithm::WITH_EXTENSIONS[..Algorithm::ALL.len()],
            Algorithm::ALL
        );
        assert_eq!(
            Algorithm::WITH_EXTENSIONS[Algorithm::ALL.len()..],
            Algorithm::EXTENSIONS
        );
        // No duplicates anywhere.
        for (i, a) in Algorithm::WITH_EXTENSIONS.iter().enumerate() {
            for b in &Algorithm::WITH_EXTENSIONS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
