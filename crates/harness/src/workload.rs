//! The paper's workload, drivable on the simulator or native threads.

use msq_sim::{BlockedKind, FaultPlan, RecoveryPolicy, RecoveryReport, RepairReport, SimConfig};

use crate::registry::Algorithm;
use crate::scenario::{
    run_scenario_native, run_scenario_simulated, BatchedScenario, PairedScenario, PolicyScenario,
};

/// Marks a replayed pair's value as recovery work: set on bit 39, below
/// the pid field (bits 40+) and above any realistic pair index, so a
/// survivor re-running victim pair `i` enqueues a value distinct from
/// anything the victim itself may have left in flight.
pub(crate) const RECOVERY_BIT: u64 = 1 << 39;

/// Workload parameters (Section 4 defaults are the `Default` impl, with
/// the op count scaled down — the simulator pays a scheduling transaction
/// per shared access, so the full 10^6 pairs is reserved for long runs;
/// the *relative* curves are unchanged by the scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Total enqueue/dequeue pairs across all processes (paper: 10^6).
    pub pairs_total: u64,
    /// "Other work" spin after each enqueue and each dequeue (paper: ~6 µs).
    pub other_work_ns: u64,
    /// Queue capacity. Must exceed the maximum number of in-flight values
    /// (= number of processes); Valois additionally needs headroom for
    /// pinned chains.
    pub capacity: u32,
    /// Global segment-residency budget, in segments. `Some(limit)` meters
    /// the segment-based extensions against a fresh [`MemBudget`] for the
    /// run and reports peak residency/denials in the [`MeasuredPoint`];
    /// `None` (the default) runs unbudgeted. The paper's six preallocate
    /// node arenas and ignore it.
    pub mem_budget: Option<u64>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            pairs_total: 20_000,
            other_work_ns: 6_000,
            capacity: 4_096,
            mem_budget: None,
        }
    }
}

/// One measured experiment: an algorithm at a machine configuration.
#[derive(Clone, Debug)]
pub struct MeasuredPoint {
    /// Which queue.
    pub algorithm: Algorithm,
    /// Simulated (or intended) processor count.
    pub processors: usize,
    /// Total processes (processors × multiprogramming level).
    pub processes: usize,
    /// Pairs actually executed.
    pub pairs: u64,
    /// Raw elapsed time (virtual ns for simulated runs, wall ns native).
    pub elapsed_ns: u64,
    /// Net time after subtracting one processor's other-work share — the
    /// quantity the paper's figures plot.
    pub net_ns: u64,
    /// Cache miss rate (simulated runs only; 0 natively).
    pub miss_rate: f64,
    /// Failed CAS count (simulated runs only).
    pub cas_failures: u64,
    /// Preemptions (simulated runs only).
    pub preemptions: u64,
    /// High-water mark of concurrently resident segments, when the run
    /// was budgeted ([`WorkloadConfig::mem_budget`]); `None` otherwise.
    pub peak_resident_segments: Option<u64>,
    /// Allocations denied by budget exhaustion (each one forced the
    /// backpressure/reclaim path), when the run was budgeted.
    pub budget_denials: Option<u64>,
}

impl MeasuredPoint {
    /// Net seconds — directly comparable to the paper's y-axis, which for
    /// 10^6 pairs reads as "seconds per million pairs" (equivalently µs
    /// per pair). For scaled runs this normalizes to the same unit.
    pub fn net_secs_per_million_pairs(&self) -> f64 {
        (self.net_ns as f64 / 1e9) * (1_000_000.0 / self.pairs as f64)
    }
}

/// Splits `total` pairs across `n` processes as the paper does
/// (⌊10^6/p⌋ or ⌈10^6/p⌉ each).
pub(crate) fn share(total: u64, n: usize, pid: usize) -> u64 {
    let base = total / n as u64;
    let extra = total % n as u64;
    base + u64::from((pid as u64) < extra)
}

/// Runs the workload for `algorithm` on a simulated machine.
///
/// `sim_config.processors` and `.processes_per_processor` select the
/// figure: `(p, 1)` for Figure 3, `(p, 2)` for Figure 4, `(p, 3)` for
/// Figure 5.
///
/// A thin wrapper over [`run_scenario_simulated`] with the
/// [`PairedScenario`] and an empty fault plan; the `backend_equivalence`
/// test pins its `SimReport` byte-identical to the pre-engine loop.
pub fn run_simulated(
    algorithm: Algorithm,
    sim_config: SimConfig,
    workload: &WorkloadConfig,
) -> MeasuredPoint {
    let out = run_scenario_simulated(
        algorithm,
        sim_config,
        PairedScenario {
            workload: *workload,
        },
        FaultPlan::new(),
    );
    debug_assert_eq!(out.point.drained, Some(0), "workload must drain the queue");
    out.point.point
}

/// One faulted experiment: the workload of [`run_simulated`] plus an
/// injected [`FaultPlan`], with the per-run progress verdicts the fault
/// suite and `faultbench` assert on.
#[derive(Clone, Debug)]
pub struct FaultedPoint {
    /// The unfaulted-style measurement (elapsed/net time, miss rate, …).
    /// For runs with killed or blocked processes, `pairs` still records
    /// the *requested* total; see `pairs_completed` for what actually ran.
    pub point: MeasuredPoint,
    /// Enqueue/dequeue pairs completed by processes that finished.
    pub pairs_completed: u64,
    /// Processes killed by [`msq_sim::FaultAction::Kill`].
    pub killed: Vec<usize>,
    /// Processes the virtual-time watchdog judged permanently blocked.
    pub blocked: Vec<usize>,
    /// Why each `blocked` process was stuck (parallel to `blocked`):
    /// [`BlockedKind::DeadHolder`] when a killed process existed — the
    /// repairable wedge the §13 revocation protocol targets — versus
    /// [`BlockedKind::LiveContention`] (a watchdog misfire or genuine
    /// livelock among live processes).
    pub blocked_kinds: Vec<BlockedKind>,
    /// Stalls injected by the plan.
    pub stalls_injected: u64,
    /// Preemptions injected by the plan.
    pub preempts_injected: u64,
    /// Latest virtual completion time over surviving processes — the
    /// fault-latency metric (how long the last survivor needed to get out
    /// from under the fault).
    pub max_completion_ns: u64,
    /// Values drained from the queue after the run, when draining was
    /// safe (`None` when a kill on a blocking queue made the post-run
    /// queue state unapproachable).
    pub drained: Option<u64>,
    /// Pairs of a killed process's residual share replayed by a
    /// survivor under a [`RecoveryPolicy`] (0 without one).
    pub recovered_pairs: u64,
    /// Slowest virtual time from a kill to the survivor absorbing the
    /// victim's share; `None` when no recovery completed.
    pub time_to_recover_ns: Option<u64>,
    /// Every completed recovery handoff, in completion order.
    pub recoveries: Vec<RecoveryReport>,
    /// Every lock revocation / invariant repair (§13), in completion
    /// order: who died, who repaired, and the repair-outcome label.
    /// Empty unless the run used [`run_simulated_repaired`] (or a queue
    /// built with [`Algorithm::build_repairable`]).
    pub repairs: Vec<RepairReport>,
    /// Slowest virtual time from a kill to the matching repair landing;
    /// `None` when nothing was repaired.
    pub time_to_repair_ns: Option<u64>,
}

impl FaultedPoint {
    /// The progress verdict: every process not deliberately killed ran to
    /// completion — the paper's non-blocking property under this fault.
    pub fn survivors_completed(&self) -> bool {
        self.blocked.is_empty()
    }
}

/// Runs the workload for `algorithm` on a simulated machine with `plan`'s
/// faults injected, reporting per-run progress alongside the timing.
///
/// Unlike [`run_simulated`] this does not assert the queue drains — a
/// killed process legitimately strands values — and it only *attempts*
/// the post-run drain when it cannot hang (no kills, or a non-blocking
/// queue). Set [`SimConfig::watchdog_ns`] when the plan can block a
/// lock-based queue, or the run itself will never terminate.
pub fn run_simulated_faulted(
    algorithm: Algorithm,
    sim_config: SimConfig,
    workload: &WorkloadConfig,
    plan: FaultPlan,
) -> FaultedPoint {
    run_scenario_simulated(
        algorithm,
        sim_config,
        PairedScenario {
            workload: *workload,
        },
        plan,
    )
    .point
}

/// Runs the faulted workload of [`run_simulated_faulted`] with a
/// restart-and-catch-up [`RecoveryPolicy`] layered on top: every process
/// writes its completed-pair count to a shared progress cell, and the
/// designated survivor polls the simulator's death board
/// ([`msq_sim::SimPlatform::death_board`]) — once per own pair and then
/// continuously after its own share — absorbing each killed victim's
/// residual share (replayed with [`RECOVERY_BIT`]-marked values) before
/// stamping the handoff with `mark_recovered`. The whole recovery
/// schedule is a pure function of the seed, so the reported
/// time-to-recover replays byte-identically on both backends.
///
/// The expected asymmetry is the paper's dichotomy: on a non-blocking
/// queue the survivor completes the victim's share (recovery cost ≈ the
/// residual share) and `time_to_recover_ns` is reported; on a lock-based
/// queue whose lock died held, the survivor wedges and the watchdog
/// flags it instead — set [`SimConfig::watchdog_ns`], or the run never
/// terminates. Killing the designated survivor itself leaves every other
/// victim unabsorbed; point the plan elsewhere.
pub fn run_simulated_recovered(
    algorithm: Algorithm,
    sim_config: SimConfig,
    workload: &WorkloadConfig,
    plan: FaultPlan,
    policy: RecoveryPolicy,
) -> FaultedPoint {
    run_scenario_simulated(
        algorithm,
        sim_config,
        PolicyScenario {
            workload: *workload,
            policy,
            repairable: false,
        },
        plan,
    )
    .point
}

/// Runs the recovered workload of [`run_simulated_recovered`] on the
/// algorithm's crash-survivable *repairable* variant
/// ([`Algorithm::build_repairable`]): revocable locks plus intent-cell
/// repair for the lock-based queues, announce-cell repair for
/// Mellor-Crummey, the unchanged (already survivable) queue otherwise.
///
/// This flips the recovered run's expected asymmetry: a lock-based queue
/// whose holder dies mid-critical-section no longer wedges until the
/// watchdog fires — the next waiter revokes the dead holder's lock,
/// repairs the torn invariant, and the designated survivor absorbs the
/// victim's residual share exactly as on a non-blocking queue. Each
/// repair lands in [`FaultedPoint::repairs`] with its outcome label and
/// a measurable [`FaultedPoint::time_to_repair_ns`]. The post-run drain
/// is always attempted: a repaired queue is approachable even after a
/// kill (the drain itself revokes any still-held dead lock).
pub fn run_simulated_repaired(
    algorithm: Algorithm,
    sim_config: SimConfig,
    workload: &WorkloadConfig,
    plan: FaultPlan,
    policy: RecoveryPolicy,
) -> FaultedPoint {
    run_scenario_simulated(
        algorithm,
        sim_config,
        PolicyScenario {
            workload: *workload,
            policy,
            repairable: true,
        },
        plan,
    )
    .point
}

/// Runs the workload for `algorithm` on real threads.
///
/// On a host with at least `processes` cores this reproduces the paper's
/// dedicated-machine setup directly; on smaller hosts (including the
/// single-core CI machine this reproduction was developed on) it measures
/// an OS-multiprogrammed analogue instead and is reported as such.
pub fn run_native(
    algorithm: Algorithm,
    processes: usize,
    workload: &WorkloadConfig,
) -> MeasuredPoint {
    run_scenario_native(
        algorithm,
        processes,
        PairedScenario {
            workload: *workload,
        },
    )
    .point
    .point
}

/// Runs the **batch-mode** workload for `algorithm` on a simulated
/// machine: each process moves its pairs in rounds of `batch` via
/// `enqueue_batch`/`dequeue_batch` (the trait defaults degrade to per-op
/// loops for the paper's six, so every algorithm is drivable).
///
/// Net-time accounting matches the round structure: one round of `batch`
/// pairs spins the ~6 µs "other work" twice, so a processor's other-work
/// share is `(pairs / processors / batch) * 2 * other_work_ns`.
pub fn run_simulated_batched(
    algorithm: Algorithm,
    sim_config: SimConfig,
    workload: &WorkloadConfig,
    batch: usize,
) -> MeasuredPoint {
    assert!(batch >= 1);
    let out = run_scenario_simulated(
        algorithm,
        sim_config,
        BatchedScenario {
            workload: *workload,
            batch,
        },
        FaultPlan::new(),
    );
    debug_assert_eq!(out.point.drained, Some(0), "workload must drain the queue");
    out.point.point
}

/// Runs the batch-mode workload for `algorithm` on real threads; the
/// native counterpart of [`run_simulated_batched`].
pub fn run_native_batched(
    algorithm: Algorithm,
    processes: usize,
    workload: &WorkloadConfig,
    batch: usize,
) -> MeasuredPoint {
    assert!(batch >= 1);
    run_scenario_native(
        algorithm,
        processes,
        BatchedScenario {
            workload: *workload,
            batch,
        },
    )
    .point
    .point
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadConfig {
        WorkloadConfig {
            pairs_total: 300,
            other_work_ns: 500,
            capacity: 256,
            mem_budget: None,
        }
    }

    #[test]
    fn share_splits_like_the_paper() {
        // 10 pairs over 3 processes: 4, 3, 3.
        assert_eq!(share(10, 3, 0), 4);
        assert_eq!(share(10, 3, 1), 3);
        assert_eq!(share(10, 3, 2), 3);
        assert_eq!((0..3).map(|p| share(10, 3, p)).sum::<u64>(), 10);
        assert_eq!(share(6, 1, 0), 6);
    }

    #[test]
    fn simulated_run_completes_for_every_algorithm() {
        for alg in Algorithm::ALL {
            let point = run_simulated(
                alg,
                SimConfig {
                    processors: 2,
                    ..SimConfig::default()
                },
                &tiny(),
            );
            assert!(point.elapsed_ns > 0, "{alg}");
            assert!(point.net_ns <= point.elapsed_ns, "{alg}");
            assert_eq!(point.pairs, 300);
            assert_eq!(point.processes, 2);
        }
    }

    #[test]
    fn simulated_multiprogrammed_run_completes() {
        let point = run_simulated(
            Algorithm::NewNonBlocking,
            SimConfig {
                processors: 2,
                processes_per_processor: 2,
                quantum_ns: 100_000,
                ..SimConfig::default()
            },
            &tiny(),
        );
        assert_eq!(point.processes, 4);
        assert!(point.elapsed_ns > 0);
    }

    #[test]
    fn simulated_runs_are_deterministic() {
        let run = || {
            run_simulated(
                Algorithm::NewNonBlocking,
                SimConfig {
                    processors: 3,
                    ..SimConfig::default()
                },
                &tiny(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.cas_failures, b.cas_failures);
    }

    #[test]
    fn native_run_completes() {
        let point = run_native(Algorithm::NewNonBlocking, 2, &tiny());
        assert!(point.elapsed_ns > 0);
        assert_eq!(point.processes, 2);
    }

    #[test]
    fn simulated_batched_run_completes_for_batchers_and_loopers() {
        // A real batcher, the sharded front-end, and a trait-default
        // per-op looper all drive the same workload.
        for alg in [
            Algorithm::SegBatched,
            Algorithm::Sharded,
            Algorithm::NewNonBlocking,
        ] {
            let point = run_simulated_batched(
                alg,
                SimConfig {
                    processors: 2,
                    ..SimConfig::default()
                },
                &tiny(),
                8,
            );
            assert!(point.elapsed_ns > 0, "{alg}");
            assert_eq!(point.pairs, 300, "{alg}");
        }
    }

    #[test]
    fn simulated_batched_runs_are_deterministic() {
        let run = || {
            run_simulated_batched(
                Algorithm::Sharded,
                SimConfig {
                    processors: 3,
                    ..SimConfig::default()
                },
                &tiny(),
                8,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.cas_failures, b.cas_failures);
    }

    #[test]
    fn native_batched_run_completes() {
        let point = run_native_batched(Algorithm::SegBatched, 2, &tiny(), 16);
        assert!(point.elapsed_ns > 0);
        assert_eq!(point.processes, 2);
    }

    #[test]
    fn batch_of_one_matches_per_op_structure() {
        // batch=1 must be a valid degenerate case, not a special one.
        let point = run_simulated_batched(
            Algorithm::SegBatched,
            SimConfig {
                processors: 2,
                ..SimConfig::default()
            },
            &tiny(),
            1,
        );
        assert!(point.elapsed_ns > 0);
    }

    #[test]
    fn budgeted_simulated_run_reports_peak_within_limit() {
        for alg in [Algorithm::SegBatched, Algorithm::Sharded] {
            let point = run_simulated_batched(
                alg,
                SimConfig {
                    processors: 2,
                    ..SimConfig::default()
                },
                &WorkloadConfig {
                    mem_budget: Some(48),
                    ..tiny()
                },
                8,
            );
            let peak = point.peak_resident_segments.expect("budgeted run");
            assert!(peak >= 1, "{alg}: the dummy segment is always resident");
            assert!(peak <= 48, "{alg}: peak {peak} exceeded the budget");
            assert!(point.budget_denials.is_some(), "{alg}");
        }
    }

    #[test]
    fn unbudgeted_runs_report_no_residency_metrics() {
        let point = run_simulated(
            Algorithm::SegBatched,
            SimConfig {
                processors: 2,
                ..SimConfig::default()
            },
            &tiny(),
        );
        assert_eq!(point.peak_resident_segments, None);
        assert_eq!(point.budget_denials, None);
    }

    #[test]
    fn faulted_run_kill_on_nonblocking_queue_still_completes() {
        let point = run_simulated_faulted(
            Algorithm::NewNonBlocking,
            SimConfig {
                processors: 2,
                watchdog_ns: 50_000_000,
                ..SimConfig::default()
            },
            &tiny(),
            FaultPlan::new().kill_at_label(1, "msq:enq:window", 0),
        );
        assert_eq!(point.killed, vec![1]);
        assert!(point.survivors_completed(), "blocked: {:?}", point.blocked);
        // Process 0 finished all its pairs; the victim died on pair 0.
        assert_eq!(point.pairs_completed, share(300, 2, 0));
        // The victim's linearized-but-unfinished enqueue strands one value.
        assert_eq!(point.drained, Some(1));
        assert!(point.max_completion_ns > 0);
        assert!(point.max_completion_ns < 50_000_000, "no watchdog overrun");
    }

    #[test]
    fn faulted_run_kill_on_lock_queue_is_detected_as_blocked() {
        let point = run_simulated_faulted(
            Algorithm::SingleLock,
            SimConfig {
                processors: 2,
                watchdog_ns: 50_000_000,
                ..SimConfig::default()
            },
            &tiny(),
            FaultPlan::new().kill_at_label(1, "single-lock:enq:locked", 0),
        );
        assert_eq!(point.killed, vec![1]);
        assert!(
            !point.survivors_completed(),
            "a dead lock-holder must block the survivor"
        );
        assert_eq!(point.blocked, vec![0]);
        assert_eq!(point.drained, None, "a seized lock makes draining unsafe");
    }

    #[test]
    fn faulted_runs_with_empty_plans_match_unfaulted_timing() {
        let cfg = SimConfig {
            processors: 2,
            ..SimConfig::default()
        };
        let faulted =
            run_simulated_faulted(Algorithm::NewNonBlocking, cfg, &tiny(), FaultPlan::new());
        let unfaulted = run_simulated(Algorithm::NewNonBlocking, cfg, &tiny());
        assert_eq!(faulted.point.elapsed_ns, unfaulted.elapsed_ns);
        assert_eq!(faulted.point.cas_failures, unfaulted.cas_failures);
        assert_eq!(faulted.pairs_completed, 300);
        assert_eq!(faulted.drained, Some(0));
    }

    #[test]
    fn every_algorithm_has_an_enqueue_fault_label() {
        for alg in Algorithm::WITH_EXTENSIONS {
            let label = alg.enqueue_fault_label();
            assert!(
                label.contains(":enq:") || label.ends_with(":window"),
                "{alg}: {label}"
            );
        }
    }

    #[test]
    fn every_algorithm_has_a_dequeue_fault_label() {
        for alg in Algorithm::WITH_EXTENSIONS {
            let label = alg.dequeue_fault_label();
            assert!(
                label.contains(":deq:") || label.ends_with(":window") || label == "seg:reclaim",
                "{alg}: {label}"
            );
            assert_ne!(label, alg.enqueue_fault_label(), "{alg}: sides must differ");
        }
    }

    #[test]
    fn recovered_run_absorbs_the_victims_residual_share() {
        let point = run_simulated_recovered(
            Algorithm::NewNonBlocking,
            SimConfig {
                processors: 3,
                watchdog_ns: 400_000_000,
                ..SimConfig::default()
            },
            &tiny(),
            FaultPlan::new().kill_at_label(1, "msq:deq:window", 0),
            RecoveryPolicy::designated(0),
        );
        assert_eq!(point.killed, vec![1]);
        assert!(point.survivors_completed(), "blocked: {:?}", point.blocked);
        // The victim died inside its first dequeue: its whole share is
        // residual, and the survivor replays every pair of it.
        assert_eq!(point.recovered_pairs, share(300, 3, 1));
        assert_eq!(point.pairs_completed + point.recovered_pairs, 300);
        assert_eq!(point.recoveries.len(), 1);
        assert_eq!(point.recoveries[0].victim, 1);
        assert_eq!(point.recoveries[0].by, 0);
        let ttr = point.time_to_recover_ns.expect("one recovery completed");
        assert!(ttr > 0, "catch-up work costs virtual time");
        // The victim's in-flight dequeue already swung Head, so the
        // replayed pairs leave the queue balanced.
        assert_eq!(point.drained, Some(0));
    }

    #[test]
    fn recovered_run_on_a_lock_queue_is_watchdog_flagged_not_recovered() {
        let point = run_simulated_recovered(
            Algorithm::SingleLock,
            SimConfig {
                processors: 3,
                watchdog_ns: 50_000_000,
                ..SimConfig::default()
            },
            &tiny(),
            FaultPlan::new().kill_at_label(1, "single-lock:deq:locked", 0),
            RecoveryPolicy::designated(0),
        );
        assert_eq!(point.killed, vec![1]);
        assert!(
            !point.survivors_completed(),
            "a dead lock-holder must wedge the survivors"
        );
        assert_eq!(point.recovered_pairs, 0);
        assert_eq!(point.time_to_recover_ns, None);
        assert!(point.recoveries.is_empty());
        assert_eq!(point.drained, None);
    }

    #[test]
    fn repaired_run_on_a_lock_queue_completes_with_conservation() {
        for (alg, label) in [
            (Algorithm::SingleLock, "single-lock:deq:locked"),
            (Algorithm::NewTwoLock, "two-lock:deq:locked"),
        ] {
            let point = run_simulated_repaired(
                alg,
                SimConfig {
                    processors: 3,
                    watchdog_ns: 400_000_000,
                    ..SimConfig::default()
                },
                &tiny(),
                FaultPlan::new().kill_at_label(1, label, 0),
                RecoveryPolicy::designated(0),
            );
            assert_eq!(point.killed, vec![1], "{alg}");
            assert!(
                point.survivors_completed(),
                "{alg}: repair must beat the watchdog, blocked {:?}",
                point.blocked
            );
            assert_eq!(point.repairs.len(), 1, "{alg}: {:?}", point.repairs);
            assert_eq!(point.repairs[0].victim, 1, "{alg}");
            let ttr = point.time_to_repair_ns.expect("one repair landed");
            assert!(ttr > 0, "{alg}: revocation costs virtual time");
            assert_eq!(
                point.pairs_completed + point.recovered_pairs,
                300,
                "{alg}: conservation"
            );
            let drained = point.drained.expect("a repaired queue is drainable");
            assert!(drained <= 1, "{alg}: at most the rolled-back value remains");
        }
    }

    #[test]
    fn repaired_runs_with_empty_plans_are_clean_and_deterministic() {
        let run = || {
            run_simulated_repaired(
                Algorithm::NewTwoLock,
                SimConfig {
                    processors: 2,
                    ..SimConfig::default()
                },
                &tiny(),
                FaultPlan::new(),
                RecoveryPolicy::designated(0),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.point.elapsed_ns, b.point.elapsed_ns);
        assert_eq!(a.point.cas_failures, b.point.cas_failures);
        assert!(a.repairs.is_empty(), "nothing to repair without a fault");
        assert!(a.recoveries.is_empty());
        assert_eq!(a.pairs_completed, 300);
        assert_eq!(a.drained, Some(0));
    }

    #[test]
    fn recovered_runs_are_deterministic() {
        let run = || {
            run_simulated_recovered(
                Algorithm::NewNonBlocking,
                SimConfig {
                    processors: 3,
                    watchdog_ns: 400_000_000,
                    ..SimConfig::default()
                },
                &tiny(),
                FaultPlan::new().kill_at_label(2, "msq:deq:window", 0),
                RecoveryPolicy::designated(1),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.point.elapsed_ns, b.point.elapsed_ns);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.time_to_recover_ns, b.time_to_recover_ns);
        assert_eq!(a.recovered_pairs, b.recovered_pairs);
    }

    #[test]
    fn net_normalization_scales_to_per_million() {
        let point = MeasuredPoint {
            algorithm: Algorithm::SingleLock,
            processors: 1,
            processes: 1,
            pairs: 10_000,
            elapsed_ns: 2_000_000,
            net_ns: 1_000_000, // 1 ms for 10k pairs
            miss_rate: 0.0,
            cas_failures: 0,
            preemptions: 0,
            peak_resident_segments: None,
            budget_denials: None,
        };
        // 1 ms per 10^4 pairs -> 100 ms per 10^6 pairs = 0.1 s.
        assert!((point.net_secs_per_million_pairs() - 0.1).abs() < 1e-9);
    }
}
