//! Regenerates the paper's Figures 3–5 on the simulated multiprocessor.
//!
//! ```text
//! cargo run -p msq-harness --release --bin figures -- [OPTIONS]
//!
//! --figure <3|4|5|all>      which figure to regenerate   (default: all)
//! --pairs <N>               total enqueue/dequeue pairs  (default: 20000)
//! --processors <list>       comma-separated sweep        (default: 1,2,3,4,6,8,10,12)
//! --other-work <ns>         other-work spin per phase    (default: 6000)
//! --quantum <ns>            scheduling quantum           (default: auto-scaled)
//! --out <dir>               also write CSV files there
//! --native                  run on real threads instead of the simulator
//!                           (figure 4/5 levels become thread oversubscription;
//!                           meaningful only on a host with enough cores)
//! ```

use std::io::Write as _;

use msq_harness::{figure_spec, run_figure, run_native, Algorithm, WorkloadConfig};
use msq_sim::SimConfig;

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--figure" => {
                let v = value("--figure")?;
                args.figures = match v.as_str() {
                    "all" => vec![3, 4, 5],
                    n => vec![n
                        .parse::<u8>()
                        .map_err(|_| format!("bad figure id {n:?}"))?],
                };
            }
            "--pairs" => {
                args.workload.pairs_total = value("--pairs")?
                    .parse()
                    .map_err(|_| "bad --pairs".to_string())?;
            }
            "--processors" => {
                args.processors = value("--processors")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --processors".to_string())?;
            }
            "--other-work" => {
                args.workload.other_work_ns = value("--other-work")?
                    .parse()
                    .map_err(|_| "bad --other-work".to_string())?;
            }
            "--quantum" => {
                args.quantum_ns = value("--quantum")?
                    .parse()
                    .map_err(|_| "bad --quantum".to_string())?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--native" => args.native = true,
            "--help" | "-h" => {
                args.help = true;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

struct Args {
    figures: Vec<u8>,
    processors: Vec<usize>,
    workload: WorkloadConfig,
    quantum_ns: u64,
    out: Option<String>,
    native: bool,
    help: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            figures: vec![3, 4, 5],
            processors: vec![1, 2, 3, 4, 6, 8, 10, 12],
            workload: WorkloadConfig::default(),
            quantum_ns: 0, // 0 = auto-scale with --pairs
            out: None,
            native: false,
            help: false,
        }
    }
}

/// The paper used a 10 ms quantum against 10^6 pairs. When the op count is
/// scaled down, scale the quantum with it so each process still lives
/// through many quanta; otherwise multiprogramming has no effect at all.
fn effective_quantum(args: &Args) -> u64 {
    if args.quantum_ns != 0 {
        return args.quantum_ns;
    }
    (10_000_000u64 * args.workload.pairs_total / 1_000_000).max(20_000)
}

/// Native-thread mode: a figure's multiprogramming level k at p
/// "processors" becomes k*p OS threads; the host scheduler provides the
/// preemption. Absolute meaning requires >= p host cores (the simulator
/// path is the host-independent reproduction).
fn run_native_mode(args: &Args) {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "native mode on {host_cores} host core(s); points with p > {host_cores} \
         are OS-multiprogrammed regardless of figure"
    );
    for &id in &args.figures {
        let spec = figure_spec(id);
        println!(
            "### Figure {id} (native threads): net time (s) per 10^6 pairs, {}x threads\n",
            spec.processes_per_processor
        );
        print!("| threads |");
        for algorithm in Algorithm::ALL {
            print!(" {} |", algorithm.label());
        }
        println!();
        print!("|---|");
        for _ in Algorithm::ALL {
            print!("---|");
        }
        println!();
        for &p in &args.processors {
            print!("| {} |", p * spec.processes_per_processor);
            for algorithm in Algorithm::ALL {
                let point = run_native(algorithm, p * spec.processes_per_processor, &args.workload);
                print!(" {:.3} |", point.net_secs_per_million_pairs());
                let _ = std::io::stdout().flush();
            }
            println!();
        }
        println!();
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}\nrun with --help for usage");
            std::process::exit(2);
        }
    };
    if args.help {
        println!(
            "figures: regenerate Michael & Scott 1996 Figures 3-5\n\
             --figure <3|4|5|all>  --pairs <N>  --processors <list>\n\
             --other-work <ns>  --quantum <ns>  --out <dir>  --native"
        );
        return;
    }
    if args.native {
        run_native_mode(&args);
        return;
    }
    let quantum_ns = effective_quantum(&args);
    let base = SimConfig {
        quantum_ns,
        ctx_switch_ns: (quantum_ns / 400).max(200), // paper ratio 25 µs : 10 ms
        ..SimConfig::default()
    };
    for &id in &args.figures {
        let spec = figure_spec(id);
        eprintln!(
            "regenerating figure {id} ({} pairs, processors {:?})...",
            args.workload.pairs_total, args.processors
        );
        let data = run_figure(spec, &args.processors, base, &args.workload, |alg, p| {
            eprint!("\r  {alg:<16} p={p:<3}   ");
            let _ = std::io::stderr().flush();
        });
        eprintln!();
        println!("{}", data.to_markdown());
        if let Some(dir) = &args.out {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = format!("{dir}/figure{id}.csv");
            std::fs::write(&path, data.to_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}
