//! Prints single-processor per-operation costs for every algorithm, on
//! both the simulator and native threads — the sanity anchor for the
//! figure sweeps (the paper's "with only one processor ... completion
//! times are very low" observation).
//!
//! ```text
//! cargo run -p msq-harness --release --bin calibrate -- [--pairs N]
//! ```

use msq_harness::{run_native, run_simulated, Algorithm, WorkloadConfig};
use msq_sim::SimConfig;

fn main() {
    let mut workload = WorkloadConfig {
        pairs_total: 10_000,
        ..WorkloadConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--pairs" => {
                workload.pairs_total = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pairs <N>");
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    println!("| algorithm | sim ns/pair (p=1) | sim miss rate | native ns/pair (1 thread) |");
    println!("|---|---|---|---|");
    for alg in Algorithm::ALL {
        let sim = run_simulated(alg, SimConfig::default(), &workload);
        let native = run_native(alg, 1, &workload);
        println!(
            "| {} | {:.0} | {:.3} | {:.0} |",
            alg.label(),
            sim.net_ns as f64 / sim.pairs as f64,
            sim.miss_rate,
            native.net_ns as f64 / native.pairs as f64,
        );
    }
}
