//! The experimental apparatus of Section 4.
//!
//! The paper's workload: p processes share one initially-empty queue; each
//! process repeatedly **enqueues an item, does ~6 µs of "other work",
//! dequeues an item, does more "other work"**, for a total of one million
//! enqueue/dequeue pairs across all processes. Reported numbers are *net*
//! elapsed time: total time minus the time one processor spends on its
//! share of the other work (which exists only to keep cache-miss rates
//! realistic).
//!
//! This crate drives that workload two ways:
//!
//! * [`run_simulated`] — on the `msq-sim` deterministic multiprocessor,
//!   which is how Figures 3 (dedicated), 4 (2 processes/processor) and 5
//!   (3 processes/processor) are regenerated on any host;
//! * [`run_native`] — on real threads, for per-operation costs and for
//!   hosts with genuine parallelism.
//!
//! [`Algorithm`] enumerates all six queues in the paper's legend; the
//! `figures` binary sweeps processor counts and emits the tables/CSV
//! recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

mod figures;
mod registry;
mod scenario;
mod workload;

pub use figures::{figure_spec, run_figure, FigureData, FigureRow, FigureSpec};
pub use registry::Algorithm;
pub use scenario::{
    percentile_ns, run_scenario_native, run_scenario_simulated, BatchedScenario, OpenLoopScenario,
    PairedScenario, PipelineScenario, PolicyScenario, Scenario, ScenarioCounters, ScenarioCtx,
    ScenarioOutcome, StealingScenario,
};
pub use workload::{
    run_native, run_native_batched, run_simulated, run_simulated_batched, run_simulated_faulted,
    run_simulated_recovered, run_simulated_repaired, FaultedPoint, MeasuredPoint, WorkloadConfig,
};
