//! Figure sweeps and report formatting.

use msq_sim::SimConfig;

use crate::registry::Algorithm;
use crate::workload::{run_simulated, MeasuredPoint, WorkloadConfig};

/// Which of the paper's figures to regenerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FigureSpec {
    /// Paper figure number (3, 4, or 5).
    pub id: u8,
    /// Processes multiplexed per processor (1, 2, or 3).
    pub processes_per_processor: usize,
}

/// Returns the spec for paper figure `id`.
///
/// # Panics
///
/// Panics if `id` is not 3, 4, or 5 (the paper has exactly those figures).
pub fn figure_spec(id: u8) -> FigureSpec {
    match id {
        3 => FigureSpec {
            id: 3,
            processes_per_processor: 1,
        },
        4 => FigureSpec {
            id: 4,
            processes_per_processor: 2,
        },
        5 => FigureSpec {
            id: 5,
            processes_per_processor: 3,
        },
        other => panic!("the paper has figures 3-5, not figure {other}"),
    }
}

/// One measured cell of a figure.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// The queue algorithm.
    pub algorithm: Algorithm,
    /// Points, one per processor count, in sweep order.
    pub points: Vec<MeasuredPoint>,
}

/// A regenerated figure: net time for every algorithm across the
/// processor sweep.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Which figure this is.
    pub spec: FigureSpec,
    /// The processor counts swept.
    pub processors: Vec<usize>,
    /// One row per algorithm, in the paper's legend order.
    pub rows: Vec<FigureRow>,
}

/// Regenerates one figure by sweeping `processors` for every algorithm.
///
/// `base` supplies the machine cost model; its `processors` and
/// `processes_per_processor` fields are overridden per sweep point.
pub fn run_figure(
    spec: FigureSpec,
    processors: &[usize],
    base: SimConfig,
    workload: &WorkloadConfig,
    mut progress: impl FnMut(Algorithm, usize),
) -> FigureData {
    let mut rows = Vec::new();
    for algorithm in Algorithm::ALL {
        let mut points = Vec::new();
        for &p in processors {
            progress(algorithm, p);
            let sim_config = SimConfig {
                processors: p,
                processes_per_processor: spec.processes_per_processor,
                ..base
            };
            points.push(run_simulated(algorithm, sim_config, workload));
        }
        rows.push(FigureRow { algorithm, points });
    }
    FigureData {
        spec,
        processors: processors.to_vec(),
        rows,
    }
}

impl FigureData {
    /// Renders the figure as a Markdown table of net seconds per 10^6
    /// enqueue/dequeue pairs (the paper's y-axis).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### Figure {}: net time (s) per 10^6 pairs, {} process(es) per processor\n\n",
            self.spec.id, self.spec.processes_per_processor
        ));
        out.push_str("| processors |");
        for row in &self.rows {
            out.push_str(&format!(" {} |", row.algorithm.label()));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.rows {
            out.push_str("---|");
        }
        out.push('\n');
        for (i, &p) in self.processors.iter().enumerate() {
            out.push_str(&format!("| {p} |"));
            for row in &self.rows {
                out.push_str(&format!(
                    " {:.3} |",
                    row.points[i].net_secs_per_million_pairs()
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the figure as CSV (`processors,algorithm,net_secs,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "figure,processors,processes,algorithm,pairs,elapsed_ns,net_ns,net_secs_per_million,miss_rate,cas_failures,preemptions\n",
        );
        for row in &self.rows {
            for point in &row.points {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{:.6},{:.6},{},{}\n",
                    self.spec.id,
                    point.processors,
                    point.processes,
                    point.algorithm.label(),
                    point.pairs,
                    point.elapsed_ns,
                    point.net_ns,
                    point.net_secs_per_million_pairs(),
                    point.miss_rate,
                    point.cas_failures,
                    point.preemptions,
                ));
            }
        }
        out
    }

    /// The net time for `algorithm` at `processors`, if measured.
    pub fn net_secs(&self, algorithm: Algorithm, processors: usize) -> Option<f64> {
        let idx = self.processors.iter().position(|&p| p == processors)?;
        let row = self.rows.iter().find(|r| r.algorithm == algorithm)?;
        Some(row.points[idx].net_secs_per_million_pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_specs_match_the_paper() {
        assert_eq!(figure_spec(3).processes_per_processor, 1);
        assert_eq!(figure_spec(4).processes_per_processor, 2);
        assert_eq!(figure_spec(5).processes_per_processor, 3);
    }

    #[test]
    #[should_panic(expected = "figures 3-5")]
    fn unknown_figure_rejected() {
        figure_spec(6);
    }

    #[test]
    fn tiny_figure_sweep_produces_full_grid() {
        let workload = WorkloadConfig {
            pairs_total: 120,
            other_work_ns: 500,
            capacity: 64,
            mem_budget: None,
        };
        let data = run_figure(
            figure_spec(3),
            &[1, 2],
            SimConfig::default(),
            &workload,
            |_, _| {},
        );
        assert_eq!(data.rows.len(), 6);
        for row in &data.rows {
            assert_eq!(row.points.len(), 2);
        }
        let md = data.to_markdown();
        assert!(md.contains("Figure 3"));
        assert!(md.contains("new-nonblocking"));
        let csv = data.to_csv();
        assert_eq!(csv.lines().count(), 1 + 6 * 2);
        assert!(data.net_secs(Algorithm::SingleLock, 1).is_some());
        assert!(data.net_secs(Algorithm::SingleLock, 7).is_none());
    }
}
