//! `SegQueue<T>`: the Michael–Scott queue with array-segment batching.
//!
//! The paper's non-blocking queue pays one CAS-contended linked-list link
//! per enqueue and one per dequeue, and every operation bounces the
//! `Head`/`Tail` cache lines. This variant keeps the paper's *list*
//! structure — a singly-linked chain with `Head`/`Tail` pointers, MS-style
//! helping, and hazard-pointer reclamation — but makes each list node a
//! fixed-size **segment** of slots. On the fast path an enqueuer claims a
//! slot with a single `fetch_add` on the tail segment's claim counter and
//! a dequeuer claims one with a CAS on the head segment's dequeue index;
//! the expensive MS CAS-append/CAS-unlink machinery runs only once every
//! `seg_size` operations, when a segment fills or drains.
//!
//! Drained segments are retired through the `msq-hazard` global domain, or
//! — in the spirit of the paper's type-stable node free list — recycled
//! through a bounded Treiber-stack pool when no hazard slot mentions them.
//!
//! # Linearizability sketch
//!
//! Within one segment, slot indices are handed out in order by `fetch_add`
//! and consumed in the same order by the dequeue index, so *slot order is
//! linearization order*. An enqueue linearizes at its successful
//! `EMPTY → FULL` slot publication (a claim that a lagging dequeuer
//! poisoned is a non-event; the enqueuer takes its value back and
//! re-claims). A dequeue linearizes at its winning CAS on the dequeue
//! index. Across segments, a slot in segment *n+1* can only be claimed
//! after segment *n* filled (the append CAS orders them), so segment order
//! extends slot order. The empty case linearizes at the observation
//! `claims ≤ deq_idx ∧ next == null` made while the head segment is
//! verifiably still the head — see [`SegQueue::dequeue`] for why the pool
//! cannot violate that verification.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use crossbeam_utils::CachePadded;
use msq_arena::MemBudget;
use msq_hazard::{PooledHazard, GLOBAL_DOMAIN};
use msq_platform::{Backoff, BackoffConfig, BatchFull, NativePlatform};

use crate::stack::LockFreeStack;

/// Slot has never held a value (or its claim was taken back).
const EMPTY: u8 = 0;
/// Slot holds a value, published and not yet consumed.
const FULL: u8 = 1;
/// Slot is used up: consumed by a dequeuer, or poisoned past a stalled
/// enqueuer.
const TAKEN: u8 = 2;

/// How many times a dequeuer re-reads a claimed-but-unpublished slot
/// before poisoning it and moving on.
const POISON_PATIENCE: usize = 64;

/// Tuning knobs for [`SegQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegConfig {
    /// Slots per segment. Larger segments amortize the MS link/unlink CAS
    /// over more operations but waste more memory on a near-empty queue.
    pub seg_size: usize,
    /// Maximum drained segments kept for reuse (the node-pool analogue of
    /// the paper's free list). `0` retires every drained segment.
    pub pool_limit: usize,
    /// Backoff applied to contended CAS retry loops.
    pub backoff: BackoffConfig,
}

impl SegConfig {
    /// The defaults: 32-slot segments, up to 8 pooled segments, standard
    /// backoff.
    pub const DEFAULT: SegConfig = SegConfig {
        seg_size: 32,
        pool_limit: 8,
        backoff: BackoffConfig::DEFAULT,
    };
}

impl Default for SegConfig {
    fn default() -> Self {
        SegConfig::DEFAULT
    }
}

/// Segment lifecycle counters, for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegStats {
    /// Segments allocated fresh from the heap.
    pub segs_allocated: usize,
    /// Drained segments recycled through the pool.
    pub segs_pooled: usize,
    /// Drained segments handed to the hazard domain for destruction.
    pub segs_retired: usize,
}

struct Slot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Segment<T> {
    /// Next slot index to hand to an enqueuer; grows past `seg_size` when
    /// the segment is full (the overshoot routes claimants to the append
    /// path).
    enq_count: CachePadded<AtomicUsize>,
    /// Next slot index a dequeuer will consume.
    deq_idx: CachePadded<AtomicUsize>,
    next: AtomicPtr<Segment<T>>,
    slots: Box<[Slot<T>]>,
    /// Back-pointer to the owning queue's free list, so the hazard
    /// domain's deleter can recycle a retired segment instead of freeing
    /// it. `Weak`: the domain may outlive the queue.
    pool: Weak<SegPool<T>>,
    /// The budget this segment's one residency unit was reserved against.
    /// Credited back in `Drop` — the only place a segment's storage truly
    /// returns to the allocator, which is exactly the
    /// credit-after-unreachability rule (pooled and hazard-retired
    /// segments are still resident, so they stay reserved).
    budget: Arc<MemBudget<NativePlatform>>,
}

impl<T> Segment<T> {
    /// Builds a segment. The caller must already have reserved one unit
    /// against `budget` (via `try_reserve` or `force_reserve`); `Drop`
    /// releases it.
    fn new(
        seg_size: usize,
        pool: Weak<SegPool<T>>,
        budget: Arc<MemBudget<NativePlatform>>,
    ) -> Box<Segment<T>> {
        let slots = (0..seg_size)
            .map(|_| Slot {
                state: AtomicU8::new(EMPTY),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Box::new(Segment {
            enq_count: CachePadded::new(AtomicUsize::new(0)),
            deq_idx: CachePadded::new(AtomicUsize::new(0)),
            next: AtomicPtr::new(ptr::null_mut()),
            slots,
            pool,
            budget,
        })
    }

    /// Returns a drained segment to its pristine state. Caller must hold
    /// the only logical reference (unlinked, unpooled, unprotected).
    fn reset(&self) {
        for slot in self.slots.iter() {
            slot.state.store(EMPTY, Ordering::Relaxed);
        }
        self.enq_count.store(0, Ordering::Relaxed);
        self.deq_idx.store(0, Ordering::Relaxed);
        self.next.store(ptr::null_mut(), Ordering::Release);
    }
}

impl<T> Drop for Segment<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            if slot.state.load(Ordering::Acquire) == FULL {
                // Safety: FULL means a value was published and never
                // consumed; we hold the segment exclusively.
                unsafe { ptr::drop_in_place((*slot.value.get()).as_mut_ptr()) };
            }
        }
        // The storage is gone for real: credit the residency unit back.
        self.budget.release(1);
    }
}

/// Raw segment pointer made `Send` so the Treiber pool can hold it. The
/// queue owns pooled segments exclusively (no value is ever reachable
/// through them).
struct SegPtr<T>(*mut Segment<T>);
unsafe impl<T: Send> Send for SegPtr<T> {}

/// The bounded segment free list — the paper's type-stable node pool at
/// segment granularity. Shared (`Arc`) between the queue and the hazard
/// domain's deleter, which returns retired segments here once the last
/// hazard protecting them clears.
struct SegPool<T> {
    stack: LockFreeStack<SegPtr<T>>,
    len: AtomicUsize,
    limit: usize,
    /// Lifetime count of segments recycled through the pool.
    pooled: AtomicUsize,
}

unsafe impl<T: Send> Send for SegPool<T> {}
unsafe impl<T: Send> Sync for SegPool<T> {}

impl<T> SegPool<T> {
    fn new(limit: usize) -> Arc<SegPool<T>> {
        Arc::new(SegPool {
            stack: LockFreeStack::new(),
            len: AtomicUsize::new(0),
            limit,
            pooled: AtomicUsize::new(0),
        })
    }

    /// Resets and pools `seg`, taking ownership, if there is room.
    /// Returns `false` (ownership **not** taken) when the pool is full.
    ///
    /// # Safety
    ///
    /// Caller must hold the only logical reference to `seg`: unlinked
    /// (or never published), out of the pool, and unprotected by any
    /// hazard.
    unsafe fn try_put(&self, seg: *mut Segment<T>) -> bool {
        if self.len.load(Ordering::Relaxed) >= self.limit {
            return false;
        }
        // Safety: exclusive per the contract above.
        unsafe { (*seg).reset() };
        self.len.fetch_add(1, Ordering::Relaxed);
        self.pooled.fetch_add(1, Ordering::SeqCst);
        self.stack.push(SegPtr(seg));
        true
    }

    /// Whether the pool has room for another segment. Advisory — racy by
    /// nature, used only to decide whether an eager reclamation pass is
    /// worth the scan.
    fn has_room(&self) -> bool {
        self.len.load(Ordering::Relaxed) < self.limit
    }

    fn take(&self) -> Option<Box<Segment<T>>> {
        let SegPtr(p) = self.stack.pop()?;
        self.len.fetch_sub(1, Ordering::Relaxed);
        // Safety: pooled segments are fully reset and unreachable from
        // any live list; popping transfers sole ownership to us.
        Some(unsafe { Box::from_raw(p) })
    }
}

impl<T> Drop for SegPool<T> {
    fn drop(&mut self) {
        // Pooled segments hold no values; free the allocations.
        while let Some(SegPtr(p)) = self.stack.pop() {
            // Safety: sole owner at drop time.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// Destructor the hazard domain runs once a retired segment is no longer
/// protected: recycle it through its queue's pool when the queue is still
/// alive and the pool has room, free it otherwise.
unsafe fn retire_segment<T>(ptr: *mut u8) {
    let seg = ptr.cast::<Segment<T>>();
    // Safety (deref): the domain guarantees `ptr` is live and this runs
    // exactly once, with no hazard protecting the segment — we are the
    // sole owner.
    if let Some(pool) = unsafe { &*seg }.pool.upgrade() {
        // Safety (try_put): sole ownership, as above.
        if unsafe { pool.try_put(seg) } {
            return;
        }
    }
    // Safety: sole owner; allocated by `Box::into_raw`.
    drop(unsafe { Box::from_raw(seg) });
}

/// An unbounded MPMC FIFO queue of array segments — the Michael–Scott
/// algorithm with its per-operation link CASes batched away.
///
/// # Example
///
/// ```
/// use msq_core::SegQueue;
///
/// let queue = SegQueue::new();
/// queue.enqueue("a");
/// queue.enqueue("b");
/// assert_eq!(queue.dequeue(), Some("a"));
/// assert_eq!(queue.dequeue(), Some("b"));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct SegQueue<T> {
    head: CachePadded<AtomicPtr<Segment<T>>>,
    tail: CachePadded<AtomicPtr<Segment<T>>>,
    pool: Arc<SegPool<T>>,
    config: SegConfig,
    budget: Arc<MemBudget<NativePlatform>>,
    /// Registration token of this queue's pool-shrink reclaimer, if one
    /// was installed (see [`SegQueue::with_config_and_budget`]).
    reclaimer_id: Option<usize>,
    segs_allocated: AtomicUsize,
    segs_retired: AtomicUsize,
}

unsafe impl<T: Send> Send for SegQueue<T> {}
unsafe impl<T: Send> Sync for SegQueue<T> {}

impl<T> SegQueue<T> {
    /// Creates an empty queue with [`SegConfig::DEFAULT`].
    pub fn new() -> Self {
        SegQueue::with_config(SegConfig::DEFAULT)
    }

    /// Creates an empty queue with explicit tuning, metered against the
    /// [process-global budget](MemBudget::global).
    ///
    /// # Panics
    ///
    /// Panics if `config.seg_size == 0`.
    pub fn with_config(config: SegConfig) -> Self {
        SegQueue::build(config, Arc::clone(MemBudget::global()))
    }

    fn build(config: SegConfig, budget: Arc<MemBudget<NativePlatform>>) -> Self {
        assert!(config.seg_size > 0, "segments need at least one slot");
        let pool = SegPool::new(config.pool_limit);
        // The dummy-analogue first segment is unconditional: a queue
        // cannot exist without it, so it takes its unit even past the
        // limit (every queue has a one-segment floor).
        budget.force_reserve(1);
        let first = Box::into_raw(Segment::new(
            config.seg_size,
            Arc::downgrade(&pool),
            Arc::clone(&budget),
        ));
        SegQueue {
            head: CachePadded::new(AtomicPtr::new(first)),
            tail: CachePadded::new(AtomicPtr::new(first)),
            pool,
            config,
            budget,
            reclaimer_id: None,
            segs_allocated: AtomicUsize::new(1),
            segs_retired: AtomicUsize::new(0),
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> SegConfig {
        self.config
    }

    /// The memory budget this queue reserves segments against.
    pub fn budget(&self) -> &Arc<MemBudget<NativePlatform>> {
        &self.budget
    }

    /// Creates an empty queue reserving its segments against `budget`,
    /// and registers a pool-shrink reclaimer with it: when *any* queue on
    /// the same budget hits the limit, this queue's idle pooled segments
    /// are freed to make room. The hook is unregistered on drop.
    ///
    /// Use [`SegQueue::try_enqueue`] / [`SegQueue::try_enqueue_batch`] to
    /// observe the budget as backpressure; the infallible paths overrun
    /// it (counted by [`MemBudget::overruns`]) rather than block.
    ///
    /// # Panics
    ///
    /// Panics if `config.seg_size == 0`.
    pub fn with_config_and_budget(config: SegConfig, budget: Arc<MemBudget<NativePlatform>>) -> Self
    where
        T: Send + 'static,
    {
        let mut queue = SegQueue::build(config, budget);
        let pool = Arc::downgrade(&queue.pool);
        let id = queue.budget.register_reclaimer(Box::new(move || {
            let Some(pool) = pool.upgrade() else { return 0 };
            let mut freed = 0;
            while let Some(seg) = pool.take() {
                drop(seg); // Segment::drop credits the budget
                freed += 1;
            }
            freed
        }));
        queue.reclaimer_id = Some(id);
        queue
    }

    /// Segment lifecycle counters (allocated / pooled / retired).
    pub fn stats(&self) -> SegStats {
        SegStats {
            segs_allocated: self.segs_allocated.load(Ordering::SeqCst),
            segs_pooled: self.pool.pooled.load(Ordering::SeqCst),
            segs_retired: self.segs_retired.load(Ordering::SeqCst),
        }
    }

    /// Appends `value` to the tail. Lock-free; the common case is one
    /// `fetch_add` plus one uncontended slot CAS.
    ///
    /// Infallible: if growing requires a segment the budget cannot cover
    /// (even after reclaim pressure), the reservation is forced and
    /// counted as an overrun. Use [`SegQueue::try_enqueue`] for
    /// backpressure instead.
    pub fn enqueue(&self, value: T) {
        if self.enqueue_inner(value, false).is_err() {
            unreachable!("infallible enqueue reported backpressure");
        }
    }

    /// Appends `value`, or returns it in `Err` when the tail segment is
    /// full and the memory budget cannot cover a new segment even after
    /// cross-queue reclaim pressure (eager hazard-scan flush, then pool
    /// shrink). No value is lost and nothing blocks: the caller decides
    /// whether to retry after dequeues free segments.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        self.enqueue_inner(value, true)
    }

    fn enqueue_inner(&self, mut value: T, fallible: bool) -> Result<(), T> {
        let k = self.config.seg_size;
        let mut hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        let mut backoff = Backoff::new(self.config.backoff);
        // A segment we allocated (or pooled) for an append that lost its
        // race, kept for the next attempt instead of churning the pool.
        let mut spare: Option<Box<Segment<T>>> = None;
        loop {
            // `protect` re-validates `tail == seg`, so a segment observed
            // here was reachable after our hazard was visible: the unlink
            // path's hazard scan keeps it out of the pool (it is retired
            // instead), making use-after-recycle impossible.
            let seg = hazard.protect(&self.tail);
            let seg_ref = unsafe { &*seg };

            // Fast path: claim a slot with a single fetch_add — the only
            // access most enqueues make to the shared counter (a pre-read
            // would cost an extra coherence miss on the hottest word). On
            // a full segment the increment is wasted but harmless: it
            // overshoots by at most one per contending enqueuer per
            // retry, and the overshoot routes everyone to the append
            // path, which replaces the segment.
            let t = seg_ref.enq_count.fetch_add(1, Ordering::AcqRel);
            if t < k {
                let slot = &seg_ref.slots[t];
                // Safety: `fetch_add` hands index `t` to us alone; no
                // dequeuer touches the cell before seeing FULL.
                unsafe { (*slot.value.get()).write(value) };
                match slot
                    .state
                    .compare_exchange(EMPTY, FULL, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        if let Some(unused) = spare {
                            self.pool_or_free(unused);
                        }
                        return Ok(());
                    }
                    Err(_) => {
                        // A dequeuer gave up on us and poisoned the
                        // slot (EMPTY → TAKEN). The claim is a
                        // non-event: take the value back and re-claim.
                        // Safety: a poisoned slot is never read by
                        // dequeuers, so the value is still exclusively
                        // ours.
                        value = unsafe { (*slot.value.get()).assume_init_read() };
                        backoff.spin(&NativePlatform::new());
                        continue;
                    }
                }
            }

            // Slow path: the tail segment is full. Help or append, exactly
            // as the paper's enqueue helps or links (E9/E12).
            let next = seg_ref.next.load(Ordering::Acquire);
            if !next.is_null() {
                // E12: tail is lagging; help swing it and retry.
                let _ = self
                    .tail
                    .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Acquire);
                continue;
            }

            // Pre-install our value in slot 0 of a fresh segment, so the
            // append CAS is also the enqueue's linearization point.
            let fresh = match spare.take() {
                Some(seg) => seg,
                None if fallible => match self.try_alloc_segment() {
                    Some(seg) => seg,
                    None => return Err(value),
                },
                None => self.alloc_segment(),
            };
            // Safety: `fresh` is unpublished; we own it exclusively.
            unsafe { (*fresh.slots[0].value.get()).write(value) };
            fresh.slots[0].state.store(FULL, Ordering::Relaxed);
            fresh.enq_count.store(1, Ordering::Relaxed);
            let fresh_ptr = Box::into_raw(fresh);

            match seg_ref.next.compare_exchange(
                ptr::null_mut(),
                fresh_ptr,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // E13 analogue: swing tail to the new segment,
                    // best-effort.
                    let _ = self.tail.compare_exchange(
                        seg,
                        fresh_ptr,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    return Ok(());
                }
                Err(_) => {
                    // Another appender won. Reclaim our segment and value.
                    // Safety: the CAS failed, so `fresh_ptr` was never
                    // published; we still own it exclusively.
                    let fresh = unsafe { Box::from_raw(fresh_ptr) };
                    value = unsafe { (*fresh.slots[0].value.get()).assume_init_read() };
                    fresh.slots[0].state.store(EMPTY, Ordering::Relaxed);
                    fresh.enq_count.store(0, Ordering::Relaxed);
                    spare = Some(fresh);
                    backoff.spin(&NativePlatform::new());
                }
            }
        }
    }

    /// Removes the value at the head, or returns `None` if the queue is
    /// empty. Lock-free; the common case is one CAS on the head segment's
    /// dequeue index.
    pub fn dequeue(&self) -> Option<T> {
        let k = self.config.seg_size;
        let mut hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        let mut backoff = Backoff::new(self.config.backoff);
        loop {
            let seg = hazard.protect(&self.head);
            let seg_ref = unsafe { &*seg };
            let d = seg_ref.deq_idx.load(Ordering::Acquire);

            if d >= k {
                // Segment fully consumed: unlink it, as the paper's
                // dequeue retires its dummy (D19/D20).
                let next = seg_ref.next.load(Ordering::Acquire);
                if next.is_null() {
                    // Empty, provided this segment is still the head. The
                    // hazard re-validation in `protect` plus the
                    // retire-don't-pool rule for protected segments means
                    // head == seg here implies seg was head continuously
                    // since `protect`, so the null `next` read is a true
                    // empty observation — the linearization point.
                    if self.head.load(Ordering::SeqCst) == seg {
                        return None;
                    }
                    continue;
                }
                // Keep the MS invariant that head never passes tail
                // (D10): help tail off this segment first.
                let tail = self.tail.load(Ordering::SeqCst);
                if tail == seg {
                    let _ =
                        self.tail
                            .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Acquire);
                }
                if self
                    .head
                    .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // We unlinked `seg`; clear our own hazard before the
                    // pool-vs-retire decision so we don't see ourselves.
                    hazard.clear();
                    self.recycle_unlinked(seg);
                }
                continue;
            }

            let slot = &seg_ref.slots[d];
            match slot.state.load(Ordering::Acquire) {
                FULL => {
                    if seg_ref
                        .deq_idx
                        .compare_exchange(d, d + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // Winning the index CAS grants exclusive ownership
                        // of slot `d`.
                        // Safety: FULL ⇒ the value is published; only the
                        // CAS winner reads it.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.state.store(TAKEN, Ordering::Release);
                        return Some(value);
                    }
                    backoff.spin(&NativePlatform::new());
                }
                TAKEN => {
                    // Poisoned (or a racing helper); step over it.
                    let _ = seg_ref.deq_idx.compare_exchange(
                        d,
                        d + 1,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                }
                _ => {
                    let claims = seg_ref.enq_count.load(Ordering::Acquire);
                    if claims <= d {
                        // No claim covers slot `d`, so slots d.. are all
                        // unclaimed, and claims < seg_size means no append
                        // ever happened: queue empty if still the head
                        // (same argument as above).
                        if seg_ref.next.load(Ordering::Acquire).is_null()
                            && self.head.load(Ordering::SeqCst) == seg
                        {
                            return None;
                        }
                        continue;
                    }
                    // An enqueuer claimed slot `d` but hasn't published.
                    // Wait briefly, then poison the slot so one stalled
                    // enqueuer cannot block every dequeuer (the claimant
                    // detects the poison and re-claims elsewhere).
                    let mut published = false;
                    for _ in 0..POISON_PATIENCE {
                        if slot.state.load(Ordering::Acquire) != EMPTY {
                            published = true;
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    if !published {
                        let _ = slot.state.compare_exchange(
                            EMPTY,
                            TAKEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                    }
                    // Re-loop to handle whatever state the slot is in now.
                }
            }
        }
    }

    /// Appends every value in `values`, preserving slice order, with the
    /// link CAS amortized over whole segments.
    ///
    /// While the tail segment has room, one `fetch_add` claims a run of
    /// its slots for the batch prefix. Once the tail is full, the
    /// remaining suffix is cloned into a privately-owned chain of
    /// segments (pool-recycled when possible) and spliced after the tail
    /// with a single `next` CAS — the linearization point of every value
    /// the chain carries, so the suffix is observed contiguously and in
    /// order. A batch of `n` values costs O(n / seg_size) contended CASes
    /// instead of O(n).
    ///
    /// Infallible: budget-exceeding chain segments are force-reserved
    /// (counted as overruns). Use [`SegQueue::try_enqueue_batch`] for
    /// backpressure.
    pub fn enqueue_batch(&self, values: &[T])
    where
        T: Clone,
    {
        if self.enqueue_batch_inner(values, false).is_err() {
            unreachable!("infallible enqueue_batch reported backpressure");
        }
    }

    /// Like [`SegQueue::enqueue_batch`], but stops growing when the
    /// memory budget is exhausted (after reclaim pressure): exactly the
    /// first `pushed` values of `values` were enqueued, and
    /// `&values[pushed..]` can be retried verbatim after dequeues free
    /// segments. No value is lost or duplicated.
    pub fn try_enqueue_batch(&self, values: &[T]) -> Result<(), BatchFull>
    where
        T: Clone,
    {
        self.enqueue_batch_inner(values, true)
    }

    fn enqueue_batch_inner(&self, values: &[T], fallible: bool) -> Result<(), BatchFull>
    where
        T: Clone,
    {
        let k = self.config.seg_size;
        let mut hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        let mut backoff = Backoff::new(self.config.backoff);
        let mut pushed = 0usize;
        // Segments prepared for an append that never happened, kept for
        // the next attempt (or returned to the pool on exit).
        let mut spares: Vec<Box<Segment<T>>> = Vec::new();
        while pushed < values.len() {
            let seg = hazard.protect(&self.tail);
            let seg_ref = unsafe { &*seg };
            let remaining = values.len() - pushed;

            // Fast path: one fetch_add claims a run of tail slots. The
            // delta is capped at seg_size, bounding the overshoot on a
            // full segment.
            let delta = remaining.min(k);
            let t = seg_ref.enq_count.fetch_add(delta, Ordering::AcqRel);
            if t < k {
                // Fill the claimed run in slice order. A poisoned slot
                // shifts the pending value to the next slot of the run,
                // so batch order survives poisoning.
                let end = k.min(t + delta);
                for idx in t..end {
                    if pushed == values.len() {
                        break;
                    }
                    let slot = &seg_ref.slots[idx];
                    // Safety: `fetch_add` handed index `idx` to us alone.
                    unsafe { (*slot.value.get()).write(values[pushed].clone()) };
                    match slot.state.compare_exchange(
                        EMPTY,
                        FULL,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => pushed += 1,
                        Err(_) => {
                            // Poisoned by an impatient dequeuer. Drop the
                            // clone; the value shifts to the next slot.
                            // Safety: a poisoned slot is never read.
                            unsafe { ptr::drop_in_place((*slot.value.get()).as_mut_ptr()) };
                        }
                    }
                }
                continue;
            }

            // Tail segment full: help a lagging tail, or splice a chain.
            let next = seg_ref.next.load(Ordering::Acquire);
            if !next.is_null() {
                let _ = self
                    .tail
                    .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Acquire);
                continue;
            }
            // Build a privately-owned chain holding the whole remaining
            // suffix. Every chain segment except the last is completely
            // full, preserving the invariant that only a full segment
            // gains a successor. On the fallible path an exhausted budget
            // truncates the chain: whatever prefix fits still splices
            // (keeping the exact-prefix contract), and a chain that
            // cannot even start reports `BatchFull`.
            let mut chain: Vec<*mut Segment<T>> = Vec::new();
            let mut filled = 0usize;
            let mut starved = false;
            while filled < remaining {
                let seg_box = match spares.pop() {
                    Some(seg) => seg,
                    None if fallible => match self.try_alloc_segment() {
                        Some(seg) => seg,
                        None => {
                            starved = true;
                            break;
                        }
                    },
                    None => self.alloc_segment(),
                };
                let m = (remaining - filled).min(k);
                for i in 0..m {
                    // Safety: `seg_box` is unpublished; exclusively ours.
                    unsafe {
                        (*seg_box.slots[i].value.get()).write(values[pushed + filled + i].clone())
                    };
                    seg_box.slots[i].state.store(FULL, Ordering::Relaxed);
                }
                seg_box.enq_count.store(m, Ordering::Relaxed);
                seg_box.next.store(ptr::null_mut(), Ordering::Relaxed);
                let raw = Box::into_raw(seg_box);
                if let Some(&prev) = chain.last() {
                    // Safety: `prev` is ours until the splice publishes it.
                    unsafe { (*prev).next.store(raw, Ordering::Release) };
                }
                chain.push(raw);
                filled += m;
            }
            if chain.is_empty() {
                // Starved before the first chain segment: report the
                // exact prefix already pushed as backpressure.
                debug_assert!(starved);
                for seg_box in spares.drain(..) {
                    self.pool_or_free(seg_box);
                }
                return Err(BatchFull { pushed });
            }
            let chain_head = chain[0];
            let chain_tail = *chain.last().expect("chain is non-empty");
            // Splice the whole chain with one CAS — the linearization
            // point of every value it carries.
            match seg_ref.next.compare_exchange(
                ptr::null_mut(),
                chain_head,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    let _ = self.tail.compare_exchange(
                        seg,
                        chain_tail,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    pushed += filled;
                }
                Err(_) => {
                    // Lost the splice race; the chain was never published.
                    // Drop the clones and keep the segments as spares.
                    for raw in chain {
                        // Safety: unpublished, so still exclusively ours.
                        let seg_box = unsafe { Box::from_raw(raw) };
                        let m = seg_box.enq_count.load(Ordering::Relaxed).min(k);
                        for i in 0..m {
                            // Safety: slots 0..m hold clones we wrote.
                            unsafe {
                                ptr::drop_in_place((*seg_box.slots[i].value.get()).as_mut_ptr())
                            };
                        }
                        seg_box.reset();
                        spares.push(seg_box);
                    }
                    backoff.spin(&NativePlatform::new());
                }
            }
        }
        for seg_box in spares {
            self.pool_or_free(seg_box);
        }
        Ok(())
    }

    /// Removes up to `max` values from the head, appending them to `out`
    /// in dequeue order; returns how many were taken. Fewer than `max`
    /// (possibly zero) means the queue was observed empty.
    ///
    /// Claims a whole run of published slots by moving the head segment's
    /// dequeue index once, then drains the run locally — O(n / seg_size)
    /// contended CASes for `n` values. Slots a run claim cannot consume
    /// (in-progress publications, stalled claimants, segment turnover)
    /// fall back to the per-op path.
    pub fn dequeue_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let k = self.config.seg_size;
        let mut hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        let mut backoff = Backoff::new(self.config.backoff);
        let mut taken = 0usize;
        while taken < max {
            let seg = hazard.protect(&self.head);
            let seg_ref = unsafe { &*seg };
            let d = seg_ref.deq_idx.load(Ordering::Acquire);
            // Extend the claimable run across published slots.
            let mut end = d;
            let hard_end = k.min(d.saturating_add(max - taken));
            while end < hard_end && seg_ref.slots[end].state.load(Ordering::Acquire) == FULL {
                end += 1;
            }
            if end == d {
                // Head slot not consumable by a run claim (EMPTY, WRITING
                // window, TAKEN, or a drained segment). The per-op path
                // knows how to wait, step over, poison, or unlink.
                hazard.clear();
                match self.dequeue() {
                    Some(value) => {
                        out.push(value);
                        taken += 1;
                    }
                    None => break,
                }
                continue;
            }
            if seg_ref
                .deq_idx
                .compare_exchange(d, end, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Winning the index CAS grants exclusive ownership of the
                // whole run; the hazard keeps the segment alive while we
                // drain it.
                for i in d..end {
                    let slot = &seg_ref.slots[i];
                    // Safety: FULL ⇒ published; only the run owner reads.
                    out.push(unsafe { (*slot.value.get()).assume_init_read() });
                    slot.state.store(TAKEN, Ordering::Release);
                }
                taken += end - d;
            } else {
                backoff.spin(&NativePlatform::new());
            }
        }
        taken
    }

    /// Whether the queue appears empty at some instant.
    pub fn is_empty(&self) -> bool {
        let mut hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        loop {
            let seg = hazard.protect(&self.head);
            let seg_ref = unsafe { &*seg };
            let d = seg_ref.deq_idx.load(Ordering::Acquire);
            let claims = seg_ref.enq_count.load(Ordering::Acquire);
            let has_next = !seg_ref.next.load(Ordering::Acquire).is_null();
            if self.head.load(Ordering::SeqCst) != seg {
                continue;
            }
            return !has_next && claims.min(self.config.seg_size) <= d;
        }
    }

    /// Produces a segment for growth, or `None` when the memory budget
    /// is exhausted even after escalating reclaim pressure:
    ///
    /// 1. our own pool (already reserved — free of charge);
    /// 2. a fresh reservation;
    /// 3. eager hazard-scan flush (surfaces retired-but-unscanned
    ///    segments into pools or back to the heap), then 1–2 again;
    /// 4. cross-queue pool shrink via the budget's reclaimers, then 2.
    fn try_alloc_segment(&self) -> Option<Box<Segment<T>>> {
        if let Some(seg) = self.pool.take() {
            return Some(seg);
        }
        if self.budget.try_reserve(1) {
            return Some(self.fresh_segment());
        }
        GLOBAL_DOMAIN.eager_scan();
        if let Some(seg) = self.pool.take() {
            return Some(seg);
        }
        if self.budget.try_reserve(1) {
            return Some(self.fresh_segment());
        }
        if self.budget.reclaim() > 0 && self.budget.try_reserve(1) {
            return Some(self.fresh_segment());
        }
        None
    }

    fn alloc_segment(&self) -> Box<Segment<T>> {
        if let Some(seg) = self.try_alloc_segment() {
            return seg;
        }
        // Infallible path past an exhausted budget: overrun rather than
        // block or lose the value.
        self.budget.force_reserve(1);
        self.fresh_segment()
    }

    /// Heap-allocates a segment. The caller must have reserved its unit.
    fn fresh_segment(&self) -> Box<Segment<T>> {
        self.segs_allocated.fetch_add(1, Ordering::SeqCst);
        Segment::new(
            self.config.seg_size,
            Arc::downgrade(&self.pool),
            Arc::clone(&self.budget),
        )
    }

    /// Disposes of a segment we just unlinked from the head: straight back
    /// to the pool when no hazard mentions it, otherwise through the
    /// hazard domain — whose deleter *also* recycles it into the pool once
    /// the last hazard clears, so segments stay type-stable either way.
    fn recycle_unlinked(&self, seg: *mut Segment<T>) {
        if !GLOBAL_DOMAIN.is_protected(seg.cast()) {
            // Safety: unlinked by us and unprotected by anyone who could
            // still act on it (every reader re-validates reachability
            // after publishing its hazard), so we hold the only logical
            // reference.
            if unsafe { self.pool.try_put(seg) } {
                return;
            }
        }
        self.segs_retired.fetch_add(1, Ordering::SeqCst);
        // Safety: unlinked and never retired before; the domain runs
        // `retire_segment` exactly once, after no hazard mentions it.
        unsafe { GLOBAL_DOMAIN.retire_with(seg.cast(), retire_segment::<T>) };
        // We are the thread that retires segments, so they queue on OUR
        // local retired list; left alone they surface only every
        // SCAN_THRESHOLD retirements, in bursts the bounded pool cannot
        // absorb. Flush eagerly while the pool wants segments — the scan
        // is cheap (hazard slots are few) and runs on the once-per-
        // `seg_size` unlink path, never per operation.
        if self.pool.has_room() {
            GLOBAL_DOMAIN.eager_scan();
        }
    }

    fn pool_or_free(&self, seg: Box<Segment<T>>) {
        let raw = Box::into_raw(seg);
        // Safety: never published; exclusively ours.
        if !unsafe { self.pool.try_put(raw) } {
            // Safety: ownership was not taken; free the allocation.
            drop(unsafe { Box::from_raw(raw) });
        }
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegQueue")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> Drop for SegQueue<T> {
    fn drop(&mut self) {
        if let Some(id) = self.reclaimer_id {
            self.budget.unregister_reclaimer(id);
        }
        // Exclusive access: walk the chain dropping unconsumed values.
        let mut seg = *self.head.get_mut();
        while !seg.is_null() {
            // Safety: we own the whole chain exclusively in Drop.
            let boxed = unsafe { Box::from_raw(seg) };
            seg = boxed.next.load(Ordering::Relaxed);
            drop(boxed); // Segment::drop releases FULL values
        }
        // Pooled segments (which hold no values) free when the pool's last
        // `Arc` drops; segments still pending in the hazard domain free
        // themselves once their `Weak` back-pointer stops upgrading.
    }
}

impl<T> FromIterator<T> for SegQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let queue = SegQueue::new();
        for value in iter {
            queue.enqueue(value);
        }
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_across_many_segments() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        });
        for i in 0..1000 {
            q.enqueue(i);
        }
        for i in 0..1000 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn is_empty_tracks_contents() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.enqueue(1);
        assert!(!q.is_empty());
        q.dequeue();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_enqueue_dequeue_crosses_boundaries() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 2,
            ..SegConfig::DEFAULT
        });
        let mut expected = 0;
        for i in 0..50 {
            q.enqueue(2 * i);
            q.enqueue(2 * i + 1);
            assert_eq!(q.dequeue(), Some(expected));
            expected += 1;
        }
        while let Some(v) = q.dequeue() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, 100);
    }

    #[test]
    fn works_with_owned_types() {
        let q = SegQueue::new();
        q.enqueue(String::from("hello"));
        q.enqueue(String::from("world"));
        assert_eq!(q.dequeue().as_deref(), Some("hello"));
        assert_eq!(q.dequeue().as_deref(), Some("world"));
    }

    #[test]
    fn from_iterator() {
        let q: SegQueue<u32> = (0..10).collect();
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn drop_releases_remaining_values() {
        struct Counted(Arc<StdAtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        {
            let q = SegQueue::with_config(SegConfig {
                seg_size: 3,
                ..SegConfig::DEFAULT
            });
            for _ in 0..10 {
                q.enqueue(Counted(Arc::clone(&drops)));
            }
            q.dequeue();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn drained_segments_are_pooled_then_reused() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 2,
            pool_limit: 4,
            backoff: BackoffConfig::DEFAULT,
        });
        for round in 0..20 {
            for i in 0..6 {
                q.enqueue(round * 10 + i);
            }
            for i in 0..6 {
                assert_eq!(q.dequeue(), Some(round * 10 + i));
            }
        }
        let stats = q.stats();
        assert!(stats.segs_pooled > 0, "pool never used: {stats:?}");
        assert!(
            stats.segs_allocated < 20,
            "pooling should curb allocation: {stats:?}"
        );
    }

    #[test]
    fn pool_limit_zero_retires_everything() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 2,
            pool_limit: 0,
            backoff: BackoffConfig::DEFAULT,
        });
        for i in 0..20 {
            q.enqueue(i);
        }
        for i in 0..20 {
            assert_eq!(q.dequeue(), Some(i));
        }
        let stats = q.stats();
        assert_eq!(stats.segs_pooled, 0);
        assert!(stats.segs_retired >= 9, "20 items / 2 slots: {stats:?}");
    }

    #[test]
    fn batch_round_trip_across_segments() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        });
        let values: Vec<u64> = (0..30).collect();
        q.enqueue_batch(&values);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 64), 30);
        assert_eq!(out, values);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_interleaves_with_per_op_calls() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        });
        q.enqueue(100);
        q.enqueue_batch(&[101, 102, 103, 104, 105]);
        q.enqueue(106);
        for expect in 100..=106 {
            assert_eq!(q.dequeue(), Some(expect));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn dequeue_batch_respects_max() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        });
        q.enqueue_batch(&(0..20).collect::<Vec<u64>>());
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 7), 7);
        assert_eq!(out, (0..7).collect::<Vec<u64>>());
        assert_eq!(q.dequeue_batch(&mut out, 100), 13);
        assert_eq!(out, (0..20).collect::<Vec<u64>>());
        assert_eq!(q.dequeue_batch(&mut out, 1), 0);
    }

    #[test]
    fn batch_works_with_owned_types() {
        let q = SegQueue::with_config(SegConfig {
            seg_size: 2,
            ..SegConfig::DEFAULT
        });
        let words: Vec<String> = ["alpha", "beta", "gamma", "delta", "epsilon"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        q.enqueue_batch(&words);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 10), 5);
        assert_eq!(out, words);
    }

    #[test]
    fn drop_releases_values_left_by_batches() {
        struct Counted(Arc<StdAtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        impl Clone for Counted {
            fn clone(&self) -> Self {
                Counted(Arc::clone(&self.0))
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        {
            let q = SegQueue::with_config(SegConfig {
                seg_size: 3,
                ..SegConfig::DEFAULT
            });
            let batch: Vec<Counted> = (0..10).map(|_| Counted(Arc::clone(&drops))).collect();
            q.enqueue_batch(&batch);
            drop(batch); // 10 originals dropped here
            let mut out = Vec::new();
            q.dequeue_batch(&mut out, 4); // 4 clones dropped with `out`
        }
        // 10 originals + 10 clones, none leaked, none double-dropped.
        assert_eq!(drops.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn mpmc_batch_stress_conserves_values() {
        let q = Arc::new(SegQueue::with_config(SegConfig {
            seg_size: 8,
            ..SegConfig::DEFAULT
        }));
        const PRODUCERS: usize = 3;
        const BATCHES: usize = 200;
        const BATCH: usize = 16;
        let total = PRODUCERS * BATCHES * BATCH;
        let consumed = Arc::new(StdAtomicUsize::new(0));
        let sum = Arc::new(StdAtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for b in 0..BATCHES {
                    let base = (p * BATCHES + b) * BATCH;
                    let batch: Vec<usize> = (base..base + BATCH).collect();
                    q.enqueue_batch(&batch);
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while consumed.load(Ordering::SeqCst) < total {
                    local.clear();
                    let got = q.dequeue_batch(&mut local, 32);
                    if got == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    sum.fetch_add(local.iter().sum::<usize>(), Ordering::SeqCst);
                    consumed.fetch_add(got, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), total);
        assert_eq!(sum.load(Ordering::SeqCst), total * (total - 1) / 2);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_per_producer_order_is_preserved() {
        let q = Arc::new(SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        }));
        let mut handles = Vec::new();
        for p in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for b in 0..100_u64 {
                    let base = p * 1_000_000 + b * 10;
                    let batch: Vec<u64> = (base..base + 10).collect();
                    q.enqueue_batch(&batch);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        q.dequeue_batch(&mut out, usize::MAX);
        assert_eq!(out.len(), 3_000);
        let mut last = [None::<u64>; 3];
        for v in out {
            let p = (v / 1_000_000) as usize;
            if let Some(prev) = last[p] {
                assert!(v > prev, "producer {p} reordered: {prev} then {v}");
            }
            last[p] = Some(v);
        }
    }

    fn tiny_budget(limit: u64) -> Arc<MemBudget<NativePlatform>> {
        Arc::new(MemBudget::new(&NativePlatform::new(), limit))
    }

    #[test]
    fn try_enqueue_hits_backpressure_and_recovers() {
        let budget = tiny_budget(3);
        let q: SegQueue<u64> = SegQueue::with_config_and_budget(
            SegConfig {
                seg_size: 2,
                ..SegConfig::DEFAULT
            },
            Arc::clone(&budget),
        );
        // 3 segments x 2 slots: six values fit, the seventh is denied.
        let mut accepted = 0;
        for i in 0..10_u64 {
            match q.try_enqueue(i) {
                Ok(()) => accepted += 1,
                Err(v) => {
                    assert_eq!(v, i, "the rejected value comes back intact");
                    break;
                }
            }
        }
        assert_eq!(accepted, 6);
        assert!(budget.reserved() <= 3);
        assert!(budget.denials() > 0);
        // Draining recycles segments through the pool (still reserved),
        // so subsequent enqueues reuse them without fresh reservations.
        for i in 0..6 {
            assert_eq!(q.dequeue(), Some(i));
        }
        for i in 100..104_u64 {
            q.try_enqueue(i).expect("recovered after dequeues");
        }
        for i in 100..104 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(budget.reserved() <= 3, "bound holds across the cycle");
    }

    #[test]
    fn try_enqueue_batch_reports_exact_retriable_prefix() {
        let budget = tiny_budget(3);
        let q: SegQueue<u64> = SegQueue::with_config_and_budget(
            SegConfig {
                seg_size: 2,
                ..SegConfig::DEFAULT
            },
            Arc::clone(&budget),
        );
        let values: Vec<u64> = (0..20).collect();
        let err = q.try_enqueue_batch(&values).expect_err("20 > capacity 6");
        assert_eq!(err.pushed, 6, "budget of 3 two-slot segments");
        // The suffix is retriable verbatim after draining.
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 64), 6);
        assert_eq!(out, (0..6).collect::<Vec<u64>>());
        match q.try_enqueue_batch(&values[err.pushed..]) {
            Ok(()) => {}
            Err(e) => {
                // A second round of backpressure is fine; what matters is
                // the prefix contract.
                assert!(e.pushed > 0);
            }
        }
        let mut rest = Vec::new();
        q.dequeue_batch(&mut rest, 64);
        assert_eq!(rest[0], 6, "suffix continues exactly where it stopped");
        for w in rest.windows(2) {
            assert_eq!(w[1], w[0] + 1, "no loss, no duplication");
        }
    }

    #[test]
    fn exhaustion_shrinks_a_sibling_queues_pool() {
        let budget = tiny_budget(4);
        let cfg = SegConfig {
            seg_size: 2,
            ..SegConfig::DEFAULT
        };
        let idle: SegQueue<u64> = SegQueue::with_config_and_budget(cfg, Arc::clone(&budget));
        let busy: SegQueue<u64> = SegQueue::with_config_and_budget(cfg, Arc::clone(&budget));
        // Make `idle` pool a drained segment: grow to 2 segments, drain.
        for i in 0..4 {
            idle.try_enqueue(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(idle.dequeue(), Some(i));
        }
        assert_eq!(budget.reserved(), 3, "2 queue floors + 1 pooled");
        // `busy` needs two fresh segments; the second only fits because
        // reclaim pressure frees `idle`'s pooled segment.
        for i in 0..5 {
            busy.try_enqueue(i).unwrap_or_else(|v| {
                panic!("value {v} denied despite reclaimable pool");
            });
        }
        assert!(budget.reserved() <= 4);
        let denied: u64 = budget.denials();
        assert!(
            denied >= 1,
            "the reclaim ladder begins with a denied fast reserve"
        );
    }

    #[test]
    fn dropping_a_budgeted_queue_returns_to_the_floor() {
        let budget = tiny_budget(8);
        {
            let q: SegQueue<String> = SegQueue::with_config_and_budget(
                SegConfig {
                    seg_size: 2,
                    ..SegConfig::DEFAULT
                },
                Arc::clone(&budget),
            );
            for i in 0..10 {
                q.try_enqueue(format!("v{i}")).unwrap();
            }
            assert!(budget.reserved() > 1);
        }
        // Queue dropped: chain and pool freed. Hazard-retired segments
        // (none here: single-threaded) would drain via eager_scan.
        GLOBAL_DOMAIN.eager_scan();
        assert_eq!(
            budget.reserved(),
            0,
            "a dropped queue releases every unit, including its floor"
        );
    }

    #[test]
    fn mpmc_stress() {
        let q = Arc::new(SegQueue::with_config(SegConfig {
            seg_size: 8,
            ..SegConfig::DEFAULT
        }));
        let producers = 4;
        let per_producer = 2_000_u64;
        let consumed = Arc::new(StdAtomicUsize::new(0));
        let sum = Arc::new(StdAtomicUsize::new(0));

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.enqueue(p as u64 * per_producer + i);
                }
            }));
        }
        let total = producers as usize * per_producer as usize;
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::SeqCst) < total {
                    match q.dequeue() {
                        Some(v) => {
                            sum.fetch_add(v as usize, Ordering::SeqCst);
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = producers as usize * per_producer as usize;
        assert_eq!(consumed.load(Ordering::SeqCst), n);
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        let q = Arc::new(SegQueue::with_config(SegConfig {
            seg_size: 4,
            ..SegConfig::DEFAULT
        }));
        let mut handles = Vec::new();
        for p in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000 {
                    q.enqueue(p * 1_000_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None::<u64>; 3];
        while let Some(v) = q.dequeue() {
            let p = (v / 1_000_000) as usize;
            if let Some(prev) = last[p] {
                assert!(v > prev, "producer {p} reordered: {prev} then {v}");
            }
            last[p] = Some(v);
        }
    }
}
