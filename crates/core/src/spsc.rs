//! A typed, statically-enforced single-producer/single-consumer ring.
//!
//! Lamport's 1983 queue (the paper's restricted-concurrency baseline,
//! word-valued in `msq_baselines::LamportQueue`) done the Rust way: the
//! SPSC restriction is not a documentation footnote but a property of the
//! types — [`channel`] returns a [`Producer`] and a [`Consumer`], each
//! usable from one thread at a time, with no atomic read-modify-write
//! anywhere (both endpoints are wait-free).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

struct Inner<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read; owned by the consumer, read by the producer.
    head: CachePadded<AtomicU64>,
    /// Next slot to write; owned by the producer, read by the consumer.
    tail: CachePadded<AtomicU64>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn slot(&self, index: u64) -> *mut MaybeUninit<T> {
        self.buffer[(index % self.buffer.len() as u64) as usize].get()
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both endpoints are gone; head/tail are quiescent and exact.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for index in head..tail {
            // Safety: slots in [head, tail) hold initialized values that
            // were never popped.
            unsafe { (*self.slot(index)).assume_init_drop() };
        }
    }
}

/// Creates a wait-free SPSC channel holding at most `capacity` in-flight
/// values.
///
/// # Panics
///
/// Panics if `capacity` is 0.
///
/// # Example
///
/// ```
/// let (mut tx, mut rx) = msq_core::spsc_channel(8);
/// std::thread::spawn(move || {
///     for i in 0..100 {
///         let mut v = i;
///         loop {
///             match tx.push(v) {
///                 Ok(()) => break,
///                 Err(back) => v = back, // ring full; retry
///             }
///         }
///     }
/// });
/// let mut received = 0;
/// while received < 100 {
///     if let Some(v) = rx.pop() {
///         assert_eq!(v, received);
///         received += 1;
///     }
/// }
/// ```
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let inner = Arc::new(Inner {
        buffer: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: CachePadded::new(AtomicU64::new(0)),
        tail: CachePadded::new(AtomicU64::new(0)),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            cached_head: 0,
        },
        Consumer {
            inner,
            cached_tail: 0,
        },
    )
}

/// The sending half of an SPSC channel; see [`channel`].
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Consumer position as last observed; refreshed only when the ring
    /// looks full, halving the producer's shared loads in steady state.
    cached_head: u64,
}

impl<T: Send> Producer<T> {
    /// Appends `value`, or hands it back if the ring is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when `capacity` values are already in flight.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let capacity = self.inner.buffer.len() as u64;
        if tail.wrapping_sub(self.cached_head) >= capacity {
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) >= capacity {
                return Err(value);
            }
        }
        // Safety: slot `tail` is outside [head, tail) — unoccupied, and
        // the consumer cannot read it until the tail store below.
        unsafe { (*self.inner.slot(tail)).write(value) };
        self.inner
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of values currently in flight (may be stale).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) as usize
    }

    /// Whether the ring was observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.buffer.len()
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spsc::Producer(capacity={})", self.inner.buffer.len())
    }
}

/// The receiving half of an SPSC channel; see [`channel`].
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Producer position as last observed; refreshed only when the ring
    /// looks empty.
    cached_tail: u64,
}

impl<T: Send> Consumer<T> {
    /// Removes the oldest value, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // Safety: slot `head` is inside [head, tail) — initialized, and
        // the producer cannot overwrite it until the head store below.
        let value = unsafe { (*self.inner.slot(head)).assume_init_read() };
        self.inner
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of values currently in flight (may be stale).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head) as usize
    }

    /// Whether the ring was observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spsc::Consumer(capacity={})", self.inner.buffer.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_trip() {
        let (mut tx, mut rx) = channel(4);
        assert!(rx.pop().is_none());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_returns_value() {
        let (mut tx, mut rx) = channel(2);
        tx.push(10).unwrap();
        tx.push(20).unwrap();
        assert_eq!(tx.push(30), Err(30));
        assert_eq!(rx.pop(), Some(10));
        tx.push(30).unwrap();
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn wraps_many_times() {
        let (mut tx, mut rx) = channel(3);
        for i in 0..10_000 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(tx.is_empty());
        assert!(rx.is_empty());
    }

    #[test]
    fn drop_releases_in_flight_values() {
        use std::sync::atomic::AtomicU64;
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let (mut tx, mut rx) = channel(8);
            for _ in 0..5 {
                tx.push(Tracked(Arc::clone(&drops))).ok().unwrap();
            }
            drop(rx.pop()); // one consumed and dropped
            assert_eq!(drops.load(Ordering::SeqCst), 1);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5, "ring drop released 4");
    }

    #[test]
    fn cross_thread_streaming_preserves_order() {
        let (mut tx, mut rx) = channel(16);
        let producer = std::thread::spawn(move || {
            for i in 0..30_000_u64 {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let consumer = std::thread::spawn(move || {
            for expected in 0..30_000_u64 {
                loop {
                    if let Some(v) = rx.pop() {
                        assert_eq!(v, expected);
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    #[test]
    fn owned_types_work() {
        let (mut tx, mut rx) = channel(2);
        tx.push(String::from("a")).unwrap();
        assert_eq!(rx.pop().as_deref(), Some("a"));
    }
}
