//! `LockFreeStack<T>`: Treiber's stack, heap-allocated and generic.
//!
//! Treiber's non-blocking stack is load-bearing throughout the paper (it
//! implements the free list both there and in `msq-arena`); this is the
//! idiomatic counterpart for downstream users, with hazard-pointer
//! reclamation instead of the arena's counted indices.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use crossbeam_utils::CachePadded;
use msq_hazard::{PooledHazard, GLOBAL_DOMAIN};

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// An unbounded lock-free LIFO stack for any `Send` payload.
///
/// # Example
///
/// ```
/// use msq_core::LockFreeStack;
///
/// let stack = LockFreeStack::new();
/// stack.push(1);
/// stack.push(2);
/// assert_eq!(stack.pop(), Some(2));
/// assert_eq!(stack.pop(), Some(1));
/// assert_eq!(stack.pop(), None);
/// ```
pub struct LockFreeStack<T> {
    top: CachePadded<AtomicPtr<Node<T>>>,
}

unsafe impl<T: Send> Send for LockFreeStack<T> {}
unsafe impl<T: Send> Sync for LockFreeStack<T> {}

impl<T> LockFreeStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        LockFreeStack {
            top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
        }
    }

    /// Pushes `value`. Lock-free.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        loop {
            let top = self.top.load(Ordering::Acquire);
            // Safety: `node` is ours until the CAS publishes it.
            unsafe { (*node).next = top };
            if self
                .top
                .compare_exchange(top, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Pops the most recently pushed value, or `None` if empty. Lock-free.
    pub fn pop(&self) -> Option<T> {
        let mut hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        loop {
            let top = hazard.protect(&self.top);
            if top.is_null() {
                return None;
            }
            // Safety: protected, so `top` cannot be freed under us; its
            // `next` field is immutable after publication.
            let next = unsafe { (*top).next };
            if self
                .top
                .compare_exchange(top, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: we unlinked `top`; exactly one popper wins the
                // CAS, moves the value out, and retires the node.
                let value = unsafe { ptr::read(&(*top).value) };
                drop(hazard);
                // The value was moved out above, so the deferred destructor
                // must free the allocation WITHOUT dropping a T.
                unsafe fn free_allocation_only<T>(p: *mut u8) {
                    // Safety (caller): p came from Box::into_raw of a
                    // Node<T> whose value was moved out; ManuallyDrop has
                    // the same layout and suppresses the field drop.
                    unsafe { drop(Box::from_raw(p.cast::<std::mem::ManuallyDrop<Node<T>>>())) };
                }
                unsafe { GLOBAL_DOMAIN.retire_with(top.cast::<u8>(), free_allocation_only::<T>) };
                return Some(value);
            }
            std::hint::spin_loop();
        }
    }

    /// Whether the stack was observed empty (snapshot semantics).
    pub fn is_empty(&self) -> bool {
        self.top.load(Ordering::Acquire).is_null()
    }
}

impl<T> Default for LockFreeStack<T> {
    fn default() -> Self {
        LockFreeStack::new()
    }
}

impl<T> Drop for LockFreeStack<T> {
    fn drop(&mut self) {
        let mut node = self.top.load(Ordering::Relaxed);
        while !node.is_null() {
            // Safety: exclusive access during drop; values in remaining
            // nodes were never moved out.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
        }
    }
}

impl<T> std::fmt::Debug for LockFreeStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LockFreeStack(empty={})", self.is_empty())
    }
}

impl<T: Send> FromIterator<T> for LockFreeStack<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let stack = LockFreeStack::new();
        for value in iter {
            stack.push(value);
        }
        stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lifo_order() {
        let s = LockFreeStack::new();
        for i in 0..10 {
            s.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn owned_values_round_trip() {
        let s = LockFreeStack::new();
        s.push(String::from("deep"));
        s.push(String::from("top"));
        assert_eq!(s.pop().as_deref(), Some("top"));
        assert_eq!(s.pop().as_deref(), Some("deep"));
    }

    #[test]
    fn drop_releases_remaining_values() {
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let s = LockFreeStack::new();
            for _ in 0..5 {
                s.push(Tracked(Arc::clone(&drops)));
            }
            drop(s.pop());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn popped_values_drop_exactly_once() {
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let s = Arc::new(LockFreeStack::new());
        let mut handles = Vec::new();
        for _ in 0..2 {
            let s = Arc::clone(&s);
            let drops = Arc::clone(&drops);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    s.push(Tracked(Arc::clone(&drops)));
                }
            }));
        }
        for _ in 0..2 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    while s.pop().is_none() {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.is_empty());
        assert_eq!(
            drops.load(Ordering::SeqCst),
            4_000,
            "each value dropped once"
        );
    }

    #[test]
    fn concurrent_push_pop_conserves() {
        let s = Arc::new(LockFreeStack::new());
        let sum = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000_u64 {
                    s.push(t * 5_000 + i + 1);
                }
            }));
        }
        for _ in 0..3 {
            let s = Arc::clone(&s);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    loop {
                        if let Some(v) = s.pop() {
                            sum.fetch_add(v, Ordering::SeqCst);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), (1..=15_000_u64).sum::<u64>());
    }
}
