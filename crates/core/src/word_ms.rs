//! Figure 1: the non-blocking concurrent queue.

use msq_arena::NodeArena;
use msq_platform::{
    AtomicWord, Backoff, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, Tagged,
    NULL_INDEX,
};

/// The Michael–Scott non-blocking queue over a node arena.
///
/// Structure and operations follow the paper's Figure 1; the `E*`/`D*`
/// comments below are its line numbers. `Head` always points at a dummy
/// node; `Tail` points at the last or second-to-last node. All three
/// shared-pointer kinds (`Head`, `Tail`, per-node `next`) are [`Tagged`]
/// words whose modification counters defeat the ABA problem across node
/// reuse, and the dequeue protocol guarantees `Tail` never points at a
/// reclaimed node, so dequeued nodes go straight back to the free list.
///
/// # Example
///
/// ```
/// use msq_core::WordMsQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = WordMsQueue::with_capacity(&NativePlatform::new(), 128);
/// queue.enqueue(7).unwrap();
/// queue.enqueue(8).unwrap();
/// assert_eq!(queue.dequeue(), Some(7));
/// assert_eq!(queue.dequeue(), Some(8));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct WordMsQueue<P: Platform> {
    head: P::Cell,
    tail: P::Cell,
    arena: NodeArena<P>,
    platform: P,
    backoff: BackoffConfig,
}

impl<P: Platform> WordMsQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously
    /// (one extra node is reserved for the dummy).
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`WordMsQueue::with_capacity`] with explicit backoff parameters
    /// (the ablation benches pass [`BackoffConfig::DISABLED`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`WordMsQueue::with_capacity`], metering the node pool (one unit
    /// per node, `capacity + 1` total for the dummy) against `budget` for
    /// the queue's lifetime.
    ///
    /// The pool is preallocated unconditionally — as in Figure 1 — so the
    /// reservation goes through [`msq_arena::MemBudget::force_reserve`]: a
    /// queue larger than the remaining budget shows up in
    /// [`msq_arena::MemBudget::overruns`] rather than failing construction.
    /// All units are credited back when the queue drops.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<msq_arena::MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        // initialize(Q): allocate a dummy node, the only node in the list;
        // both Head and Tail point to it.
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        let head = platform.alloc_cell(Tagged::new(dummy, 0).raw());
        let tail = platform.alloc_cell(Tagged::new(dummy, 0).raw());
        WordMsQueue {
            head,
            tail,
            arena,
            platform: platform.clone(),
            backoff,
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }
}

impl<P: Platform> ConcurrentWordQueue for WordMsQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        // E1: allocate a node from the free list.
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        // E2–E3: copy the value in; next := NULL.
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        let mut backoff = Backoff::new(self.backoff);
        // E4: keep trying until the enqueue is done.
        loop {
            // E5–E6: read Tail and Tail.ptr->next (each with its counter).
            let tail = Tagged::from_raw(self.tail.load());
            let next = self.arena.next(tail.index());
            // E7: are tail and next consistent?
            if self.tail.load() != tail.raw() {
                continue;
            }
            // E8: was Tail pointing to the last node?
            if next.is_null() {
                // E9: try to link the node at the end of the list.
                if self.arena.cas_next(tail.index(), next, node) {
                    // The paper's critical window: the node is linked (the
                    // enqueue has linearized) but Tail still lags. A process
                    // halted — or killed — here must not block anyone: E12/D9
                    // let every other process swing Tail on its behalf.
                    self.platform.fault_point("msq:enq:window");
                    // E13: enqueue done; try to swing Tail to the node.
                    self.tail.cas(tail.raw(), tail.with_index(node).raw());
                    return Ok(());
                }
                // E9 failed: another process enqueued first.
                backoff.spin(&self.platform);
            } else {
                // E12: Tail was lagging; try to swing it to the next node.
                self.tail
                    .cas(tail.raw(), tail.with_index(next.index()).raw());
            }
        }
    }

    fn dequeue(&self) -> Option<u64> {
        let mut backoff = Backoff::new(self.backoff);
        // D1: keep trying until the dequeue is done.
        loop {
            // D2–D4: read Head, Tail, and Head.ptr->next.
            let head = Tagged::from_raw(self.head.load());
            let tail = Tagged::from_raw(self.tail.load());
            let next = self.arena.next(head.index());
            // D5: are head, tail, and next consistent?
            if self.head.load() != head.raw() {
                continue;
            }
            // D6: is the queue empty, or Tail falling behind?
            if head.index() == tail.index() {
                // D7: is the queue empty?
                if next.is_null() {
                    // D8: yes — nothing to dequeue.
                    return None;
                }
                // D9: Tail is falling behind; try to advance it.
                self.tail
                    .cas(tail.raw(), tail.with_index(next.index()).raw());
            } else {
                // D11: read the value BEFORE the CAS — afterwards another
                // dequeue may free the node and a new enqueue overwrite it.
                let value = self.arena.value(next.index());
                // D12: try to swing Head to the next node.
                if self
                    .head
                    .cas(head.raw(), head.with_index(next.index()).raw())
                {
                    // Dequeue linearized; the old dummy is not yet freed. A
                    // death here leaks one arena node but blocks nobody.
                    self.platform.fault_point("msq:deq:window");
                    // D14: it is now safe to free the old dummy node.
                    self.arena.free(head.index());
                    // D15: dequeue succeeded.
                    return Some(value);
                }
                backoff.spin(&self.platform);
            }
        }
    }

    fn name(&self) -> &'static str {
        "ms-nonblocking"
    }

    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: Platform> std::fmt::Debug for WordMsQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WordMsQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> WordMsQueue<NativePlatform> {
        WordMsQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_order_single_thread() {
        let q = queue(16);
        for i in 0..10 {
            q.enqueue(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_queue_dequeues_none() {
        let q = queue(4);
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None, "repeatable");
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q = queue(4);
        q.enqueue(1).unwrap();
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), None);
        q.enqueue(2).unwrap();
        q.enqueue(3).unwrap();
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4).unwrap();
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn full_queue_rejects_and_recovers() {
        let q = queue(2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(QueueFull(3)));
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3).unwrap();
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
    }

    #[test]
    fn nodes_are_recycled_through_many_generations() {
        // 10k ops through a 2-node pool: counters must keep reuse safe.
        let q = queue(2);
        for i in 0..10_000 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_stress_conserves_values() {
        let q = Arc::new(queue(256));
        let produced: u64 = 4 * 5_000;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let taken = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000_u64 {
                    let v = t * 5_000 + i + 1;
                    loop {
                        if q.enqueue(v).is_ok() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                while taken.load(std::sync::atomic::Ordering::SeqCst) < produced {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        taken.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expected: u64 = (1..=produced).sum();
        assert_eq!(sum.load(std::sync::atomic::Ordering::SeqCst), expected);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // All 3 x 2000 items live in the queue at once before draining.
        let q = Arc::new(queue(6_000));
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000_u64 {
                    q.enqueue((t << 32) | i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None::<u64>; 3];
        while let Some(v) = q.dequeue() {
            let producer = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[producer] {
                assert!(seq > prev, "producer {producer} out of order");
            }
            last[producer] = Some(seq);
        }
        assert_eq!(last, [Some(1999), Some(1999), Some(1999)]);
    }

    #[test]
    fn works_under_simulation_with_preemption() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            quantum_ns: 100_000,
            ..SimConfig::default()
        });
        let q = Arc::new(WordMsQueue::with_capacity(&sim.platform(), 64));
        let report = sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..100 {
                    let v = (info.pid as u64) << 32 | i;
                    q.enqueue(v).unwrap();
                    q.dequeue().expect("an item is always available");
                }
            }
        });
        assert_eq!(q.dequeue(), None);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "ms-nonblocking");
        assert!(q.is_nonblocking());
        assert_eq!(q.capacity(), 1);
    }
}
