//! Figure 2: the two-lock concurrent queue.

use std::sync::Arc;

use msq_arena::{MemBudget, NodeArena};
use msq_platform::{
    AtomicWord, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, NULL_INDEX,
};
use msq_sync::{RawLock, TtasLock};

/// The Michael–Scott two-lock queue over a node arena.
///
/// Separate head and tail locks (test-and-test_and_set with bounded
/// exponential backoff, as in the paper's experiments) let one enqueue and
/// one dequeue proceed concurrently. The dummy node at the head means
/// enqueuers never touch `Head` and dequeuers never touch `Tail`, so the
/// locks are never taken in opposite orders and deadlock is impossible.
///
/// `Head`/`Tail` here are plain (untagged) words: they are only read and
/// written under their respective locks, so no ABA defence is needed.
///
/// # Example
///
/// ```
/// use msq_core::WordTwoLockQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = WordTwoLockQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(1).unwrap();
/// assert_eq!(queue.dequeue(), Some(1));
/// ```
pub struct WordTwoLockQueue<P: Platform> {
    head: P::Cell,
    tail: P::Cell,
    h_lock: TtasLock<P>,
    t_lock: TtasLock<P>,
    arena: NodeArena<P>,
    platform: P,
}

impl<P: Platform> WordTwoLockQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`WordTwoLockQueue::with_capacity`] with explicit lock backoff.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`WordTwoLockQueue::with_capacity`], metering the node pool (one
    /// unit per node, `capacity + 1` total for the dummy) against `budget`
    /// for the queue's lifetime.
    ///
    /// The pool is preallocated unconditionally — as in Figure 2 — so the
    /// reservation goes through [`MemBudget::force_reserve`]: a queue larger
    /// than the remaining budget shows up in [`MemBudget::overruns`] rather
    /// than failing construction. All units are credited back when the queue
    /// drops.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: Arc<MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        // initialize(Q): one dummy node; Head and Tail point to it; locks free.
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        WordTwoLockQueue {
            head: platform.alloc_cell(u64::from(dummy)),
            tail: platform.alloc_cell(u64::from(dummy)),
            h_lock: TtasLock::with_backoff(platform, backoff),
            t_lock: TtasLock::with_backoff(platform, backoff),
            arena,
            platform: platform.clone(),
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }
}

impl<P: Platform> ConcurrentWordQueue for WordTwoLockQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        // Allocate and fill the node before taking the lock, as in Figure 2.
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        // Acquire T_lock in order to access Tail.
        self.t_lock.lock(&self.platform);
        // Holding T_lock: a process halted or killed here blocks every
        // other enqueuer forever — the blocking behaviour Figures 4–5
        // punish, and what the fault suite asserts via the watchdog.
        self.platform.fault_point("two-lock:enq:locked");
        let tail = self.tail.load() as u32;
        // Link the node at the end of the list, then swing Tail to it.
        self.arena.set_next(tail, node);
        self.tail.store(u64::from(node));
        self.t_lock.unlock(&self.platform);
        Ok(())
    }

    fn dequeue(&self) -> Option<u64> {
        // Acquire H_lock in order to access Head.
        self.h_lock.lock(&self.platform);
        // Holding H_lock: death here blocks every other dequeuer.
        self.platform.fault_point("two-lock:deq:locked");
        let node = self.head.load() as u32;
        let new_head = self.arena.next(node);
        if new_head.is_null() {
            // Queue is empty; release H_lock before returning.
            self.h_lock.unlock(&self.platform);
            return None;
        }
        // Queue not empty: read the value before moving Head.
        let value = self.arena.value(new_head.index());
        self.head.store(u64::from(new_head.index()));
        self.h_lock.unlock(&self.platform);
        // Free the old dummy outside the critical section (Figure 2 frees
        // after unlock); safe because Head no longer reaches it and
        // enqueuers only dereference Tail, which never lags behind Head.
        self.arena.free(node);
        Some(value)
    }

    fn name(&self) -> &'static str {
        "ms-two-lock"
    }

    fn is_nonblocking(&self) -> bool {
        false
    }
}

impl<P: Platform> std::fmt::Debug for WordTwoLockQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WordTwoLockQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> WordTwoLockQueue<NativePlatform> {
        WordTwoLockQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_order_single_thread() {
        let q = queue(16);
        for i in 0..10 {
            q.enqueue(i * 3).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i * 3));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn full_queue_rejects_and_recovers() {
        let q = queue(1);
        q.enqueue(1).unwrap();
        assert_eq!(q.enqueue(2), Err(QueueFull(2)));
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(2).unwrap();
        assert_eq!(q.dequeue(), Some(2));
    }

    #[test]
    fn node_reuse_across_generations() {
        let q = queue(2);
        for i in 0..5_000 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn concurrent_enqueue_dequeue_conserve_values() {
        let q = Arc::new(queue(512));
        let mut handles = Vec::new();
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..4_000_u64 {
                    let v = t * 4_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let stop = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let total = Arc::clone(&total);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || loop {
                match q.dequeue() {
                    Some(v) => {
                        total.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                    }
                    None if stop.load(std::sync::atomic::Ordering::SeqCst) == 1 => break,
                    None => std::thread::yield_now(),
                }
            }));
        }
        for h in handles.drain(..3) {
            h.join().unwrap();
        }
        // Producers done; let consumers drain then stop. The probe itself
        // may win values off the queue — count them like any consumer.
        loop {
            std::thread::sleep(std::time::Duration::from_millis(10));
            match q.dequeue() {
                Some(v) => {
                    total.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                }
                None => break,
            }
        }
        stop.store(1, std::sync::atomic::Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let expected: u64 = (1..=12_000_u64).sum();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), expected);
    }

    #[test]
    fn works_under_simulation() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 4,
            processes_per_processor: 2,
            quantum_ns: 200_000,
            ..SimConfig::default()
        });
        let q = Arc::new(WordTwoLockQueue::with_capacity(&sim.platform(), 64));
        sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..50 {
                    q.enqueue((info.pid as u64) << 32 | i).unwrap();
                    q.dequeue().expect("an item is always available");
                }
            }
        });
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "ms-two-lock");
        assert!(!q.is_nonblocking());
    }
}
