//! Sharded relaxed-FIFO front-ends over the segment-batched queues.
//!
//! A single queue — however well batched — still funnels every operation
//! through one `Head` and one `Tail` word, so at high processor counts the
//! coherence traffic on those two cache lines dominates. The structures
//! here trade *global* FIFO order for scalability: `N` independent
//! sub-queues ("shards") sit behind a thread-affine dispatch, so disjoint
//! threads usually touch disjoint hot words.
//!
//! # Ordering contract (weaker than the paper's queues!)
//!
//! * **Per-shard FIFO**: each shard is a linearizable FIFO queue; values
//!   routed through the same shard come out in insertion order.
//! * **Per-producer FIFO** follows for uncontended producers: a thread's
//!   home shard is stable ([`Platform::affinity_hint`]), so its values
//!   stay ordered unless a bounded shard overflows and spills.
//! * **No cross-shard order**: values from different shards interleave
//!   arbitrarily.
//! * **Visible emptiness**: `dequeue` returns `None` only after a full
//!   sweep observed *every* shard empty — each at some instant during the
//!   sweep, not all simultaneously. This is weaker than a linearizable
//!   empty observation, and is the price of sharding (see DESIGN.md §9).
//!
//! Dequeues start at the caller's home shard and sweep round-robin, so a
//! balanced workload mostly dequeues locally and the sweep only runs near
//! emptiness.

use std::sync::Arc;

use msq_arena::MemBudget;
use msq_platform::{BatchFull, ConcurrentWordQueue, NativePlatform, Platform, QueueFull};

use crate::seg_queue::{SegConfig, SegQueue};
use crate::word_seg::WordSegQueue;

/// Default shard count for the word-level variant (what the harness's
/// `sharded` contender uses).
pub const DEFAULT_SHARDS: usize = 4;

fn native_affinity_token() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT_TOKEN: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TOKEN: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    TOKEN.with(|token| {
        if token.get() == usize::MAX {
            token.set(NEXT_TOKEN.fetch_add(1, Ordering::Relaxed));
        }
        token.get()
    })
}

/// A sharded, relaxed-FIFO, unbounded MPMC queue of heap values: `N`
/// independent [`SegQueue`]s behind thread-affine dispatch.
///
/// # Example
///
/// ```
/// use msq_core::ShardedQueue;
///
/// let queue: ShardedQueue<u32> = ShardedQueue::with_shards(4);
/// queue.enqueue(1);
/// queue.enqueue_batch(&[2, 3, 4]);
/// let mut out = Vec::new();
/// queue.dequeue_batch(&mut out, 16);
/// let mut sorted = out.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, vec![1, 2, 3, 4]); // per-shard order only
/// ```
pub struct ShardedQueue<T> {
    shards: Box<[SegQueue<T>]>,
}

impl<T> ShardedQueue<T> {
    /// Creates a queue with [`DEFAULT_SHARDS`] shards and default segment
    /// tuning.
    pub fn new() -> Self {
        ShardedQueue::with_shards(DEFAULT_SHARDS)
    }

    /// Creates a queue with `shards` sub-queues.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        ShardedQueue::with_config(shards, SegConfig::DEFAULT)
    }

    /// Creates a queue with `shards` sub-queues, each tuned by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_config(shards: usize, config: SegConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedQueue {
            shards: (0..shards).map(|_| SegQueue::with_config(config)).collect(),
        }
    }

    /// Creates a queue whose shards all reserve segments against one
    /// shared `budget` (and register pool-shrink reclaimers with it), so
    /// the front-end's aggregate residency — not just each shard's — is
    /// bounded. Note each shard keeps a one-segment floor.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_config_and_budget(
        shards: usize,
        config: SegConfig,
        budget: Arc<MemBudget<NativePlatform>>,
    ) -> Self
    where
        T: Send + 'static,
    {
        assert!(shards > 0, "need at least one shard");
        ShardedQueue {
            shards: (0..shards)
                .map(|_| SegQueue::with_config_and_budget(config, Arc::clone(&budget)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The calling thread's home shard index (stable per thread).
    pub fn home_shard(&self) -> usize {
        native_affinity_token() % self.shards.len()
    }

    /// Adds `value` at the tail of the caller's home shard.
    pub fn enqueue(&self, value: T) {
        self.shards[self.home_shard()].enqueue(value);
    }

    /// Adds the whole batch, in order, to the caller's home shard (one
    /// splice CAS per chain — see [`SegQueue::enqueue_batch`]).
    pub fn enqueue_batch(&self, values: &[T])
    where
        T: Clone,
    {
        self.shards[self.home_shard()].enqueue_batch(values);
    }

    /// Removes one value, preferring the caller's home shard and sweeping
    /// the others round-robin. Returns `None` only after a full sweep
    /// observed every shard empty (visible emptiness; see module docs).
    pub fn dequeue(&self) -> Option<T> {
        let n = self.shards.len();
        let home = self.home_shard();
        for i in 0..n {
            if let Some(value) = self.shards[(home + i) % n].dequeue() {
                return Some(value);
            }
        }
        None
    }

    /// Removes up to `max` values, sweeping shards from the caller's home
    /// shard; returns how many were taken. Values pulled from one shard
    /// are contiguous and in that shard's order.
    pub fn dequeue_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.shards.len();
        let home = self.home_shard();
        let mut taken = 0;
        for i in 0..n {
            if taken >= max {
                break;
            }
            taken += self.shards[(home + i) % n].dequeue_batch(out, max - taken);
        }
        taken
    }

    /// Whether every shard appeared empty during one sweep.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(SegQueue::is_empty)
    }
}

impl<T> Default for ShardedQueue<T> {
    fn default() -> Self {
        ShardedQueue::new()
    }
}

impl<T> std::fmt::Debug for ShardedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedQueue(shards={})", self.shards.len())
    }
}

/// The word-level sharded queue: `N` independent [`WordSegQueue`]s behind
/// [`Platform::affinity_hint`] dispatch, so the same structure runs on
/// native atomics and deterministically inside the `msq-sim` simulator
/// (where the hint is the simulated process id).
///
/// Capacity is partitioned across shards. An enqueue that finds its home
/// shard full spills to the next shards before giving up, so
/// [`QueueFull`] means the whole structure was observed full — but a
/// spill breaks per-producer ordering for the spilled value (per-shard
/// FIFO still holds; see module docs).
pub struct WordShardedQueue<P: Platform> {
    shards: Box<[WordSegQueue<P>]>,
    platform: P,
}

impl<P: Platform> WordShardedQueue<P> {
    /// Creates a queue of [`DEFAULT_SHARDS`] shards able to hold at least
    /// `capacity` values in total.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_shards(platform, capacity, DEFAULT_SHARDS)
    }

    /// Creates a queue of `shards` sub-queues able to hold at least
    /// `capacity` values in total (each shard gets an equal split,
    /// rounded up).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or the per-shard capacity is 0.
    pub fn with_shards(platform: &P, capacity: u32, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let per_shard = capacity.div_ceil(shards as u32).max(1);
        WordShardedQueue {
            shards: (0..shards)
                .map(|_| WordSegQueue::with_capacity(platform, per_shard))
                .collect(),
            platform: platform.clone(),
        }
    }

    /// As [`WordShardedQueue::with_shards`], but every shard's arena
    /// reserves segments against the one shared `budget`, bounding the
    /// front-end's aggregate residency. An exhausted budget surfaces as
    /// [`QueueFull`] / [`BatchFull`] after the usual spill sweep. Each
    /// shard's dummy segment takes one unit for the queue's lifetime, so
    /// the budget must be at least `shards`.
    pub fn with_shards_and_budget(
        platform: &P,
        capacity: u32,
        shards: usize,
        budget: Arc<MemBudget<P>>,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let per_shard = capacity.div_ceil(shards as u32).max(1);
        WordShardedQueue {
            shards: (0..shards)
                .map(|_| {
                    WordSegQueue::with_capacity_and_budget(platform, per_shard, Arc::clone(&budget))
                })
                .collect(),
            platform: platform.clone(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The calling context's home shard index (stable per thread /
    /// simulated process).
    pub fn home_shard(&self) -> usize {
        self.platform.affinity_hint() % self.shards.len()
    }
}

impl<P: Platform> ConcurrentWordQueue for WordShardedQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let n = self.shards.len();
        let home = self.home_shard();
        for i in 0..n {
            match self.shards[(home + i) % n].enqueue(value) {
                Ok(()) => return Ok(()),
                Err(QueueFull(_)) => continue,
            }
        }
        Err(QueueFull(value))
    }

    fn dequeue(&self) -> Option<u64> {
        let n = self.shards.len();
        let home = self.home_shard();
        for i in 0..n {
            if let Some(value) = self.shards[(home + i) % n].dequeue() {
                return Some(value);
            }
        }
        // Visible emptiness: every shard observed empty at some instant
        // during the sweep (not necessarily simultaneously).
        None
    }

    fn enqueue_batch(&self, values: &[u64]) -> Result<(), BatchFull> {
        let n = self.shards.len();
        let home = self.home_shard();
        let mut pushed = 0;
        for i in 0..n {
            if pushed == values.len() {
                break;
            }
            match self.shards[(home + i) % n].enqueue_batch(&values[pushed..]) {
                Ok(()) => return Ok(()),
                Err(BatchFull { pushed: p }) => pushed += p,
            }
        }
        if pushed == values.len() {
            Ok(())
        } else {
            Err(BatchFull { pushed })
        }
    }

    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        let n = self.shards.len();
        let home = self.home_shard();
        let mut taken = 0;
        for i in 0..n {
            if taken >= max {
                break;
            }
            taken += self.shards[(home + i) % n].dequeue_batch(out, max - taken);
        }
        taken
    }

    fn name(&self) -> &'static str {
        "sharded"
    }

    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: Platform> std::fmt::Debug for WordShardedQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WordShardedQueue(shards={})", self.shards.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    #[test]
    fn heap_variant_round_trips_all_values() {
        let q: ShardedQueue<u64> = ShardedQueue::with_shards(4);
        for i in 0..100 {
            q.enqueue(i);
        }
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 200), 100);
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn single_thread_sees_its_own_fifo_order() {
        // One thread has one home shard, so its values never interleave.
        let q: ShardedQueue<u64> = ShardedQueue::with_shards(4);
        q.enqueue_batch(&(0..50).collect::<Vec<_>>());
        for i in 0..50 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn dequeue_sweeps_remote_shards() {
        // Values parked on a *different* thread's home shard are still
        // reachable from this thread via the sweep.
        let q: Arc<ShardedQueue<u64>> = Arc::new(ShardedQueue::with_shards(4));
        {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.enqueue_batch(&[1, 2, 3]))
                .join()
                .unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 10), 3);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn word_variant_spills_to_neighbor_shards_before_refusing() {
        let platform = NativePlatform::new();
        // 2 shards x ~8 slots each.
        let q = WordShardedQueue::with_shards(&platform, 16, 2);
        let mut accepted = 0u64;
        loop {
            match q.enqueue(accepted) {
                Ok(()) => accepted += 1,
                Err(QueueFull(v)) => {
                    assert_eq!(v, accepted);
                    break;
                }
            }
        }
        // Both shards had to fill before refusal: well past one shard's
        // nominal 8-slot split.
        assert!(accepted >= 16, "only {accepted} accepted before QueueFull");
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, usize::MAX), accepted as usize);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn word_variant_batch_spill_reports_total_pushed() {
        let platform = NativePlatform::new();
        let q = WordShardedQueue::with_shards(&platform, 16, 2);
        let values: Vec<u64> = (0..10_000).collect();
        let err = q.enqueue_batch(&values).unwrap_err();
        assert!(err.pushed >= 16);
        assert!(err.pushed < values.len());
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, usize::MAX), err.pushed);
        // Conservation: the pushed prefix, redistributed across shards.
        out.sort_unstable();
        assert_eq!(out, values[..err.pushed]);
    }

    #[test]
    fn word_variant_mpmc_stress_conserves_values() {
        let platform = NativePlatform::new();
        let q = Arc::new(WordShardedQueue::with_shards(&platform, 1024, 4));
        let total = 4 * 2_000_u64;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let taken = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let v = t * 2_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                while taken.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        taken.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn word_variant_is_deterministic_under_simulation() {
        use msq_platform::ConcurrentWordQueue as _;
        use msq_sim::{SimConfig, Simulation};
        let run = || {
            let sim = Simulation::new(SimConfig {
                processors: 4,
                ..SimConfig::default()
            });
            let q = Arc::new(WordShardedQueue::with_capacity(&sim.platform(), 256));
            let report = sim.run({
                let q = Arc::clone(&q);
                move |info| {
                    for i in 0..50u64 {
                        let v = (info.pid as u64) << 32 | i;
                        while q.enqueue(v).is_err() {}
                        // A sweep may transiently miss a value in a
                        // nonempty queue (visible emptiness); retry.
                        while q.dequeue().is_none() {}
                    }
                }
            });
            assert_eq!(q.dequeue(), None);
            report.elapsed_ns
        };
        assert_eq!(run(), run(), "sharded dispatch must be deterministic");
    }

    #[test]
    fn reports_identity() {
        let q = WordShardedQueue::with_capacity(&NativePlatform::new(), 64);
        assert_eq!(q.name(), "sharded");
        assert!(q.is_nonblocking());
        assert_eq!(q.shards(), DEFAULT_SHARDS);
        assert!(q.home_shard() < DEFAULT_SHARDS);
    }
}
