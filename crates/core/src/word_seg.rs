//! The segment-batched non-blocking queue over the `Platform` abstraction.
//!
//! This is the word-level twin of [`SegQueue`](crate::SegQueue): the
//! Michael–Scott list where each node is an array segment from a
//! [`SegArena`], so the paper's per-operation link/unlink CASes amortize
//! over `seg_size` operations. Running over `Platform` means the same code
//! executes on hardware atomics and inside the `msq-sim` coherence
//! simulator, where its cache-miss advantage over the per-node queue can
//! be measured directly.
//!
//! Where the heap variant leans on hazard pointers, this one leans on the
//! paper's tagging discipline, extended from pointers to *every* mutable
//! segment word: the arena stamps states, claim counters, and dequeue
//! indices with the segment's generation (see [`SegArena`]), so any
//! action by a process holding a recycled segment fails its CAS. The one
//! asymmetry is the value word, which cannot carry a tag: an enqueuer
//! therefore claims its slot with a generation-checked `EMPTY → WRITING`
//! CAS *before* storing the value, and publishes with `WRITING → FULL`
//! afterwards. Dequeuers never poison a `WRITING` slot, so the store is
//! always generation-correct; the cost is a two-store publication window
//! in which a preempted enqueuer delays dequeuers at that slot (every
//! other path keeps the paper's lock-freedom).

use std::sync::Arc;

use msq_arena::{MemBudget, SegArena};
use msq_platform::{
    AtomicWord, Backoff, BackoffConfig, BatchFull, ConcurrentWordQueue, Platform, QueueFull,
    Tagged, NULL_INDEX,
};

/// Slot states (index half of a `{state, gen}` word). `EMPTY` must be 0:
/// [`SegArena::free`] resets state words to `{0, gen}`.
const EMPTY: u32 = 0;
const WRITING: u32 = 1;
const FULL: u32 = 2;
const TAKEN: u32 = 3;

/// How many times a dequeuer re-reads a claimed-but-unpublished slot
/// before poisoning it. Generous, because a poisoned claim burns a slot
/// of capacity until its segment is recycled.
const POISON_PATIENCE: usize = 256;

/// Extra segments beyond `ceil(capacity / seg_size)`: one for the
/// partially drained head, one for the partially filled tail, plus margin
/// for slots burnt by poisoning/stale claims. With this headroom,
/// `enqueue` only reports [`QueueFull`] under genuine (or pathological
/// stall-induced) exhaustion; callers that retry always recover once a
/// drained segment is recycled.
const SEG_HEADROOM: u32 = 4;

/// Frees an unlinked, fully-consumed segment when dropped. The reclaim
/// ladder holds one of these across its `seg:reclaim` fault point so a
/// kill there recycles the segment during the unwind — the killed
/// process's memory operations take the post-mortem direct path, so the
/// destructor cannot deadlock on the scheduler.
struct FreeSegOnDrop<'a, P: Platform> {
    arena: &'a SegArena<P>,
    seg: u32,
}

impl<P: Platform> Drop for FreeSegOnDrop<'_, P> {
    fn drop(&mut self) {
        self.arena.free(self.seg);
    }
}

/// The Michael–Scott non-blocking queue with array-segment nodes, over a
/// segment arena.
///
/// # Example
///
/// ```
/// use msq_core::WordSegQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = WordSegQueue::with_capacity(&NativePlatform::new(), 128);
/// queue.enqueue(7).unwrap();
/// queue.enqueue(8).unwrap();
/// assert_eq!(queue.dequeue(), Some(7));
/// assert_eq!(queue.dequeue(), Some(8));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct WordSegQueue<P: Platform> {
    /// `{segment index, modification counter}`.
    head: P::Cell,
    /// `{segment index, modification counter}`.
    tail: P::Cell,
    arena: SegArena<P>,
    platform: P,
    backoff: BackoffConfig,
    capacity: u32,
}

impl<P: Platform> WordSegQueue<P> {
    /// Default slots per segment.
    pub const DEFAULT_SEG_SIZE: u32 = 32;

    /// Creates a queue able to hold at least `capacity` values, with
    /// 32-slot segments and default backoff.
    ///
    /// # Panics
    ///
    /// Panics if the implied segment count does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`WordSegQueue::with_capacity`] with explicit backoff parameters
    /// (the ablation benches pass [`BackoffConfig::DISABLED`]).
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        Self::with_seg_size_and_backoff(platform, capacity, Self::DEFAULT_SEG_SIZE, backoff)
    }

    /// As [`WordSegQueue::with_capacity`], but the queue's segment
    /// residency (live segments, including the dummy) is reserved against
    /// `budget`, shared with any other arenas on the same budget. When
    /// the budget is exhausted the growth paths report
    /// [`QueueFull`] / [`BatchFull`] backpressure exactly as an exhausted
    /// arena does — natively and under the simulator alike, since the
    /// budget's counters are platform cells.
    ///
    /// Note the dummy segment consumes one unit for the queue's whole
    /// lifetime: a budget below the number of sharing queues cannot even
    /// construct them.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: Arc<MemBudget<P>>,
    ) -> Self {
        Self::build(
            platform,
            capacity,
            Self::DEFAULT_SEG_SIZE,
            BackoffConfig::DEFAULT,
            Some(budget),
        )
    }

    /// Full control over segment size, for the segment-size ablation.
    ///
    /// # Panics
    ///
    /// Panics if `seg_size` is 0 or the implied segment count does not fit
    /// a tagged index.
    pub fn with_seg_size_and_backoff(
        platform: &P,
        capacity: u32,
        seg_size: u32,
        backoff: BackoffConfig,
    ) -> Self {
        Self::build(platform, capacity, seg_size, backoff, None)
    }

    fn build(
        platform: &P,
        capacity: u32,
        seg_size: u32,
        backoff: BackoffConfig,
        budget: Option<Arc<MemBudget<P>>>,
    ) -> Self {
        assert!(seg_size > 0, "segments need at least one slot");
        let seg_count = capacity.div_ceil(seg_size).max(1) + SEG_HEADROOM;
        let arena = match budget {
            Some(budget) => SegArena::with_budget(platform, seg_count, seg_size, budget),
            None => SegArena::new(platform, seg_count, seg_size),
        };
        // initialize(Q): one segment plays the role of the dummy node;
        // Head and Tail both point at it.
        let first = arena
            .alloc()
            .expect("fresh arena with at least one budget unit");
        arena.set_next(first, NULL_INDEX);
        let head = platform.alloc_cell(Tagged::new(first, 0).raw());
        let tail = platform.alloc_cell(Tagged::new(first, 0).raw());
        WordSegQueue {
            head,
            tail,
            arena,
            platform: platform.clone(),
            backoff,
            capacity,
        }
    }

    /// The capacity the queue was sized for (a guaranteed lower bound on
    /// what it can hold; the segment rounding adds slack).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Slots per segment.
    pub fn seg_size(&self) -> u32 {
        self.arena.seg_size()
    }

    /// The memory budget the queue's arena reserves against, if any.
    pub fn budget(&self) -> Option<&Arc<MemBudget<P>>> {
        self.arena.budget()
    }
}

impl<P: Platform> ConcurrentWordQueue for WordSegQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        let k = self.arena.seg_size();
        let mut backoff = Backoff::new(self.backoff);
        // A segment we prepared for an append that lost its race, kept
        // (exclusively owned) for the next attempt.
        let mut spare: Option<u32> = None;
        loop {
            // Read Tail, the segment's generation, and re-validate Tail —
            // the word-level analogue of E5–E7: a consistent (tail, gen)
            // snapshot means the segment was live *as the tail* when the
            // generation was read.
            let tail_raw = self.tail.load();
            let tail = Tagged::from_raw(tail_raw);
            let seg = tail.index();
            let gtag = self.arena.gen(seg) as u32;
            if self.tail.load() != tail_raw {
                continue;
            }

            // Fast path: claim a slot with one fetch_add — the only
            // access most enqueues make to the shared counter. The
            // returned previous value carries the generation tag, so no
            // pre-read of the hot word (and its extra coherence miss) is
            // needed. On a full segment the increment is wasted but
            // harmless: growth is one claim per contending process per
            // retry, and overflow into the tag half would need 2^32
            // claims within a single generation.
            let prev = Tagged::from_raw(self.arena.enq_cell(seg).fetch_add(1));
            if prev.tag() != gtag {
                // The segment recycled under us: the increment burnt a
                // claim index of the *new* generation, which its
                // dequeuers will poison past. Harmless; retry.
                continue;
            }
            let t = prev.index();
            if t < k {
                // Claim slot t: EMPTY -> WRITING, generation-checked.
                // Only after this CAS is a value store safe — the slot
                // provably belongs to generation `gtag` and cannot be
                // poisoned or recycled until we publish.
                let state = self.arena.state_cell(seg, t);
                if state.cas(
                    Tagged::new(EMPTY, gtag).raw(),
                    Tagged::new(WRITING, gtag).raw(),
                ) {
                    self.arena.value_cell(seg, t).store(value);
                    state.store(Tagged::new(FULL, gtag).raw());
                    if let Some(s) = spare.take() {
                        self.arena.free(s);
                    }
                    return Ok(());
                }
                // Poisoned by an impatient dequeuer (or the segment
                // recycled): the claim is a non-event; re-claim.
                backoff.spin(&self.platform);
                continue;
            }
            // t >= k: segment full; fall through to append.

            // Slow path: the tail segment is full — the paper's E8–E13,
            // once per seg_size enqueues.
            let next = self.arena.next(seg);
            if !next.is_null() {
                // E12: Tail is lagging; help swing it and retry.
                self.tail.cas(tail_raw, tail.with_index(next.index()).raw());
                continue;
            }
            // Prepare a fresh segment with our value pre-installed in slot
            // 0, so the append CAS is also this enqueue's linearization
            // point. We own `fresh` exclusively until that CAS.
            let Some(fresh) = spare.take().or_else(|| self.arena.alloc()) else {
                return Err(QueueFull(value));
            };
            let fgtag = self.arena.gen(fresh) as u32;
            self.arena.set_next(fresh, NULL_INDEX);
            self.arena.value_cell(fresh, 0).store(value);
            self.arena
                .state_cell(fresh, 0)
                .store(Tagged::new(FULL, fgtag).raw());
            self.arena
                .enq_cell(fresh)
                .store(Tagged::new(1, fgtag).raw());
            // E9: link the segment at the end of the list.
            if self.arena.cas_next(seg, next, fresh) {
                // Linked but Tail not yet swung — the E12 helping rule
                // lets any process finish it, so a fault here blocks
                // nobody (the per-slot WRITING window is the exception,
                // covered by the poisoning protocol).
                self.platform.fault_point("seg:enq:window");
                // E13: enqueue done; try to swing Tail to the segment.
                self.tail.cas(tail_raw, tail.with_index(fresh).raw());
                return Ok(());
            }
            // E9 failed: another process appended first. Unwind our slot-0
            // installation and keep the segment for the next attempt.
            self.arena
                .state_cell(fresh, 0)
                .store(Tagged::new(EMPTY, fgtag).raw());
            self.arena
                .enq_cell(fresh)
                .store(Tagged::new(0, fgtag).raw());
            spare = Some(fresh);
            backoff.spin(&self.platform);
        }
    }

    fn dequeue(&self) -> Option<u64> {
        let k = self.arena.seg_size();
        let mut backoff = Backoff::new(self.backoff);
        loop {
            // D2–D5 analogue: consistent (head, gen) snapshot. Unlike the
            // heap variant, `head`'s modification counter rules out ABA
            // outright: an unchanged raw word means the head never moved.
            let head_raw = self.head.load();
            let head = Tagged::from_raw(head_raw);
            let seg = head.index();
            let gtag = self.arena.gen(seg) as u32;
            if self.head.load() != head_raw {
                continue;
            }

            let deq = Tagged::from_raw(self.arena.deq_cell(seg).load());
            if deq.tag() != gtag {
                continue;
            }
            let d = deq.index();

            if d >= k {
                // Segment fully consumed: unlink it (the paper's D10–D14,
                // once per seg_size dequeues).
                let next = self.arena.next(seg);
                if next.is_null() {
                    // Empty — provided the head has not moved, in which
                    // case the null `next` was read while `seg` was the
                    // (fully drained) head segment: the linearization
                    // point of this empty dequeue.
                    if self.head.load() == head_raw {
                        return None;
                    }
                    continue;
                }
                // Head must never pass Tail: help Tail off this segment
                // first (the D9 helping rule).
                let tail_raw = self.tail.load();
                let tail = Tagged::from_raw(tail_raw);
                if tail.index() == seg {
                    self.tail.cas(tail_raw, tail.with_index(next.index()).raw());
                }
                if self.head.cas(head_raw, head.with_index(next.index()).raw()) {
                    // Head is off the segment but it is not yet recycled.
                    // Recycling happens on drop so that a process killed
                    // at the fault point below still frees the segment
                    // (and credits its budget unit) during the kill
                    // unwind: death in the reclaim ladder blocks nobody
                    // and strands nothing.
                    let reclaim = FreeSegOnDrop {
                        arena: &self.arena,
                        seg,
                    };
                    self.platform.fault_point("seg:reclaim");
                    // D14 analogue: safe to recycle — Tail was helped off,
                    // and every stale process fails its generation check.
                    drop(reclaim);
                }
                continue;
            }

            let state_cell = self.arena.state_cell(seg, d);
            let state = Tagged::from_raw(state_cell.load());
            if state.tag() != gtag {
                continue;
            }
            match state.index() {
                FULL => {
                    // D11: read the value BEFORE the index CAS — after it,
                    // the segment may drain, recycle, and be overwritten.
                    // The generation tag on the CAS detects exactly that.
                    let value = self.arena.value_cell(seg, d).load();
                    if self
                        .arena
                        .deq_cell(seg)
                        .cas(deq.raw(), Tagged::new(d + 1, gtag).raw())
                    {
                        return Some(value);
                    }
                    backoff.spin(&self.platform);
                }
                TAKEN => {
                    // Poisoned slot; step over it.
                    self.arena
                        .deq_cell(seg)
                        .cas(deq.raw(), Tagged::new(d + 1, gtag).raw());
                }
                WRITING => {
                    // Publication in progress: a two-store window. Never
                    // poison it — the value store may already have landed.
                    backoff.spin(&self.platform);
                }
                _ => {
                    // EMPTY. A bulk splice publishes values without per-slot
                    // state transitions: slots below the segment's prefill
                    // count hold live values despite their EMPTY state, and
                    // must never be poisoned.
                    let pre = Tagged::from_raw(self.arena.prefill_cell(seg).load());
                    if pre.tag() != gtag {
                        continue;
                    }
                    if d < pre.index() {
                        // D11 again: read the value before the index CAS.
                        let value = self.arena.value_cell(seg, d).load();
                        if self
                            .arena
                            .deq_cell(seg)
                            .cas(deq.raw(), Tagged::new(d + 1, gtag).raw())
                        {
                            return Some(value);
                        }
                        backoff.spin(&self.platform);
                        continue;
                    }
                    let enq = Tagged::from_raw(self.arena.enq_cell(seg).load());
                    if enq.tag() != gtag {
                        continue;
                    }
                    if enq.index() <= d {
                        // No claim covers slot d, so no append ever
                        // happened either (appending requires a full
                        // counter): empty if the head is unmoved.
                        if self.arena.next(seg).is_null() && self.head.load() == head_raw {
                            return None;
                        }
                        continue;
                    }
                    // A claimant owns slot d but has not started writing.
                    // Wait, then poison, so one stalled enqueuer cannot
                    // block the queue (it re-claims when it resumes).
                    let mut moved = false;
                    for _ in 0..POISON_PATIENCE {
                        if state_cell.load() != Tagged::new(EMPTY, gtag).raw() {
                            moved = true;
                            break;
                        }
                        self.platform.cpu_relax();
                    }
                    if !moved {
                        state_cell.cas(
                            Tagged::new(EMPTY, gtag).raw(),
                            Tagged::new(TAKEN, gtag).raw(),
                        );
                    }
                }
            }
        }
    }

    /// Bulk enqueue: fill privately, publish with one link CAS.
    ///
    /// While the tail segment has room, a single `fetch_add` claims a run
    /// of its slots (one contended atomic for up to `seg_size` values).
    /// Once the tail is full, the remaining suffix is copied into a
    /// privately-owned chain of pool segments — one plain value store per
    /// slot, the per-segment `prefill` word standing in for every slot
    /// state — and the whole chain is spliced after the tail with a single
    /// `next` CAS, which is the linearization point of every value it
    /// carries. A batch of `n` values therefore costs O(n / seg_size)
    /// contended CASes instead of O(n).
    fn enqueue_batch(&self, values: &[u64]) -> Result<(), BatchFull> {
        let k = self.arena.seg_size();
        let mut backoff = Backoff::new(self.backoff);
        let mut pushed = 0usize;
        // Segments kept from a lost splice race, still privately owned.
        let mut spares: Vec<u32> = Vec::new();
        loop {
            if pushed == values.len() {
                for s in spares {
                    self.arena.free(s);
                }
                return Ok(());
            }
            let remaining = values.len() - pushed;

            // Consistent (tail, gen) snapshot, exactly as in `enqueue`.
            let tail_raw = self.tail.load();
            let tail = Tagged::from_raw(tail_raw);
            let seg = tail.index();
            let gtag = self.arena.gen(seg) as u32;
            if self.tail.load() != tail_raw {
                continue;
            }

            // Fast path: claim a run of tail slots with ONE fetch_add.
            // Capping the delta at seg_size bounds what a stale add on a
            // recycled segment can burn to one segment's worth of claims.
            let delta = remaining.min(k as usize) as u32;
            let prev = Tagged::from_raw(self.arena.enq_cell(seg).fetch_add(u64::from(delta)));
            if prev.tag() != gtag {
                continue;
            }
            let t = prev.index();
            if t < k {
                // Fill the claimed run [t, end) in slice order. A poisoned
                // slot shifts the pending value to the next slot of the
                // run, so batch order survives; the burnt slot costs
                // capacity, never ordering.
                let end = k.min(t + delta);
                for slot in t..end {
                    if pushed == values.len() {
                        break;
                    }
                    let state = self.arena.state_cell(seg, slot);
                    if state.cas(
                        Tagged::new(EMPTY, gtag).raw(),
                        Tagged::new(WRITING, gtag).raw(),
                    ) {
                        self.arena.value_cell(seg, slot).store(values[pushed]);
                        state.store(Tagged::new(FULL, gtag).raw());
                        pushed += 1;
                    }
                }
                continue;
            }
            // t >= k: tail segment full — the splice path.
            let next = self.arena.next(seg);
            if !next.is_null() {
                // Tail is lagging; help swing it and retry. Helping is
                // progress, so no backoff here.
                self.tail.cas(tail_raw, tail.with_index(next.index()).raw());
                continue;
            }
            // Build a privately-owned chain holding the remaining suffix
            // (or as much of it as the pool can provide). Every chain
            // segment except the last is completely full, preserving the
            // invariant that only a full segment gains a successor.
            let mut chain: Vec<u32> = Vec::new();
            let mut filled = 0usize;
            while filled < remaining {
                let Some(s) = spares.pop().or_else(|| self.arena.alloc()) else {
                    break;
                };
                let sgtag = self.arena.gen(s) as u32;
                let m = ((remaining - filled) as u64).min(u64::from(k)) as u32;
                for i in 0..m {
                    self.arena
                        .value_cell(s, i)
                        .store(values[pushed + filled + i as usize]);
                }
                self.arena
                    .prefill_cell(s)
                    .store(Tagged::new(m, sgtag).raw());
                self.arena.enq_cell(s).store(Tagged::new(m, sgtag).raw());
                self.arena.set_next(s, NULL_INDEX);
                if let Some(&prev_seg) = chain.last() {
                    self.arena.set_next(prev_seg, s);
                }
                chain.push(s);
                filled += m as usize;
            }
            let Some(&chain_head) = chain.first() else {
                // Pool exhausted with nothing to splice. (`spares` is
                // empty: chain building drains it before allocating.)
                return Err(BatchFull { pushed });
            };
            // Splice the whole chain with one CAS — the linearization
            // point of every value it carries.
            if self.arena.cas_next(seg, next, chain_head) {
                let chain_tail = *chain.last().expect("chain is non-empty");
                self.tail.cas(tail_raw, tail.with_index(chain_tail).raw());
                pushed += filled;
                continue;
            }
            // Lost the splice race: the chain is still private. Keep the
            // segments for the next attempt (contents are rebuilt — the
            // fast path may consume part of the suffix first).
            spares.append(&mut chain);
            backoff.spin(&self.platform);
        }
    }

    /// Bulk dequeue: claim a run of published slots with one CAS.
    ///
    /// Scans the published prefix starting at the head segment's dequeue
    /// index — prefilled slots need no state loads at all, slot-enqueued
    /// ones are checked for `FULL` — reads every value in the run (the
    /// D11 rule, applied run-wide), then claims the whole run by moving
    /// the dequeue index once. Slots the run-claim cannot handle (a
    /// publication in progress, a stalled claimant, segment turnover)
    /// fall back to the per-op path for one value.
    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        let k = self.arena.seg_size();
        let mut backoff = Backoff::new(self.backoff);
        let mut taken = 0usize;
        while taken < max {
            let head_raw = self.head.load();
            let head = Tagged::from_raw(head_raw);
            let seg = head.index();
            let gtag = self.arena.gen(seg) as u32;
            if self.head.load() != head_raw {
                continue;
            }
            let deq = Tagged::from_raw(self.arena.deq_cell(seg).load());
            if deq.tag() != gtag {
                continue;
            }
            let d = deq.index();
            let want = ((max - taken) as u64).min(u64::from(k)) as u32;
            let mut end = d;
            if d < k {
                let pre = Tagged::from_raw(self.arena.prefill_cell(seg).load());
                if pre.tag() != gtag {
                    continue;
                }
                let hard_end = k.min(d + want);
                if d < pre.index() {
                    // Spliced in bulk: published up to the prefill count,
                    // no per-slot state to consult.
                    end = pre.index().min(hard_end);
                } else {
                    // Slot-enqueued: extend the run across FULL slots.
                    while end < hard_end
                        && self.arena.state_cell(seg, end).load() == Tagged::new(FULL, gtag).raw()
                    {
                        end += 1;
                    }
                }
            }
            if end == d {
                // Head slot not consumable by a run claim (EMPTY, WRITING,
                // TAKEN, or a drained segment). The per-op path knows how
                // to wait, step over, poison, or unlink; reuse it.
                match self.dequeue() {
                    Some(value) => {
                        out.push(value);
                        taken += 1;
                    }
                    None => break,
                }
                continue;
            }
            // D11 for a whole run: read every value BEFORE the claim CAS;
            // the generation-checked CAS detects recycling mid-read.
            let base = out.len();
            for slot in d..end {
                out.push(self.arena.value_cell(seg, slot).load());
            }
            if self
                .arena
                .deq_cell(seg)
                .cas(deq.raw(), Tagged::new(end, gtag).raw())
            {
                taken += (end - d) as usize;
            } else {
                // Lost the run claim: discard the speculative reads.
                out.truncate(base);
                backoff.spin(&self.platform);
            }
        }
        taken
    }

    fn name(&self) -> &'static str {
        "seg-batched"
    }

    fn is_nonblocking(&self) -> bool {
        true
    }
}

impl<P: Platform> std::fmt::Debug for WordSegQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WordSegQueue(capacity={}, seg_size={})",
            self.capacity,
            self.arena.seg_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> WordSegQueue<NativePlatform> {
        WordSegQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    fn small_seg_queue(capacity: u32, seg_size: u32) -> WordSegQueue<NativePlatform> {
        WordSegQueue::with_seg_size_and_backoff(
            &NativePlatform::new(),
            capacity,
            seg_size,
            BackoffConfig::DEFAULT,
        )
    }

    #[test]
    fn fifo_order_single_thread() {
        let q = queue(16);
        for i in 0..10 {
            q.enqueue(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn fifo_order_across_segment_boundaries() {
        let q = small_seg_queue(64, 4);
        for i in 0..60 {
            q.enqueue(i).unwrap();
        }
        for i in 0..60 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_queue_dequeues_none() {
        let q = queue(4);
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None, "repeatable");
    }

    #[test]
    fn segments_are_recycled_through_many_generations() {
        // 10k ops through a tiny segment pool: the generation tags must
        // keep reuse safe.
        let q = small_seg_queue(4, 2);
        for i in 0..10_000 {
            q.enqueue(i).unwrap();
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn capacity_is_a_guaranteed_lower_bound() {
        let q = small_seg_queue(10, 4);
        for i in 0..10 {
            q.enqueue(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn mpmc_stress_conserves_values() {
        let q = Arc::new(queue(256));
        let produced: u64 = 4 * 5_000;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let taken = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000_u64 {
                    let v = t * 5_000 + i + 1;
                    loop {
                        if q.enqueue(v).is_ok() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                while taken.load(std::sync::atomic::Ordering::SeqCst) < produced {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        taken.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expected: u64 = (1..=produced).sum();
        assert_eq!(sum.load(std::sync::atomic::Ordering::SeqCst), expected);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        let q = Arc::new(queue(6_000));
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000_u64 {
                    loop {
                        if q.enqueue((t << 32) | i).is_ok() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None::<u64>; 3];
        while let Some(v) = q.dequeue() {
            let producer = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[producer] {
                assert!(seq > prev, "producer {producer} out of order");
            }
            last[producer] = Some(seq);
        }
        assert_eq!(last, [Some(1999), Some(1999), Some(1999)]);
    }

    #[test]
    fn works_under_simulation_with_preemption() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            quantum_ns: 100_000,
            ..SimConfig::default()
        });
        let q = Arc::new(WordSegQueue::with_capacity(&sim.platform(), 64));
        let report = sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..100 {
                    let v = (info.pid as u64) << 32 | i;
                    q.enqueue(v).unwrap();
                    q.dequeue().expect("an item is always available");
                }
            }
        });
        assert_eq!(q.dequeue(), None);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn batch_round_trip_across_segments() {
        // Batch larger than a segment: exercises run-fill + chain splice.
        let q = small_seg_queue(64, 4);
        let values: Vec<u64> = (0..30).collect();
        q.enqueue_batch(&values).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 64), 30);
        assert_eq!(out, values);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_interleaves_with_per_op_calls() {
        let q = small_seg_queue(64, 4);
        q.enqueue(100).unwrap();
        q.enqueue_batch(&[101, 102, 103, 104, 105]).unwrap();
        q.enqueue(106).unwrap();
        for expect in 100..=106 {
            assert_eq!(q.dequeue(), Some(expect));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_full_reports_pushed_prefix_and_suffix_is_retriable() {
        let q = small_seg_queue(8, 4);
        let values: Vec<u64> = (0..1000).collect();
        let err = q.enqueue_batch(&values).unwrap_err();
        let pushed = err.pushed;
        assert!(pushed >= 8, "capacity is a lower bound, got {pushed}");
        assert!(pushed < 1000);
        // The enqueued prefix comes out in order...
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 1000), pushed);
        assert_eq!(out, values[..pushed]);
        // ...and the suffix can be retried once space frees up.
        q.enqueue_batch(&values[pushed..pushed + 4]).unwrap();
        let mut rest = Vec::new();
        q.dequeue_batch(&mut rest, 8);
        assert_eq!(rest, values[pushed..pushed + 4]);
    }

    #[test]
    fn dequeue_batch_respects_max() {
        let q = small_seg_queue(32, 4);
        q.enqueue_batch(&(0..20).collect::<Vec<_>>()).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 7), 7);
        assert_eq!(out, (0..7).collect::<Vec<u64>>());
        assert_eq!(q.dequeue_batch(&mut out, 100), 13);
        assert_eq!(out, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_dequeue_batch_takes_nothing() {
        let q = queue(8);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_batch(&mut out, 4), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_segments_recycle_through_generations() {
        // Push the splice/prefill path through many pool generations.
        let q = small_seg_queue(8, 2);
        let mut next = 0u64;
        for _ in 0..2_000 {
            let batch: Vec<u64> = (next..next + 6).collect();
            q.enqueue_batch(&batch).unwrap();
            let mut out = Vec::new();
            assert_eq!(q.dequeue_batch(&mut out, 6), 6);
            assert_eq!(out, batch);
            next += 6;
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_batch_stress_conserves_values_and_producer_order() {
        let q = Arc::new(queue(4096));
        const PRODUCERS: u64 = 3;
        const BATCHES: u64 = 200;
        const BATCH: u64 = 24;
        let mut handles = Vec::new();
        for t in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for b in 0..BATCHES {
                    let batch: Vec<u64> = (0..BATCH).map(|i| (t << 32) | (b * BATCH + i)).collect();
                    let mut rest: &[u64] = &batch;
                    loop {
                        match q.enqueue_batch(rest) {
                            Ok(()) => break,
                            Err(BatchFull { pushed }) => {
                                rest = &rest[pushed..];
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let total = (PRODUCERS * BATCHES * BATCH) as usize;
        let collected = Arc::new(std::sync::Mutex::new(Vec::new()));
        let taken = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let collected = Arc::clone(&collected);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while taken.load(std::sync::atomic::Ordering::SeqCst) < total {
                    let got = q.dequeue_batch(&mut local, 32);
                    if got > 0 {
                        taken.fetch_add(got, std::sync::atomic::Ordering::SeqCst);
                    } else {
                        std::thread::yield_now();
                    }
                }
                collected.lock().unwrap().extend_from_slice(&local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = collected.lock().unwrap();
        assert_eq!(all.len(), total);
        // Conservation: every value exactly once.
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), total);
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn batch_ops_work_under_simulation_with_preemption() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            quantum_ns: 50_000,
            ..SimConfig::default()
        });
        let q = Arc::new(WordSegQueue::with_capacity(&sim.platform(), 512));
        let report = sim.run({
            let q = Arc::clone(&q);
            move |info| {
                let mut out = Vec::new();
                for b in 0..10u64 {
                    let batch: Vec<u64> = (0..8)
                        .map(|i| (info.pid as u64) << 32 | (b * 8 + i))
                        .collect();
                    let mut rest: &[u64] = &batch;
                    loop {
                        match q.enqueue_batch(rest) {
                            Ok(()) => break,
                            Err(BatchFull { pushed }) => rest = &rest[pushed..],
                        }
                    }
                    let mut got = 0;
                    while got < 8 {
                        got += q.dequeue_batch(&mut out, 8 - got);
                    }
                }
                // Per-producer order within what this process dequeued is
                // not checkable here (items mix across processes); the
                // conservation check below is.
                assert_eq!(out.len(), 80);
            }
        });
        assert_eq!(q.dequeue(), None);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn budget_backpressure_and_recovery_native() {
        let platform = NativePlatform::new();
        let budget = Arc::new(MemBudget::new(&platform, 2));
        let q = WordSegQueue::with_capacity_and_budget(&platform, 64, Arc::clone(&budget));
        // The dummy segment holds one unit for the queue's lifetime.
        assert_eq!(budget.reserved(), 1);

        let mut accepted = 0u64;
        let rejected = loop {
            match q.enqueue(accepted) {
                Ok(()) => accepted += 1,
                Err(QueueFull(v)) => break v,
            }
        };
        assert_eq!(rejected, accepted, "the rejected value comes back intact");
        assert!(
            accepted >= u64::from(q.seg_size()),
            "two budget units hold at least one segment of values, got {accepted}"
        );
        assert!(budget.reserved() <= 2, "residency never exceeds the limit");
        assert!(budget.denials() > 0, "exhaustion was metered");

        // Draining recycles segments back through the arena, crediting the
        // budget, so the queue recovers without any reconfiguration.
        for i in 0..accepted {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        q.enqueue(u64::MAX).unwrap();
        assert_eq!(q.dequeue(), Some(u64::MAX));
        assert!(budget.reserved() <= 2);
    }

    #[test]
    fn budget_backpressure_and_recovery_under_simulation() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 2,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let budget = Arc::new(MemBudget::new(&platform, 2));
        let q = Arc::new(WordSegQueue::with_capacity_and_budget(
            &platform,
            64,
            Arc::clone(&budget),
        ));
        sim.run({
            let q = Arc::clone(&q);
            move |info| {
                if info.pid != 0 {
                    return;
                }
                let mut sent = 0u64;
                let rejected = loop {
                    match q.enqueue(sent) {
                        Ok(()) => sent += 1,
                        Err(QueueFull(v)) => break v,
                    }
                };
                assert_eq!(rejected, sent);
                for i in 0..sent {
                    assert_eq!(q.dequeue(), Some(i));
                }
                q.enqueue(u64::MAX).unwrap();
                assert_eq!(q.dequeue(), Some(u64::MAX));
            }
        });
        assert_eq!(q.dequeue(), None);
        assert!(budget.reserved() <= 2, "simulated residency is capped too");
        assert!(budget.denials() > 0);
    }

    #[test]
    fn reports_identity() {
        let q = queue(1);
        assert_eq!(q.name(), "seg-batched");
        assert!(q.is_nonblocking());
        assert_eq!(q.capacity(), 1);
        assert_eq!(
            q.seg_size(),
            WordSegQueue::<NativePlatform>::DEFAULT_SEG_SIZE
        );
    }

    /// Regression for the backoff placement rule: the batch paths spin
    /// only after *losing* a race (failed splice CAS, failed run-claim
    /// CAS), never after helping swing the tail. If backoff ever got
    /// dropped from the new loss points — or misapplied to the helping
    /// path, where it would stall the helper without reducing contention
    /// — this deterministic cell moves: disabling backoff must never
    /// *reduce* failed CASes, and the contended cell must actually fail
    /// CASes so the comparison is not vacuous.
    #[test]
    fn batch_paths_back_off_on_lost_races() {
        use msq_sim::{SimConfig, Simulation};

        fn contended_batch_cell(backoff: BackoffConfig) -> u64 {
            let sim = Simulation::new(SimConfig {
                processors: 8,
                ..SimConfig::default()
            });
            let q = Arc::new(WordSegQueue::with_capacity_and_backoff(
                &sim.platform(),
                4_096,
                backoff,
            ));
            let report = sim.run({
                let q = Arc::clone(&q);
                move |info| {
                    for round in 0..8_u64 {
                        let values: Vec<u64> = (0..32)
                            .map(|i| ((info.pid as u64) << 32) | (round * 32 + i))
                            .collect();
                        let mut rest: &[u64] = &values;
                        loop {
                            match q.enqueue_batch(rest) {
                                Ok(()) => break,
                                Err(e) => rest = &rest[e.pushed..],
                            }
                        }
                        let mut out = Vec::with_capacity(32);
                        while out.len() < 32 {
                            let want = 32 - out.len();
                            q.dequeue_batch(&mut out, want);
                        }
                    }
                }
            });
            report.cas_failures
        }

        let with_backoff = contended_batch_cell(BackoffConfig::DEFAULT);
        let without = contended_batch_cell(BackoffConfig::DISABLED);
        assert!(without > 0, "cell must contend for the comparison to bite");
        assert!(
            with_backoff <= without,
            "backoff made batch-path contention worse: {with_backoff} failed \
             CASes with backoff vs {without} without"
        );
    }
}
