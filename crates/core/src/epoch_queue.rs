//! `EpochMsQueue<T>`: the MS queue under epoch-based reclamation.
//!
//! A third answer to the reclamation question the paper solves with a
//! type-stable free list (and `MsQueue<T>` solves with hazard pointers):
//! crossbeam's epoch scheme. Readers pin an epoch instead of publishing
//! per-pointer hazards — cheaper on the read path, at the cost of
//! unbounded (though amortized-small) reclamation delay when a thread
//! stalls inside a pinned section. The `reclamation` ablation bench
//! compares all three.

use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use crossbeam_utils::CachePadded;
use msq_platform::{Backoff, BackoffConfig, NativePlatform};

struct Node<T> {
    /// Initialized for every node except the current dummy.
    value: MaybeUninit<T>,
    next: Atomic<Node<T>>,
}

/// An unbounded lock-free MPMC FIFO queue — the Michael–Scott algorithm
/// with crossbeam-epoch reclamation.
///
/// # Example
///
/// ```
/// use msq_core::EpochMsQueue;
///
/// let queue = EpochMsQueue::new();
/// queue.enqueue(1);
/// queue.enqueue(2);
/// assert_eq!(queue.dequeue(), Some(1));
/// assert_eq!(queue.dequeue(), Some(2));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct EpochMsQueue<T> {
    head: CachePadded<Atomic<Node<T>>>,
    tail: CachePadded<Atomic<Node<T>>>,
    backoff: BackoffConfig,
}

unsafe impl<T: Send> Send for EpochMsQueue<T> {}
unsafe impl<T: Send> Sync for EpochMsQueue<T> {}

impl<T> EpochMsQueue<T> {
    /// Creates an empty queue with [`BackoffConfig::DEFAULT`] applied to
    /// contended CAS retries.
    pub fn new() -> Self {
        EpochMsQueue::with_backoff(BackoffConfig::DEFAULT)
    }

    /// Creates an empty queue with explicit backoff parameters, mirroring
    /// the word-level queues' constructor shape.
    pub fn with_backoff(backoff: BackoffConfig) -> Self {
        let queue = EpochMsQueue {
            head: CachePadded::new(Atomic::null()),
            tail: CachePadded::new(Atomic::null()),
            backoff,
        };
        let dummy = Owned::new(Node {
            value: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        let guard = epoch::pin();
        let dummy = dummy.into_shared(&guard);
        queue.head.store(dummy, Ordering::Relaxed);
        queue.tail.store(dummy, Ordering::Relaxed);
        queue
    }

    /// Adds `value` at the tail. Lock-free.
    pub fn enqueue(&self, value: T) {
        let guard = epoch::pin();
        let mut node = Owned::new(Node {
            value: MaybeUninit::new(value),
            next: Atomic::null(),
        });
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            // Safety: epoch-pinned; tail is never null after construction.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Help a lagging tail (E12).
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                );
                continue;
            }
            match tail_ref.next.compare_exchange(
                Shared::null(),
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(inserted) => {
                    let _ = self.tail.compare_exchange(
                        tail,
                        inserted,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        &guard,
                    );
                    return;
                }
                Err(error) => {
                    node = error.new;
                    backoff.spin(&NativePlatform::new());
                }
            }
        }
    }

    /// Removes and returns the head value, or `None` if observed empty.
    /// Lock-free.
    pub fn dequeue(&self) -> Option<T> {
        let guard = epoch::pin();
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            // Safety: epoch-pinned; head is never null.
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::Acquire, &guard);
            if next.is_null() {
                return None;
            }
            let tail = self.tail.load(Ordering::Acquire, &guard);
            if head == tail {
                // Tail is falling behind (D9): help it.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                );
                continue;
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire, &guard)
                .is_ok()
            {
                // Safety: sole winner of the head CAS moves the value out;
                // the old dummy is destroyed after the epoch quiesces, and
                // its value slot is stale (moved out or never initialized),
                // so only the allocation is freed.
                let value = unsafe { ptr::read(next.deref().value.as_ptr()) };
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
            // Lost the head race to another dequeuer.
            backoff.spin(&NativePlatform::new());
        }
    }

    /// Whether the queue was observed empty (snapshot semantics).
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        // Safety: epoch-pinned; head is never null.
        unsafe { head.deref() }
            .next
            .load(Ordering::Acquire, &guard)
            .is_null()
    }
}

impl<T> Default for EpochMsQueue<T> {
    fn default() -> Self {
        EpochMsQueue::new()
    }
}

impl<T> Drop for EpochMsQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk and free directly.
        let guard = unsafe { epoch::unprotected() };
        let mut node = self.head.load(Ordering::Relaxed, guard);
        let mut is_dummy = true;
        while !node.is_null() {
            // Safety: exclusive access during drop.
            let mut owned = unsafe { node.into_owned() };
            let next = owned.next.load(Ordering::Relaxed, guard);
            if !is_dummy {
                // Safety: non-dummy nodes hold initialized values.
                unsafe { ptr::drop_in_place(owned.value.as_mut_ptr()) };
            }
            is_dummy = false;
            drop(owned);
            node = next;
        }
    }
}

impl<T> std::fmt::Debug for EpochMsQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EpochMsQueue(empty={})", self.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = EpochMsQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn empty_transitions() {
        let q = EpochMsQueue::new();
        assert!(q.is_empty());
        q.enqueue("a");
        assert!(!q.is_empty());
        assert_eq!(q.dequeue(), Some("a"));
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drop_releases_remaining_values() {
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let q = EpochMsQueue::new();
            for _ in 0..8 {
                q.enqueue(Tracked(Arc::clone(&drops)));
            }
            drop(q.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn mpmc_stress() {
        let q = Arc::new(EpochMsQueue::new());
        let total = 4 * 8_000_u64;
        let consumed = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..8_000_u64 {
                    q.enqueue(t * 8_000 + i + 1);
                }
            }));
        }
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        consumed.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), (1..=total).sum::<u64>());
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_order() {
        let q = Arc::new(EpochMsQueue::new());
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000_u64 {
                    q.enqueue((t << 32) | i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None::<u64>; 3];
        while let Some(v) = q.dequeue() {
            let producer = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[producer] {
                assert!(seq > prev);
            }
            last[producer] = Some(seq);
        }
    }
}
