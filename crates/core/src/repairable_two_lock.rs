//! The crash-survivable variant of the Figure 2 two-lock queue
//! (DESIGN.md §13).
//!
//! Both locks become [`RevocableLock`]s and each critical section
//! publishes an intent cell (`node + 1` / `old_dummy + 1` while the
//! protected update may be torn, `0` otherwise). A waiter that revokes a
//! lock from a dead holder reads the matching intent and repairs the end
//! it guards: the tail end completes or discards the half-inserted node,
//! the head end completes or rolls back the half-finished dequeue — then
//! stamps the outcome via [`Platform::mark_repaired`]. Because enqueuers
//! never touch `Head` and dequeuers never touch `Tail`, each repair
//! routine only ever inspects its own end, exactly like the operations
//! themselves.

use std::sync::Arc;

use msq_arena::{MemBudget, NodeArena};
use msq_platform::{
    AtomicWord, BackoffConfig, ConcurrentWordQueue, Platform, QueueFull, NULL_INDEX,
};
use msq_sync::{Acquired, RevocableLock};

/// The Michael–Scott two-lock queue under revocable locks, with
/// intent-cell repair: the crash-survivable counterpart of
/// [`crate::WordTwoLockQueue`].
///
/// # Example
///
/// ```
/// use msq_core::RepairableTwoLockQueue;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
///
/// let queue = RepairableTwoLockQueue::with_capacity(&NativePlatform::new(), 8);
/// queue.enqueue(1).unwrap();
/// assert_eq!(queue.dequeue(), Some(1));
/// ```
pub struct RepairableTwoLockQueue<P: Platform> {
    head: P::Cell,
    tail: P::Cell,
    h_lock: RevocableLock<P>,
    t_lock: RevocableLock<P>,
    /// `node + 1` while an enqueue holds `t_lock` and its update may be
    /// torn; `0` otherwise. Only the `t_lock` holder writes it.
    enq_intent: P::Cell,
    /// `old_dummy + 1` while a dequeue holds `h_lock` past its emptiness
    /// check; `0` otherwise. Only the `h_lock` holder writes it.
    deq_intent: P::Cell,
    arena: NodeArena<P>,
    platform: P,
}

impl<P: Platform> RepairableTwoLockQueue<P> {
    /// Creates a queue able to hold `capacity` values simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity(platform: &P, capacity: u32) -> Self {
        Self::with_capacity_and_backoff(platform, capacity, BackoffConfig::DEFAULT)
    }

    /// As [`RepairableTwoLockQueue::with_capacity`] with explicit lock
    /// backoff.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_backoff(platform: &P, capacity: u32, backoff: BackoffConfig) -> Self {
        let arena = NodeArena::new(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
        );
        Self::from_arena(platform, arena, backoff)
    }

    /// As [`RepairableTwoLockQueue::with_capacity`], metering the node
    /// pool against `budget` for the queue's lifetime. A node discarded
    /// by repair goes back to the arena free list, so no reservation is
    /// ever leaked by a repaired death.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` does not fit a tagged index.
    pub fn with_capacity_and_budget(
        platform: &P,
        capacity: u32,
        budget: Arc<MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(
            platform,
            capacity.checked_add(1).expect("capacity overflow"),
            budget,
        );
        Self::from_arena(platform, arena, BackoffConfig::DEFAULT)
    }

    fn from_arena(platform: &P, arena: NodeArena<P>, backoff: BackoffConfig) -> Self {
        let dummy = arena.alloc().expect("fresh arena");
        arena.set_next(dummy, NULL_INDEX);
        // Touch the death board during untimed setup so its cell id (and
        // therefore every trace) is fixed before the run starts.
        let _ = platform.dead_peers();
        RepairableTwoLockQueue {
            head: platform.alloc_cell(u64::from(dummy)),
            tail: platform.alloc_cell(u64::from(dummy)),
            h_lock: RevocableLock::with_backoff(platform, backoff),
            t_lock: RevocableLock::with_backoff(platform, backoff),
            enq_intent: platform.alloc_cell(0),
            deq_intent: platform.alloc_cell(0),
            arena,
            platform: platform.clone(),
        }
    }

    /// Maximum number of values the queue can hold.
    pub fn capacity(&self) -> u32 {
        self.arena.capacity() - 1
    }

    /// Repairs the tail end after revoking `t_lock` from dead `victim`:
    /// completes the enqueue if the link (or the tail swing) already
    /// landed, discards the node otherwise.
    fn repair_tail(&self, victim: usize) {
        // A repairer killed here leaves `repairing(dead)` in T_lock —
        // revocable by the same rule, so repair duty is never lost.
        self.platform.fault_point("two-lock:repair:window");
        let intent = self.enq_intent.load();
        let outcome = if intent != 0 {
            let node = (intent - 1) as u32;
            self.enq_intent.store(0);
            let tail = self.tail.load() as u32;
            if tail == node {
                "two-lock:repair:enq-complete"
            } else {
                let link = self.arena.next(tail);
                if !link.is_null() && link.index() == node {
                    // Linked but Tail not swung: finish the enqueue.
                    self.tail.store(u64::from(node));
                    "two-lock:repair:enq-complete"
                } else {
                    // Never linked: the enqueue did not happen.
                    self.arena.free(node);
                    "two-lock:repair:enq-discard"
                }
            }
        } else {
            "two-lock:repair:intact"
        };
        self.platform.mark_repaired(victim, outcome);
    }

    /// Repairs the head end after revoking `h_lock` from dead `victim`:
    /// frees the stranded dummy if the head already swung, rolls back
    /// otherwise.
    fn repair_head(&self, victim: usize) {
        // Same re-revocation story as `repair_tail`, for H_lock.
        self.platform.fault_point("two-lock:repair:window");
        let intent = self.deq_intent.load();
        let outcome = if intent != 0 {
            let node = (intent - 1) as u32;
            self.deq_intent.store(0);
            if self.head.load() as u32 == node {
                // Head never swung: the dequeue did not happen.
                "two-lock:repair:deq-rollback"
            } else {
                // Head swung but the victim died before recycling the
                // old dummy.
                self.arena.free(node);
                "two-lock:repair:deq-complete"
            }
        } else {
            "two-lock:repair:intact"
        };
        self.platform.mark_repaired(victim, outcome);
    }
}

impl<P: Platform> ConcurrentWordQueue for RepairableTwoLockQueue<P> {
    fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
        // Allocate and fill the node before taking the lock, as in Figure 2.
        let Some(node) = self.arena.alloc() else {
            return Err(QueueFull(value));
        };
        self.arena.set_value(node, value);
        self.arena.set_next(node, NULL_INDEX);
        if let Acquired::Repairing { victim } = self.t_lock.lock(&self.platform) {
            self.repair_tail(victim);
        }
        self.enq_intent.store(u64::from(node) + 1);
        // The same kill window as the plain queue — but a death here
        // leaves a repairable intent record instead of a wedged T_lock.
        self.platform.fault_point("two-lock:enq:locked");
        let tail = self.tail.load() as u32;
        self.arena.set_next(tail, node);
        self.tail.store(u64::from(node));
        self.enq_intent.store(0);
        self.t_lock.unlock(&self.platform);
        Ok(())
    }

    fn dequeue(&self) -> Option<u64> {
        if let Acquired::Repairing { victim } = self.h_lock.lock(&self.platform) {
            self.repair_head(victim);
        }
        let node = self.head.load() as u32;
        let new_head = self.arena.next(node);
        if new_head.is_null() {
            self.h_lock.unlock(&self.platform);
            return None;
        }
        self.deq_intent.store(u64::from(node) + 1);
        self.platform.fault_point("two-lock:deq:locked");
        let value = self.arena.value(new_head.index());
        self.head.store(u64::from(new_head.index()));
        self.deq_intent.store(0);
        self.h_lock.unlock(&self.platform);
        // Free the old dummy outside the critical section, as in Figure 2.
        self.arena.free(node);
        Some(value)
    }

    fn name(&self) -> &'static str {
        "ms-two-lock-repair"
    }

    fn is_nonblocking(&self) -> bool {
        false
    }
}

impl<P: Platform> std::fmt::Debug for RepairableTwoLockQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RepairableTwoLockQueue(capacity={})", self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::Arc;

    fn queue(capacity: u32) -> RepairableTwoLockQueue<NativePlatform> {
        RepairableTwoLockQueue::with_capacity(&NativePlatform::new(), capacity)
    }

    #[test]
    fn fifo_capacity_and_identity() {
        let q = queue(2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.enqueue(3), Err(QueueFull(3)));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.name(), "ms-two-lock-repair");
        assert!(!q.is_nonblocking());
    }

    #[test]
    fn concurrent_conservation() {
        let q = Arc::new(queue(256));
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let total = 4 * 2_000_u64;
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000_u64 {
                    let v = t * 2_000 + i + 1;
                    while q.enqueue(v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let got = Arc::clone(&got);
            handles.push(std::thread::spawn(move || {
                while got.load(std::sync::atomic::Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                        got.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::SeqCst),
            (1..=total).sum::<u64>()
        );
    }

    /// A dequeuer killed while holding `H_lock` is dispossessed by the
    /// next dequeuer, which repairs the head end and proceeds — the
    /// scenario the plain two-lock queue can only watchdog.
    #[test]
    fn killed_dequeuer_holding_h_lock_is_repaired() {
        use msq_sim::{FaultPlan, SimConfig, Simulation};
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 3,
                watchdog_ns: 400_000_000,
                ..SimConfig::default()
            },
            FaultPlan::new().kill_at_label(0, "two-lock:deq:locked", 1),
        );
        let platform = sim.platform();
        let q = Arc::new(RepairableTwoLockQueue::with_capacity(&platform, 64));
        let report = sim.run({
            let q = Arc::clone(&q);
            move |info| {
                for i in 0..20u64 {
                    q.enqueue((info.pid as u64) << 32 | i).unwrap();
                    q.dequeue().expect("a value is always available");
                }
            }
        });
        assert_eq!(report.killed, vec![0]);
        assert!(report.blocked.is_empty(), "repair must beat the watchdog");
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.repairs[0].victim, 0);
        assert!(report.repairs[0].point.starts_with("two-lock:repair:deq-"));
        assert!(report.repairs[0].time_to_repair_ns() > 0);
    }
}
