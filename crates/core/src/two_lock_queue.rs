//! `TwoLockQueue<T>`: the idiomatic, heap-allocated two-lock queue.

use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use parking_lot::Mutex;

struct Node<T> {
    /// Initialized for every node except the current dummy.
    value: MaybeUninit<T>,
    /// Atomic because the single-element race (a dequeuer reading the
    /// dummy's link while an enqueuer installs it) crosses the two locks.
    next: AtomicPtr<Node<T>>,
}

/// An unbounded FIFO queue with separate head and tail locks — the paper's
/// blocking algorithm (Figure 2) with heap nodes and `parking_lot` mutexes
/// in place of the experiments' spin locks and arena.
///
/// One enqueue and one dequeue can always proceed in parallel; multiple
/// enqueuers (or multiple dequeuers) serialize on their respective lock.
/// The dummy node keeps the two locks from ever being nested, so deadlock
/// is impossible by construction.
///
/// # Example
///
/// ```
/// use msq_core::TwoLockQueue;
///
/// let queue = TwoLockQueue::new();
/// queue.enqueue(10);
/// queue.enqueue(20);
/// assert_eq!(queue.dequeue(), Some(10));
/// assert_eq!(queue.dequeue(), Some(20));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct TwoLockQueue<T> {
    head: Mutex<*mut Node<T>>,
    tail: Mutex<*mut Node<T>>,
}

unsafe impl<T: Send> Send for TwoLockQueue<T> {}
unsafe impl<T: Send> Sync for TwoLockQueue<T> {}

impl<T> TwoLockQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(Node {
            value: MaybeUninit::uninit(),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        TwoLockQueue {
            head: Mutex::new(dummy),
            tail: Mutex::new(dummy),
        }
    }

    /// Adds `value` at the tail. Blocks only other enqueuers.
    pub fn enqueue(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value: MaybeUninit::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let mut tail = self.tail.lock();
        // Safety: *tail is the last node, owned by the queue; we hold the
        // tail lock, so no other enqueuer touches its next link.
        unsafe { (**tail).next.store(node, Ordering::Release) };
        *tail = node;
    }

    /// Removes and returns the head value, or `None` if the queue is
    /// empty. Blocks only other dequeuers.
    pub fn dequeue(&self) -> Option<T> {
        let mut head = self.head.lock();
        let node = *head;
        // Safety: *head is the dummy node, kept alive by the queue.
        let next = unsafe { (*node).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // Safety: `next` holds an initialized value (only the dummy does
        // not); exactly one dequeuer moves it out because Head advances
        // under the lock.
        let value = unsafe { ptr::read((*next).value.as_ptr()) };
        *head = next;
        drop(head);
        // Free the old dummy outside the critical section (as in Figure 2):
        // it is unreachable from Head, and enqueuers only dereference Tail,
        // which never points behind Head.
        // Safety: unlinked, allocated by Box::into_raw, freed exactly once;
        // its value slot is uninitialized (it was the dummy).
        unsafe { drop(Box::from_raw(node)) };
        Some(value)
    }

    /// Whether the queue was observed empty (snapshot semantics).
    pub fn is_empty(&self) -> bool {
        let head = self.head.lock();
        // Safety: dummy is alive while the queue is.
        unsafe { (**head).next.load(Ordering::Acquire).is_null() }
    }
}

impl<T> Default for TwoLockQueue<T> {
    fn default() -> Self {
        TwoLockQueue::new()
    }
}

impl<T> Drop for TwoLockQueue<T> {
    fn drop(&mut self) {
        let mut node = *self.head.lock();
        let mut is_dummy = true;
        while !node.is_null() {
            // Safety: exclusive access during drop.
            let boxed = unsafe { Box::from_raw(node) };
            let next = boxed.next.load(Ordering::Relaxed);
            if !is_dummy {
                // Safety: non-dummy nodes hold initialized values.
                unsafe { ptr::drop_in_place(boxed.value.as_ptr().cast_mut()) };
            }
            is_dummy = false;
            node = next;
        }
    }
}

impl<T> std::fmt::Debug for TwoLockQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TwoLockQueue(empty={})", self.is_empty())
    }
}

impl<T: Send> FromIterator<T> for TwoLockQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let queue = TwoLockQueue::new();
        for value in iter {
            queue.enqueue(value);
        }
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = TwoLockQueue::new();
        for i in 0..50 {
            q.enqueue(i);
        }
        for i in 0..50 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn is_empty_tracks_contents() {
        let q = TwoLockQueue::new();
        assert!(q.is_empty());
        q.enqueue("x");
        assert!(!q.is_empty());
        assert_eq!(q.dequeue(), Some("x"));
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_remaining_values() {
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let q = TwoLockQueue::new();
            for _ in 0..7 {
                q.enqueue(Tracked(Arc::clone(&drops)));
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_values() {
        let q = Arc::new(TwoLockQueue::new());
        let total_items = 4 * 8_000_u64;
        let consumed = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..8_000_u64 {
                    q.enqueue(t * 8_000 + i + 1);
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::SeqCst) < total_items {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        consumed.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), (1..=total_items).sum::<u64>());
        assert!(q.is_empty());
    }

    #[test]
    fn single_element_enqueue_dequeue_race() {
        // Hammer the empty<->single transition, the delicate case the
        // dummy node exists to simplify.
        let q = Arc::new(TwoLockQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..20_000_u64 {
                    q.enqueue(i);
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut expected = 0_u64;
                while expected < 20_000 {
                    if let Some(v) = q.dequeue() {
                        assert_eq!(v, expected, "SPSC order violated");
                        expected += 1;
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(q.is_empty());
    }
}
