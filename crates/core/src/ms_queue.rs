//! `MsQueue<T>`: the idiomatic, heap-allocated Michael–Scott queue.

use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use crossbeam_utils::CachePadded;
use msq_hazard::{PooledHazard, GLOBAL_DOMAIN};
use msq_platform::{Backoff, BackoffConfig, NativePlatform};

struct Node<T> {
    /// Initialized for every node except the current dummy: a node's value
    /// is moved out by the dequeue that turns it into the dummy.
    value: MaybeUninit<T>,
    next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn dummy() -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value: MaybeUninit::uninit(),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// An unbounded multi-producer multi-consumer lock-free FIFO queue — the
/// paper's non-blocking algorithm with heap nodes and hazard-pointer
/// reclamation in place of the experiments' arena free list.
///
/// This is the variant a downstream Rust user would reach for: `T` is any
/// `Send` type, operations never block, and memory is returned to the
/// allocator (amortized) rather than held in a pool.
///
/// # Example
///
/// ```
/// use msq_core::MsQueue;
///
/// let queue = MsQueue::new();
/// queue.enqueue("a");
/// queue.enqueue("b");
/// assert_eq!(queue.dequeue(), Some("a"));
/// assert_eq!(queue.dequeue(), Some("b"));
/// assert_eq!(queue.dequeue(), None);
/// ```
pub struct MsQueue<T> {
    head: CachePadded<AtomicPtr<Node<T>>>,
    tail: CachePadded<AtomicPtr<Node<T>>>,
    backoff: BackoffConfig,
}

unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> MsQueue<T> {
    /// Creates an empty queue with [`BackoffConfig::DEFAULT`] applied to
    /// contended CAS retries.
    pub fn new() -> Self {
        MsQueue::with_backoff(BackoffConfig::DEFAULT)
    }

    /// Creates an empty queue with explicit backoff parameters, the same
    /// knob the word-level queues expose (the ablation benches pass
    /// [`BackoffConfig::DISABLED`]).
    pub fn with_backoff(backoff: BackoffConfig) -> Self {
        let dummy = Node::dummy();
        MsQueue {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            backoff,
        }
    }

    /// Adds `value` to the tail of the queue.
    ///
    /// Lock-free: a stalled thread cannot prevent others from enqueueing.
    pub fn enqueue(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value: MaybeUninit::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let mut hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        let mut backoff = Backoff::new(self.backoff);
        loop {
            // Protect Tail so dereferencing it for `next` is safe even if a
            // concurrent dequeue retires the node.
            let tail = hazard.protect(&self.tail);
            // Safety: protected and re-validated against self.tail.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if self.tail.load(Ordering::Acquire) != tail {
                continue;
            }
            if next.is_null() {
                // Tail was pointing at the last node: link ours (E9).
                if unsafe { &(*tail).next }
                    .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // E13: swing Tail to the inserted node (best effort).
                    let _ =
                        self.tail
                            .compare_exchange(tail, node, Ordering::AcqRel, Ordering::Acquire);
                    return;
                }
                // E9 lost: another enqueuer linked first — the contended
                // case the paper applies backoff to.
                backoff.spin(&NativePlatform::new());
            } else {
                // E12: help a lagging Tail forward (no backoff: helping is
                // progress, not contention).
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
            }
        }
    }

    /// Removes and returns the value at the head of the queue, or `None`
    /// if it is observed empty.
    pub fn dequeue(&self) -> Option<T> {
        let mut head_hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        let mut next_hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        let mut backoff = Backoff::new(self.backoff);
        loop {
            let head = head_hazard.protect(&self.head);
            let tail = self.tail.load(Ordering::Acquire);
            // Safety: head is protected and re-validated below.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            // Protect next, then re-validate head: if Head is unchanged,
            // `next` is still Head's successor, hence reachable and now
            // protected.
            next_hazard.protect_raw(next);
            if self.head.load(Ordering::SeqCst) != head {
                continue;
            }
            if next.is_null() {
                // Queue empty (Head == Tail == dummy with no successor).
                return None;
            }
            if head == tail {
                // Tail is falling behind (D9): help it.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
                continue;
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // We won: `next` is the new dummy and its value is ours to
                // move out. Unlike the arena version (which must read the
                // value before the CAS), hazard protection makes the node
                // stable until our guards drop.
                // Safety: exactly one dequeuer wins this CAS, so the value
                // is moved out exactly once; `next` is protected.
                let value = unsafe { ptr::read((*next).value.as_ptr()) };
                drop(head_hazard);
                drop(next_hazard);
                // Safety: `head` is unlinked (Head moved past it), was
                // allocated by Box::into_raw, and is retired exactly once.
                // Its value slot is a stale dummy slot — already moved out
                // by the dequeue that made it dummy (or never initialized),
                // so dropping the box must not drop a T; Node's value is
                // MaybeUninit so Box::from_raw drops only the allocation.
                unsafe { GLOBAL_DOMAIN.retire(head) };
                return Some(value);
            }
            // D12 lost: another dequeuer swung Head first.
            backoff.spin(&NativePlatform::new());
        }
    }

    /// Whether the queue was observed empty. Like every concurrent size
    /// probe this is a snapshot: it may be stale by the time it returns.
    pub fn is_empty(&self) -> bool {
        let mut head_hazard = PooledHazard::acquire(&GLOBAL_DOMAIN);
        loop {
            let head = head_hazard.protect(&self.head);
            // Safety: protected head.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            if self.head.load(Ordering::Acquire) == head {
                return next.is_null();
            }
        }
    }
}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        MsQueue::new()
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the list, dropping every remaining value
        // and node, then the dummy.
        let mut node = self.head.load(Ordering::Relaxed);
        let mut is_dummy = true;
        while !node.is_null() {
            // Safety: exclusive access during drop.
            let boxed = unsafe { Box::from_raw(node) };
            let next = boxed.next.load(Ordering::Relaxed);
            if !is_dummy {
                // Safety: every non-dummy node holds an initialized value.
                unsafe { ptr::drop_in_place(boxed.value.as_ptr().cast_mut()) };
            }
            is_dummy = false;
            node = next;
        }
    }
}

impl<T> std::fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MsQueue(empty={})", self.is_empty())
    }
}

impl<T: Send> FromIterator<T> for MsQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let queue = MsQueue::new();
        for value in iter {
            queue.enqueue(value);
        }
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = MsQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn is_empty_tracks_contents() {
        let q = MsQueue::new();
        assert!(q.is_empty());
        q.enqueue(1);
        assert!(!q.is_empty());
        q.dequeue();
        assert!(q.is_empty());
    }

    #[test]
    fn works_with_owned_types() {
        let q = MsQueue::new();
        q.enqueue(String::from("hello"));
        q.enqueue(String::from("world"));
        assert_eq!(q.dequeue().as_deref(), Some("hello"));
        assert_eq!(q.dequeue().as_deref(), Some("world"));
    }

    #[test]
    fn from_iterator_collects_in_order() {
        let q: MsQueue<i32> = (0..5).collect();
        for i in 0..5 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn drop_releases_remaining_values() {
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let q = MsQueue::new();
            for _ in 0..10 {
                q.enqueue(Tracked(Arc::clone(&drops)));
            }
            drop(q.dequeue()); // one dropped by us
            assert_eq!(drops.load(Ordering::SeqCst), 1);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10, "queue drop released 9");
    }

    #[test]
    fn mpmc_stress() {
        let q = Arc::new(MsQueue::new());
        let produced_per_thread = 10_000_u64;
        let producers = 4_u64;
        let consumed = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..produced_per_thread {
                    q.enqueue(t * produced_per_thread + i + 1);
                }
            }));
        }
        let total = producers * produced_per_thread;
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::SeqCst) < total {
                    if let Some(v) = q.dequeue() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        consumed.fetch_add(1, Ordering::SeqCst);
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::SeqCst), (1..=total).sum::<u64>());
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_order_preserved_under_concurrency() {
        let q = Arc::new(MsQueue::new());
        let mut handles = Vec::new();
        for t in 0..3_u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000_u64 {
                    q.enqueue((t << 32) | i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut last = [None::<u64>; 3];
        while let Some(v) = q.dequeue() {
            let producer = (v >> 32) as usize;
            let seq = v & 0xffff_ffff;
            if let Some(prev) = last[producer] {
                assert!(seq > prev);
            }
            last[producer] = Some(seq);
        }
    }
}
