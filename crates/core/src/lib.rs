//! The paper's two contributions.
//!
//! * [`WordMsQueue`] — the **non-blocking concurrent queue** of Figure 1:
//!   a singly-linked list with `Head`/`Tail`, a dummy node, counted
//!   (tagged) pointers against ABA, and a Treiber-stack free list so
//!   dequeued nodes are reused. Implemented line-for-line against the
//!   paper's pseudo-code over the `Platform` abstraction, so it runs
//!   unchanged on hardware atomics and inside the `msq-sim` simulator.
//! * [`WordTwoLockQueue`] — the **two-lock queue** of Figure 2: separate
//!   head and tail test-and-test_and_set locks (with bounded exponential
//!   backoff) plus the same dummy-node trick, allowing one enqueue and one
//!   dequeue to proceed concurrently.
//!
//! For downstream users the crate also provides idiomatic heap-allocated
//! generic versions:
//!
//! * [`MsQueue`] — `MsQueue<T>` with hazard-pointer reclamation
//!   (`msq-hazard`) and release/acquire orderings;
//! * [`EpochMsQueue`] — the same algorithm under crossbeam epoch-based
//!   reclamation (the third answer to the reclamation question, for the
//!   ablation benches);
//! * [`TwoLockQueue`] — `TwoLockQueue<T>` over `parking_lot` mutexes; and
//! * [`LockFreeStack`] — Treiber's stack (the paper's free-list
//!   algorithm) as a generic structure.
//!
//! Beyond the paper, the crate adds a segment-batched variant of the
//! non-blocking queue in both flavours:
//!
//! * [`SegQueue`] — heap-allocated `SegQueue<T>`: the Michael–Scott list
//!   where each node is a fixed-size array segment, so the link/unlink
//!   CASes amortize over `SegConfig::seg_size` operations; and
//! * [`WordSegQueue`] — the same algorithm over the `Platform`
//!   abstraction (arena-backed, tagged indices), so it runs inside the
//!   `msq-sim` coherence simulator next to the paper's six algorithms.
//!
//! Both flavours support **bulk operations** (`enqueue_batch` /
//! `dequeue_batch`) that amortize the contended link and index CASes over
//! whole segments, and both have a **sharded relaxed-FIFO front-end**
//! ([`ShardedQueue`] / [`WordShardedQueue`]) that stripes load across
//! independent sub-queues behind thread-affine dispatch (per-shard FIFO
//! only — see the `sharded` module docs for the weakened contract).
//!
//! # Quickstart
//!
//! ```
//! use msq_core::MsQueue;
//! use std::sync::Arc;
//!
//! let queue = Arc::new(MsQueue::new());
//! let producers: Vec<_> = (0..4)
//!     .map(|t| {
//!         let queue = Arc::clone(&queue);
//!         std::thread::spawn(move || {
//!             for i in 0..100 {
//!                 queue.enqueue((t, i));
//!             }
//!         })
//!     })
//!     .collect();
//! for p in producers {
//!     p.join().unwrap();
//! }
//! let mut count = 0;
//! while queue.dequeue().is_some() {
//!     count += 1;
//! }
//! assert_eq!(count, 400);
//! ```

#![warn(missing_docs)]

mod epoch_queue;
mod ms_queue;
mod repairable_two_lock;
mod seg_queue;
mod sharded;
pub mod spsc;
mod stack;
mod two_lock_queue;
mod word_ms;
mod word_seg;
mod word_two_lock;

pub use epoch_queue::EpochMsQueue;
pub use ms_queue::MsQueue;
pub use repairable_two_lock::RepairableTwoLockQueue;
pub use seg_queue::{SegConfig, SegQueue, SegStats};
pub use sharded::{ShardedQueue, WordShardedQueue, DEFAULT_SHARDS};
pub use spsc::channel as spsc_channel;
pub use stack::LockFreeStack;
pub use two_lock_queue::TwoLockQueue;
pub use word_ms::WordMsQueue;
pub use word_seg::WordSegQueue;
pub use word_two_lock::WordTwoLockQueue;
