//! Wall-clock numbers for the parallel simulator backends →
//! `BENCH_sim.json`.
//!
//! The simulator's *results* are virtual-time and host-independent; this
//! bench measures the only thing parallelism is allowed to change — how
//! long the host takes to produce them:
//!
//! 1. **Sweep dispatch**: a 16-seed `schedule_sweep_with` of the Section 4
//!    workload on the M&S queue, timed at 1 lane and at 4 lanes. Per-seed
//!    runs are independent, so on a host with >= 4 cores the 4-lane sweep
//!    should finish at least twice as fast. The acceptance flag is gated
//!    on `host_cores`: a 1- or 2-core machine cannot show the speedup and
//!    is not asked to (the recorded numbers are always the measured ones).
//! 2. **Frame-stepped backend identity at scale**: the same run at 64 and
//!    128 simulated processors, serial token backend vs the frame-stepped
//!    backend with 4 workers. The reports must be byte-identical; both
//!    host wall-clocks are recorded.
//! 3. **High-scale sweep completion**: a 32-seed sweep at 64 simulated
//!    processors runs to completion — the raised processor ceiling
//!    exercised end to end, with the per-sweep wall-clock printed.
//!
//! Run from the workspace root: `cargo run --release -p msq-bench --bin
//! simbench`. Writes `BENCH_sim.json` in the current directory. Pass
//! `--smoke` for a scaled-down CI sanity run (same cells, same shape).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use msq_harness::{run_simulated, Algorithm, WorkloadConfig};
use msq_sim::{schedule_sweep_with, SimConfig, SimReport, Simulation};

/// Seeds in the timed dispatch sweep.
const SWEEP_SEEDS: u64 = 16;
const SMOKE_SWEEP_SEEDS: u64 = 6;

/// Seeds in the high-scale completion sweep.
const HIGH_SCALE_SEEDS: u64 = 32;
const SMOKE_HIGH_SCALE_SEEDS: u64 = 8;

/// Pairs moved per sweep run (split across processes).
const SWEEP_PAIRS: u64 = 2_000;
const SMOKE_SWEEP_PAIRS: u64 = 400;

/// Frame-backend worker count for the identity cells (matches the CI
/// `MSQ_SIM_WORKERS=4` pass).
const FRAME_WORKERS: usize = 4;

/// One full run at `processors` with the given backend, returning the
/// report (for identity checks) and the host wall-clock.
fn scale_run(processors: usize, sim_workers: usize, pairs_per_proc: u64) -> (SimReport, f64) {
    let start = Instant::now();
    let sim = Simulation::new(SimConfig {
        processors,
        sim_workers: Some(sim_workers),
        ..SimConfig::default()
    });
    let platform = sim.platform();
    let queue = Algorithm::NewNonBlocking.build(&platform, 8_192);
    let report = sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            for i in 0..pairs_per_proc {
                let value = ((info.pid as u64) << 32) | i;
                while queue.enqueue(value).is_err() {}
                while queue.dequeue().is_none() {}
            }
        }
    });
    (report, start.elapsed().as_secs_f64())
}

/// Times one `schedule_sweep_with` dispatch of the Section 4 workload at
/// the given lane count, printing the per-sweep wall-clock.
fn timed_sweep(lanes: usize, seeds: u64, workload: &WorkloadConfig) -> f64 {
    let start = Instant::now();
    schedule_sweep_with(
        SimConfig {
            processors: 8,
            ..SimConfig::default()
        },
        seeds,
        lanes,
        |cfg| {
            run_simulated(Algorithm::NewNonBlocking, cfg, workload);
        },
    );
    let secs = start.elapsed().as_secs_f64();
    eprintln!("sweep {seeds} seeds x {lanes} lane(s): {secs:.3}s wall-clock");
    secs
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let (sweep_seeds, high_seeds, sweep_pairs) = if smoke {
        (SMOKE_SWEEP_SEEDS, SMOKE_HIGH_SCALE_SEEDS, SMOKE_SWEEP_PAIRS)
    } else {
        (SWEEP_SEEDS, HIGH_SCALE_SEEDS, SWEEP_PAIRS)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("host cores: {host_cores}");

    // --- Cell 1: sweep dispatch, 1 lane vs 4. ---
    let workload = WorkloadConfig {
        pairs_total: sweep_pairs,
        other_work_ns: 6_000,
        capacity: 4_096,
        mem_budget: None,
    };
    let serial_secs = timed_sweep(1, sweep_seeds, &workload);
    let parallel_secs = timed_sweep(4, sweep_seeds, &workload);
    let sweep_speedup = serial_secs / parallel_secs;
    eprintln!("sweep dispatch speedup at 4 lanes: {sweep_speedup:.2}x");

    // --- Cell 2: backend identity and wall-clock at 64/128 processors. ---
    let scale_pairs = if smoke { 8 } else { 25 };
    let mut scale_cells = Vec::new();
    let mut identical = true;
    for processors in [64_usize, 128] {
        let (serial_report, serial_wall) = scale_run(processors, 0, scale_pairs);
        let (frames_report, frames_wall) = scale_run(processors, FRAME_WORKERS, scale_pairs);
        let same = serial_report == frames_report;
        identical &= same;
        eprintln!(
            "{processors}p x {scale_pairs} pairs: serial {serial_wall:.3}s, \
             frame-stepped ({FRAME_WORKERS} workers) {frames_wall:.3}s, identical={same}"
        );
        scale_cells.push((
            processors,
            serial_report.elapsed_ns,
            serial_wall,
            frames_wall,
            same,
        ));
    }

    // --- Cell 3: the 32-seed sweep at 64 processors completes. ---
    let high_workload = WorkloadConfig {
        pairs_total: 64 * scale_pairs,
        other_work_ns: 6_000,
        capacity: 8_192,
        mem_budget: None,
    };
    let start = Instant::now();
    schedule_sweep_with(
        SimConfig {
            processors: 64,
            ..SimConfig::default()
        },
        high_seeds,
        4,
        |cfg| {
            run_simulated(Algorithm::NewNonBlocking, cfg, &high_workload);
        },
    );
    let high_scale_secs = start.elapsed().as_secs_f64();
    eprintln!("high-scale sweep ({high_seeds} seeds x 64p): {high_scale_secs:.3}s wall-clock");

    // --- Acceptance. ---
    // The >= 2x dispatch claim only stands on hosts that can run 4 lanes
    // on 4 cores; smaller machines record their measured number and pass
    // on the gate.
    let sweep_speedup_ok = sweep_speedup >= 2.0 || host_cores < 4;
    eprintln!(
        "acceptance: sweep_speedup_ok={sweep_speedup_ok} backend_identity={identical} \
         high_scale_completed=true"
    );

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"description\": \"parallel simulator backends: seed-sweep dispatch wall-clock (1 vs 4 lanes), frame-stepped backend identity and wall-clock at 64/128 processors, 32-seed sweep completion at 64 processors\","
    );
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"sweep\": {{");
    let _ = writeln!(json, "    \"seeds\": {sweep_seeds},");
    let _ = writeln!(json, "    \"workload_pairs\": {sweep_pairs},");
    let _ = writeln!(json, "    \"serial_secs\": {serial_secs:.4},");
    let _ = writeln!(json, "    \"four_lane_secs\": {parallel_secs:.4},");
    let _ = writeln!(json, "    \"speedup_at_4_lanes\": {sweep_speedup:.3}");
    json.push_str("  },\n  \"frame_backend\": [\n");
    for (i, (processors, elapsed_ns, serial_wall, frames_wall, same)) in
        scale_cells.iter().enumerate()
    {
        let _ = writeln!(
            json,
            "    {{\"processors\": {processors}, \"workers\": {FRAME_WORKERS}, \"elapsed_virtual_ns\": {elapsed_ns}, \"serial_wall_secs\": {serial_wall:.4}, \"frames_wall_secs\": {frames_wall:.4}, \"reports_identical\": {same}}}{}",
            if i + 1 == scale_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"high_scale_sweep\": {{\"seeds\": {high_seeds}, \"processors\": 64, \"wall_secs\": {high_scale_secs:.4}, \"completed\": true}},"
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"sweep_speedup_ok\": {sweep_speedup_ok}, \"backend_identity\": {identical}, \"high_scale_completed\": true}}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("{json}");
}
