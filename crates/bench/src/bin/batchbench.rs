//! Headline numbers for the bulk-splice and sharding extensions →
//! `BENCH_batch.json`.
//!
//! Three comparisons:
//!
//! 1. **Simulated coherence misses per enqueue** at 4 and 8 processors
//!    under maximum contention, for `new-nonblocking` (per-op),
//!    `seg-batched` (per-op), and `seg-batched` driven through
//!    `enqueue_batch` at batch 32. The batch path publishes a privately
//!    pre-filled segment chain with one link CAS (one value store per
//!    slot, the prefill word standing in for every slot state), so its
//!    misses/enqueue floor is the unavoidable data movement.
//! 2. **Simulated elapsed virtual time** of the batch-mode workload at 8
//!    processors: `sharded` (4 shards of seg-batched) vs a single
//!    `seg-batched`, plus `new-nonblocking` for scale. Sharding spreads
//!    the head/tail/index hot words across 4 sub-queues.
//! 3. **Native single-thread pairs/sec** at batch sizes 1/8/32/128 for
//!    `seg-batched` (real bulk paths) vs `new-nonblocking` (trait-default
//!    per-op loops), anchoring the per-op cost of the batch API.
//!
//! Run from the workspace root: `cargo run --release -p msq-bench --bin
//! batchbench`. Writes `BENCH_batch.json` in the current directory. Pass
//! `--smoke` for a scaled-down CI sanity run (same cells, same JSON
//! shape).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use msq_harness::{run_simulated_batched, Algorithm, WorkloadConfig};
use msq_platform::NativePlatform;
use msq_sim::{SimConfig, Simulation};

/// Values each simulated process enqueues in the misses/enqueue cells.
const SIM_ENQUEUES_PER_PROC: u64 = 512;
/// Pairs moved by the simulated batch-mode workload cells.
const SIM_WORKLOAD_PAIRS: u64 = 1_600;
/// Pairs for each native timing loop.
const NATIVE_PAIRS: u64 = 2_000_000;

const SMOKE_SIM_ENQUEUES_PER_PROC: u64 = 96;
const SMOKE_SIM_WORKLOAD_PAIRS: u64 = 320;
const SMOKE_NATIVE_PAIRS: u64 = 50_000;

/// Batch size the acceptance comparison uses.
const HEADLINE_BATCH: usize = 32;

struct EnqueueCell {
    algorithm: Algorithm,
    batch: usize,
    processors: usize,
    misses_per_enqueue: f64,
    cas_failures: u64,
}

/// Enqueue-only contention cell: every process pumps values in as fast as
/// it can (batch = 1 uses the plain per-op `enqueue`).
fn run_enqueue_cell(
    algorithm: Algorithm,
    processors: usize,
    batch: usize,
    enqueues_per_proc: u64,
) -> EnqueueCell {
    let sim = Simulation::new(SimConfig {
        processors,
        ..SimConfig::default()
    });
    // Capacity for every value plus headroom: the cell never dequeues.
    let capacity = (processors as u64 * enqueues_per_proc + 256) as u32;
    let queue = algorithm.build(&sim.platform(), capacity);
    let report = sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            let mut sent = 0u64;
            while sent < enqueues_per_proc {
                let b = (batch as u64).min(enqueues_per_proc - sent);
                if b == 1 {
                    let payload = ((info.pid as u64) << 32) | sent;
                    queue.enqueue(payload).unwrap();
                } else {
                    let values: Vec<u64> = (sent..sent + b)
                        .map(|i| ((info.pid as u64) << 32) | i)
                        .collect();
                    let mut rest: &[u64] = &values;
                    loop {
                        match queue.enqueue_batch(rest) {
                            Ok(()) => break,
                            Err(e) => rest = &rest[e.pushed..],
                        }
                    }
                }
                sent += b;
            }
        }
    });
    let enqueues = processors as u64 * enqueues_per_proc;
    EnqueueCell {
        algorithm,
        batch,
        processors,
        misses_per_enqueue: report.cache_misses as f64 / enqueues as f64,
        cas_failures: report.cas_failures,
    }
}

/// Native single-thread batch round-trip: enqueue a batch, drain it back.
fn native_batch_pairs_per_sec(algorithm: Algorithm, batch: usize, pairs: u64) -> f64 {
    let platform = NativePlatform::new();
    let queue = algorithm.build(&platform, 4_096);
    let values: Vec<u64> = (0..batch as u64).collect();
    let mut out: Vec<u64> = Vec::with_capacity(batch);
    // Warm up allocations and branch predictors.
    for _ in 0..(10_000 / batch.max(1)).max(1) {
        queue.enqueue_batch(&values).unwrap();
        queue.dequeue_batch(&mut out, batch);
        out.clear();
    }
    let rounds = pairs / batch as u64;
    let start = Instant::now();
    for _ in 0..rounds {
        queue.enqueue_batch(&values).unwrap();
        let mut taken = 0;
        while taken < batch {
            taken += queue.dequeue_batch(&mut out, batch - taken);
        }
        out.clear();
    }
    (rounds * batch as u64) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sim_enqueues, workload_pairs, native_pairs) = if smoke {
        (
            SMOKE_SIM_ENQUEUES_PER_PROC,
            SMOKE_SIM_WORKLOAD_PAIRS,
            SMOKE_NATIVE_PAIRS,
        )
    } else {
        (SIM_ENQUEUES_PER_PROC, SIM_WORKLOAD_PAIRS, NATIVE_PAIRS)
    };

    // --- Cell 1: misses per enqueue, per-op vs batch-32. ---
    let enqueue_contenders = [
        (Algorithm::NewNonBlocking, 1usize),
        (Algorithm::SegBatched, 1),
        (Algorithm::SegBatched, HEADLINE_BATCH),
    ];
    let mut enqueue_cells = Vec::new();
    for processors in [4usize, 8] {
        for (algorithm, batch) in enqueue_contenders {
            let cell = run_enqueue_cell(algorithm, processors, batch, sim_enqueues);
            eprintln!(
                "sim {}p {:<16} batch {:>3}: {:.2} misses/enqueue, {} CAS failures",
                processors,
                cell.algorithm.label(),
                cell.batch,
                cell.misses_per_enqueue,
                cell.cas_failures
            );
            enqueue_cells.push(cell);
        }
    }
    let find = |p: usize, a: Algorithm, b: usize| {
        enqueue_cells
            .iter()
            .find(|c| c.processors == p && c.algorithm == a && c.batch == b)
            .unwrap()
    };
    // The acceptance ratio: per-op seg-batched over batch-32 seg-batched.
    let batch_miss_ratio_8p = find(8, Algorithm::SegBatched, 1).misses_per_enqueue
        / find(8, Algorithm::SegBatched, HEADLINE_BATCH).misses_per_enqueue;
    let batch_miss_ratio_4p = find(4, Algorithm::SegBatched, 1).misses_per_enqueue
        / find(4, Algorithm::SegBatched, HEADLINE_BATCH).misses_per_enqueue;
    eprintln!(
        "batch-32 miss reduction: {batch_miss_ratio_4p:.2}x at 4p, {batch_miss_ratio_8p:.2}x at 8p"
    );

    // --- Cell 2: batch-mode workload, sharded vs single queue. ---
    let workload = WorkloadConfig {
        pairs_total: workload_pairs,
        other_work_ns: 0, // maximum contention: queue traffic only
        capacity: 4_096,
        mem_budget: None,
    };
    let workload_contenders = [
        Algorithm::Sharded,
        Algorithm::SegBatched,
        Algorithm::NewNonBlocking,
    ];
    let mut workload_cells = Vec::new();
    for algorithm in workload_contenders {
        let point = run_simulated_batched(
            algorithm,
            SimConfig {
                processors: 8,
                ..SimConfig::default()
            },
            &workload,
            HEADLINE_BATCH,
        );
        eprintln!(
            "sim 8p batch-{HEADLINE_BATCH} workload {:<16} {} virtual ns, {} CAS failures",
            algorithm.label(),
            point.elapsed_ns,
            point.cas_failures
        );
        workload_cells.push(point);
    }
    let sharded_speedup = workload_cells[1].elapsed_ns as f64 / workload_cells[0].elapsed_ns as f64;
    eprintln!("sharded speedup over seg-batched at 8p: {sharded_speedup:.2}x");

    // --- Cell 2b: batch-mode workload swept across processor counts, the
    // batch-aware analogue of the paper's Figure 3 x-axis. ---
    // The high points (64, 128) exercise the raised simulator ceiling;
    // `pairs_total` is a fixed budget split across processes, so they
    // cost no more virtual work than the low ones.
    let sweep_processors: &[usize] = if smoke {
        &[2, 4, 64]
    } else {
        &[1, 2, 4, 6, 8, 12, 64, 128]
    };
    let mut sweep_cells = Vec::new();
    for &processors in sweep_processors {
        for algorithm in workload_contenders {
            let point = run_simulated_batched(
                algorithm,
                SimConfig {
                    processors,
                    ..SimConfig::default()
                },
                &workload,
                HEADLINE_BATCH,
            );
            eprintln!(
                "sim {}p batch-{HEADLINE_BATCH} sweep {:<16} {} virtual ns",
                processors,
                algorithm.label(),
                point.elapsed_ns
            );
            sweep_cells.push(point);
        }
    }

    // --- Cell 3: native single-thread pairs/sec across batch sizes. ---
    let mut native_cells = Vec::new();
    for algorithm in [Algorithm::SegBatched, Algorithm::NewNonBlocking] {
        for batch in [1usize, 8, 32, 128] {
            let pps = native_batch_pairs_per_sec(algorithm, batch, native_pairs);
            eprintln!(
                "native {:<16} batch {:>3}: {:.0} pairs/sec",
                algorithm.label(),
                batch,
                pps
            );
            native_cells.push((algorithm, batch, pps));
        }
    }

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"description\": \"bulk segment-splice and sharded front-end; sim misses/enqueue and batch-workload virtual time at max contention, native single-thread pairs/sec by batch size\","
    );
    let _ = writeln!(json, "  \"sim_enqueues_per_proc\": {sim_enqueues},");
    let _ = writeln!(json, "  \"workload_pairs\": {workload_pairs},");
    let _ = writeln!(json, "  \"headline_batch\": {HEADLINE_BATCH},");
    json.push_str("  \"sim_enqueue\": [\n");
    for (i, cell) in enqueue_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"batch\": {}, \"processors\": {}, \"misses_per_enqueue\": {:.3}, \"cas_failures\": {}}}{}",
            cell.algorithm.label(),
            cell.batch,
            cell.processors,
            cell.misses_per_enqueue,
            cell.cas_failures,
            if i + 1 == enqueue_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"batch32_miss_reduction_over_per_op\": {{\"4\": {batch_miss_ratio_4p:.2}, \"8\": {batch_miss_ratio_8p:.2}}},"
    );
    json.push_str("  \"sim_batch_workload_8p\": [\n");
    for (i, point) in workload_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"elapsed_virtual_ns\": {}, \"net_virtual_ns\": {}, \"cas_failures\": {}, \"miss_rate\": {:.4}}}{}",
            point.algorithm.label(),
            point.elapsed_ns,
            point.net_ns,
            point.cas_failures,
            point.miss_rate,
            if i + 1 == workload_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sharded_speedup_over_seg_batched_8p\": {sharded_speedup:.2},"
    );
    json.push_str("  \"sim_batch_workload_sweep\": [\n");
    for (i, point) in sweep_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"processors\": {}, \"elapsed_virtual_ns\": {}, \"net_virtual_ns\": {}, \"cas_failures\": {}, \"miss_rate\": {:.4}}}{}",
            point.algorithm.label(),
            point.processors,
            point.elapsed_ns,
            point.net_ns,
            point.cas_failures,
            point.miss_rate,
            if i + 1 == sweep_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"native_single_thread\": [\n");
    for (i, (algorithm, batch, pps)) in native_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"batch\": {}, \"pairs_per_sec\": {:.0}}}{}",
            algorithm.label(),
            batch,
            pps,
            if i + 1 == native_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("{json}");
}
