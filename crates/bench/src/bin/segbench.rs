//! Headline numbers for the seg-batched extension → `BENCH_segqueue.json`.
//!
//! Two comparisons of `seg-batched` (the segment-batched MS queue) against
//! `new-nonblocking` (the paper's Figure 1 queue):
//!
//! 1. **Simulated coherence misses per queue operation** on the
//!    deterministic multiprocessor at 4, 8, 64, and 128 processors under
//!    maximum contention (no other work). This is the host-independent metric: a
//!    `fetch_add` slot claim always succeeds, so the seg-batched fast path
//!    avoids the failed-CAS re-read traffic the pointer-linked queue pays.
//! 2. **Native throughput** of an enqueue/dequeue pair, single-threaded
//!    (this is a per-op cost anchor; on a multicore host the contended
//!    gap is what the simulator predicts).
//!
//! Run from the workspace root: `cargo run --release -p msq-bench --bin
//! segbench`. Writes `BENCH_segqueue.json` in the current directory.
//! Pass `--smoke` for a scaled-down CI sanity run (same cells, same JSON
//! shape, sizes small enough for a debug-speed machine).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use msq_harness::Algorithm;
use msq_platform::NativePlatform;
use msq_sim::{SimConfig, Simulation};

/// Queue-op pairs each simulated process performs.
const SIM_PAIRS_PER_PROC: u64 = 200;
/// Scaled-down sizes for `--smoke` (CI sanity run; same shape, same JSON).
const SMOKE_SIM_PAIRS_PER_PROC: u64 = 50;
const SMOKE_NATIVE_PAIRS: u64 = 50_000;
/// Ops per burst: each process alternates bursts of enqueues and
/// dequeues, the shape batching is designed for (a strict
/// enqueue-one-dequeue-one ping-pong keeps the queue empty, so every
/// dequeuer immediately chases the slot its neighbour just claimed).
const BURST: u64 = 25;
/// Pairs for the native timing loop.
const NATIVE_PAIRS: u64 = 2_000_000;

/// Simulated processor counts swept. The two high points exercise the
/// raised simulator ceiling; per-process work shrinks there so total op
/// counts stay comparable.
const SIM_PROCESSORS: [usize; 4] = [4, 8, 64, 128];

/// Per-process pairs for a cell: one burst per process at the high
/// processor counts (64 x 25 pairs already moves more values than
/// 8 x 200), the full sweep size below.
fn cell_pairs(processors: usize, sim_pairs: u64) -> u64 {
    if processors >= 64 {
        BURST
    } else {
        sim_pairs
    }
}

struct SimCell {
    algorithm: Algorithm,
    processors: usize,
    misses_per_op: f64,
    cas_failures: u64,
    elapsed_virtual_ns: u64,
}

fn run_sim_cell(algorithm: Algorithm, processors: usize, pairs_per_proc: u64) -> SimCell {
    let sim = Simulation::new(SimConfig {
        processors,
        ..SimConfig::default()
    });
    let queue = algorithm.build(&sim.platform(), 4_096);
    let report = sim.run({
        let queue = Arc::clone(&queue);
        move |info| {
            for round in 0..pairs_per_proc / BURST {
                for i in 0..BURST {
                    let payload = ((info.pid as u64) << 32) | (round * BURST + i);
                    queue.enqueue(payload).unwrap();
                }
                for _ in 0..BURST {
                    while queue.dequeue().is_none() {}
                }
            }
        }
    });
    let queue_ops = 2 * pairs_per_proc * processors as u64;
    SimCell {
        algorithm,
        processors,
        misses_per_op: report.cache_misses as f64 / queue_ops as f64,
        cas_failures: report.cas_failures,
        elapsed_virtual_ns: report.elapsed_ns,
    }
}

fn native_pairs_per_sec(algorithm: Algorithm, pairs: u64) -> f64 {
    let platform = NativePlatform::new();
    let queue = algorithm.build(&platform, 4_096);
    // Warm up allocations and branch predictors.
    for i in 0..10_000_u64 {
        queue.enqueue(i).unwrap();
        queue.dequeue();
    }
    let start = Instant::now();
    for i in 0..pairs {
        queue.enqueue(i).unwrap();
        std::hint::black_box(queue.dequeue());
    }
    pairs as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sim_pairs, native_pairs) = if smoke {
        (SMOKE_SIM_PAIRS_PER_PROC, SMOKE_NATIVE_PAIRS)
    } else {
        (SIM_PAIRS_PER_PROC, NATIVE_PAIRS)
    };
    let contenders = [Algorithm::NewNonBlocking, Algorithm::SegBatched];

    let mut sim_cells = Vec::new();
    for processors in SIM_PROCESSORS {
        for algorithm in contenders {
            let cell = run_sim_cell(algorithm, processors, cell_pairs(processors, sim_pairs));
            eprintln!(
                "sim {}p {:<16} {:.2} misses/op, {} CAS failures, {} virtual ns",
                processors,
                cell.algorithm.label(),
                cell.misses_per_op,
                cell.cas_failures,
                cell.elapsed_virtual_ns
            );
            sim_cells.push(cell);
        }
    }

    let mut native = Vec::new();
    for algorithm in contenders {
        let pairs_per_sec = native_pairs_per_sec(algorithm, native_pairs);
        eprintln!(
            "native {:<16} {:.0} pairs/sec",
            algorithm.label(),
            pairs_per_sec
        );
        native.push((algorithm, pairs_per_sec));
    }

    // Ratios the acceptance criteria care about: seg-batched must show
    // >= 2x fewer misses per op than the pointer-linked queue.
    let mut ratios = Vec::new();
    for processors in SIM_PROCESSORS {
        let ms = sim_cells
            .iter()
            .find(|c| c.processors == processors && c.algorithm == Algorithm::NewNonBlocking)
            .unwrap();
        let seg = sim_cells
            .iter()
            .find(|c| c.processors == processors && c.algorithm == Algorithm::SegBatched)
            .unwrap();
        let ratio = ms.misses_per_op / seg.misses_per_op;
        eprintln!("sim {processors}p miss ratio (ms/seg): {ratio:.2}x");
        ratios.push((processors, ratio));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"description\": \"seg-batched vs new-nonblocking; sim misses/op at max contention, native single-thread pairs/sec\","
    );
    let _ = writeln!(json, "  \"sim_pairs_per_proc\": {sim_pairs},");
    json.push_str("  \"sim\": [\n");
    for (i, cell) in sim_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"processors\": {}, \"misses_per_op\": {:.3}, \"cas_failures\": {}, \"elapsed_virtual_ns\": {}}}{}",
            cell.algorithm.label(),
            cell.processors,
            cell.misses_per_op,
            cell.cas_failures,
            cell.elapsed_virtual_ns,
            if i + 1 == sim_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"miss_ratio_ms_over_seg\": {");
    for (i, (processors, ratio)) in ratios.iter().enumerate() {
        let _ = write!(
            json,
            "\"{processors}\": {ratio:.2}{}",
            if i + 1 == ratios.len() { "" } else { ", " }
        );
    }
    json.push_str("},\n");
    json.push_str("  \"native_single_thread\": [\n");
    for (i, (algorithm, pairs_per_sec)) in native.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"pairs_per_sec\": {:.0}}}{}",
            algorithm.label(),
            pairs_per_sec,
            if i + 1 == native.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_segqueue.json", &json).expect("write BENCH_segqueue.json");
    println!("{json}");
}
