//! Scenario-engine acceptance numbers for the three workload shapes
//! beyond the paper's → `BENCH_scenario.json`.
//!
//! The composable scenario engine (DESIGN.md §14) lets one driver run
//! pluggable workload shapes; this bench sweeps the three shipped
//! non-paper shapes over every contender (the paper's six plus the two
//! extensions):
//!
//! 1. **Work-stealing**: every worker owns a queue, half of them seed
//!    the task pool (deliberately imbalanced), and idle workers steal in
//!    deterministic round-robin order. Reported: elapsed/net time and
//!    the steal count — which must be load-bearing (the non-owning half
//!    has nothing *but* stolen work).
//! 2. **Fan-out/fan-in pipeline**: three stages over two inter-stage
//!    queues, with per-stage conservation checked (every stage handles
//!    every item exactly once).
//! 3. **Open-loop bursty arrivals**: producers pace a seeded
//!    Poisson-like schedule in virtual time and stamp arrival times into
//!    the items; consumers report enqueue-to-dequeue latency. Swept over
//!    three mean inter-arrival gaps straddling the consumers' service
//!    capacity, so the JSON shows the open-loop signature the
//!    closed-loop throughput sweeps structurally cannot: when offered
//!    load crosses capacity, the p50/p95/p99 latency percentiles grow
//!    while throughput stays pinned at the arrival rate.
//!
//! Run from the workspace root: `cargo run --release -p msq-bench --bin
//! scenariobench`. Writes `BENCH_scenario.json` in the current
//! directory. Pass `--smoke` for a scaled-down CI sanity run (same
//! cells, same shape).

use std::fmt::Write as _;

use msq_harness::{
    run_scenario_simulated, Algorithm, OpenLoopScenario, PipelineScenario, ScenarioOutcome,
    StealingScenario, WorkloadConfig,
};
use msq_sim::{FaultPlan, SimConfig};

/// Simulated processors (dedicated: one process each, as in Figure 3's
/// machine model).
const PROCESSORS: usize = 4;

/// Items moved per run (tasks / pipeline items / open-loop arrivals).
const ITEMS: u64 = 1_600;
const SMOKE_ITEMS: u64 = 320;

/// The paper's ~6 µs of per-item work (task execution, stage work, or
/// open-loop service time).
const OTHER_WORK_NS: u64 = 6_000;

/// Pipeline depth: one generator stage, one interior stage, one
/// consumer stage, connected by two queues.
const STAGES: usize = 3;

/// Open-loop mean inter-arrival gaps per producer, in virtual
/// nanoseconds. With 2 producers (gap/2 aggregate, ~3/4 burst factor)
/// and 2 consumers serving 6 µs each (one item per 3 µs aggregate), the
/// three points straddle saturation: overloaded, critical, and ~50%
/// utilization.
const MEAN_GAPS_NS: [u64; 3] = [4_000, 8_000, 16_000];

/// Arrival-schedule seed for the open-loop sweep.
const OPEN_LOOP_SEED: u64 = 42;

fn workload(items: u64) -> WorkloadConfig {
    WorkloadConfig {
        pairs_total: items,
        other_work_ns: OTHER_WORK_NS,
        capacity: 4_096,
        mem_budget: None,
    }
}

fn config() -> SimConfig {
    SimConfig {
        processors: PROCESSORS,
        ..SimConfig::default()
    }
}

struct OpenLoopCell {
    algorithm: Algorithm,
    mean_gap_ns: u64,
    outcome: ScenarioOutcome,
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let items = if smoke { SMOKE_ITEMS } else { ITEMS };

    // --- Cell 1: the work-stealing sweep. ---
    let mut stealing: Vec<(Algorithm, ScenarioOutcome)> = Vec::new();
    for algorithm in Algorithm::WITH_EXTENSIONS {
        eprintln!("running stealing  {}...", algorithm.label());
        let out = run_scenario_simulated(
            algorithm,
            config(),
            StealingScenario {
                workload: workload(items),
            },
            FaultPlan::new(),
        );
        eprintln!(
            "stealing  {:<16} elapsed {:>12} ns  net {:>12} ns  {:>5} steals  {} tasks",
            algorithm.label(),
            out.point.point.elapsed_ns,
            out.point.point.net_ns,
            out.tallies[StealingScenario::STEALS],
            out.point.pairs_completed
        );
        stealing.push((algorithm, out));
    }

    // --- Cell 2: the pipeline sweep. ---
    let mut pipeline: Vec<(Algorithm, ScenarioOutcome)> = Vec::new();
    for algorithm in Algorithm::WITH_EXTENSIONS {
        eprintln!("running pipeline  {}...", algorithm.label());
        let out = run_scenario_simulated(
            algorithm,
            config(),
            PipelineScenario {
                workload: workload(items),
                stages: STAGES,
            },
            FaultPlan::new(),
        );
        eprintln!(
            "pipeline  {:<16} elapsed {:>12} ns  net {:>12} ns  stage tallies {:?}",
            algorithm.label(),
            out.point.point.elapsed_ns,
            out.point.point.net_ns,
            out.tallies
        );
        pipeline.push((algorithm, out));
    }

    // --- Cell 3: the open-loop latency sweep. ---
    let mut open_loop: Vec<OpenLoopCell> = Vec::new();
    for algorithm in Algorithm::WITH_EXTENSIONS {
        for mean_gap_ns in MEAN_GAPS_NS {
            eprintln!(
                "running open-loop {} gap {}...",
                algorithm.label(),
                mean_gap_ns
            );
            let outcome = run_scenario_simulated(
                algorithm,
                config(),
                OpenLoopScenario {
                    workload: workload(items),
                    mean_gap_ns,
                    seed: OPEN_LOOP_SEED,
                },
                FaultPlan::new(),
            );
            eprintln!(
                "open-loop {:<16} gap {:>6} ns  p50 {:>9?} ns  p95 {:>9?} ns  p99 {:>9?} ns  ({} samples)",
                algorithm.label(),
                mean_gap_ns,
                outcome.latency_percentile_ns(50.0).unwrap_or(0),
                outcome.latency_percentile_ns(95.0).unwrap_or(0),
                outcome.latency_percentile_ns(99.0).unwrap_or(0),
                outcome.latencies_ns.len()
            );
            open_loop.push(OpenLoopCell {
                algorithm,
                mean_gap_ns,
                outcome,
            });
        }
    }
    let p_of = |alg: Algorithm, gap: u64, pct: f64| {
        open_loop
            .iter()
            .find(|c| c.algorithm == alg && c.mean_gap_ns == gap)
            .expect("open-loop cell")
            .outcome
            .latency_percentile_ns(pct)
            .expect("latency samples")
    };

    // --- Acceptance. ---
    // Every contender finishes the whole task pool with every worker
    // queue drained, and with a strictly positive steal count — half the
    // workers own no tasks, so a zero steal count would mean the steal
    // path never ran and conservation could not have held.
    let stealing_conserves = stealing
        .iter()
        .all(|(_, o)| o.point.pairs_completed == items && o.point.drained == Some(0));
    let stealing_is_load_bearing = stealing
        .iter()
        .all(|(_, o)| o.tallies[StealingScenario::STEALS] > 0);
    // Every stage of every pipeline run handles every item exactly once
    // (the scenario's own conservation check panics otherwise; the flag
    // re-asserts it from the committed tallies).
    let pipeline_conserves_per_stage = pipeline
        .iter()
        .all(|(_, o)| o.tallies.iter().all(|&t| t == items) && o.point.drained == Some(0));
    // Every open-loop cell yields one latency sample per arrival and an
    // internally ordered percentile triple.
    let open_loop_full_samples = open_loop
        .iter()
        .all(|c| c.outcome.latencies_ns.len() as u64 == items);
    let open_loop_percentiles_ordered = open_loop.iter().all(|c| {
        let (p50, p95, p99) = (
            p_of(c.algorithm, c.mean_gap_ns, 50.0),
            p_of(c.algorithm, c.mean_gap_ns, 95.0),
            p_of(c.algorithm, c.mean_gap_ns, 99.0),
        );
        p50 <= p95 && p95 <= p99
    });
    // The open-loop signature: overloading the consumers (the tightest
    // gap) must cost more tail latency than ~50% utilization (the
    // loosest), for every contender.
    let (tight, loose) = (MEAN_GAPS_NS[0], MEAN_GAPS_NS[2]);
    let open_loop_latency_grows_under_load = Algorithm::WITH_EXTENSIONS
        .into_iter()
        .all(|a| p_of(a, tight, 95.0) > p_of(a, loose, 95.0));
    eprintln!(
        "acceptance: stealing_conserves={stealing_conserves} \
         stealing_is_load_bearing={stealing_is_load_bearing} \
         pipeline_conserves_per_stage={pipeline_conserves_per_stage} \
         open_loop_full_samples={open_loop_full_samples} \
         open_loop_percentiles_ordered={open_loop_percentiles_ordered} \
         open_loop_latency_grows_under_load={open_loop_latency_grows_under_load}"
    );

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"description\": \"composable scenario engine: work-stealing, fan-out/fan-in pipeline, and open-loop bursty-arrival latency sweeps over all eight contenders on the deterministic simulator\","
    );
    let _ = writeln!(json, "  \"processors\": {PROCESSORS},");
    let _ = writeln!(json, "  \"items\": {items},");
    let _ = writeln!(json, "  \"other_work_ns\": {OTHER_WORK_NS},");
    json.push_str("  \"stealing\": [\n");
    for (i, (alg, o)) in stealing.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"nonblocking\": {}, \"elapsed_virtual_ns\": {}, \"net_virtual_ns\": {}, \"steals\": {}, \"tasks_completed\": {}, \"drained\": {}}}{}",
            alg.label(),
            alg.is_nonblocking(),
            o.point.point.elapsed_ns,
            o.point.point.net_ns,
            o.tallies[StealingScenario::STEALS],
            o.point.pairs_completed,
            o.point
                .drained
                .map_or_else(|| "null".into(), |d| d.to_string()),
            if i + 1 == stealing.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"pipeline_stages\": {STAGES},");
    json.push_str("  \"pipeline\": [\n");
    for (i, (alg, o)) in pipeline.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"nonblocking\": {}, \"elapsed_virtual_ns\": {}, \"net_virtual_ns\": {}, \"stage_tallies\": {:?}, \"drained\": {}}}{}",
            alg.label(),
            alg.is_nonblocking(),
            o.point.point.elapsed_ns,
            o.point.point.net_ns,
            o.tallies,
            o.point
                .drained
                .map_or_else(|| "null".into(), |d| d.to_string()),
            if i + 1 == pipeline.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"open_loop_seed\": {OPEN_LOOP_SEED},");
    let _ = writeln!(json, "  \"open_loop_mean_gaps_ns\": {MEAN_GAPS_NS:?},");
    json.push_str("  \"open_loop\": [\n");
    for (i, c) in open_loop.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"nonblocking\": {}, \"mean_gap_ns\": {}, \"samples\": {}, \"p50_latency_virtual_ns\": {}, \"p95_latency_virtual_ns\": {}, \"p99_latency_virtual_ns\": {}, \"elapsed_virtual_ns\": {}}}{}",
            c.algorithm.label(),
            c.algorithm.is_nonblocking(),
            c.mean_gap_ns,
            c.outcome.latencies_ns.len(),
            p_of(c.algorithm, c.mean_gap_ns, 50.0),
            p_of(c.algorithm, c.mean_gap_ns, 95.0),
            p_of(c.algorithm, c.mean_gap_ns, 99.0),
            c.outcome.point.point.elapsed_ns,
            if i + 1 == open_loop.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"stealing_conserves\": {stealing_conserves}, \"stealing_is_load_bearing\": {stealing_is_load_bearing}, \"pipeline_conserves_per_stage\": {pipeline_conserves_per_stage}, \"open_loop_full_samples\": {open_loop_full_samples}, \"open_loop_percentiles_ordered\": {open_loop_percentiles_ordered}, \"open_loop_latency_grows_under_load\": {open_loop_latency_grows_under_load}}}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_scenario.json", &json).expect("write BENCH_scenario.json");
    println!("{json}");
}
