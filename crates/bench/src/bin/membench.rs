//! Memory-budget acceptance numbers for the global reclamation bound →
//! `BENCH_mem.json`.
//!
//! Three cells:
//!
//! 1. **Budgeted vs unbudgeted batch-mode workload** for `seg-batched` at
//!    4 and 8 simulated processors (batch 32, the paper's ~6 µs "other
//!    work" per operation): the budgeted run must keep peak resident
//!    segments at or under the budget while staying within ~10% of the
//!    unbudgeted virtual time — a generous budget only meters, it never
//!    denies. Metering costs one extra coherence transaction per segment
//!    transition (a CAS on the shared `reserved` word), so it amortizes
//!    over the paper's workload; a zero-other-work microbench would
//!    instead measure that word's ping-pong (see `batchbench` for the
//!    max-contention regime).
//! 2. **Sharded under the same budget** at 8 processors: all shards
//!    reserve against one budget, so the bound is process-global, not
//!    per-queue.
//! 3. **Tiny-budget denial/recovery**: a queue on a 4-segment budget is
//!    driven into exhaustion (`QueueFull` backpressure, denials counted),
//!    drained, and must accept values again — the bound is enforced *and*
//!    recoverable, with no values lost.
//!
//! Run from the workspace root: `cargo run --release -p msq-bench --bin
//! membench`. Writes `BENCH_mem.json` in the current directory. Pass
//! `--smoke` for a scaled-down CI sanity run (same cells, same JSON
//! shape) and `--mem-budget N` to override the headline budget.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use msq_arena::MemBudget;
use msq_core::WordSegQueue;
use msq_harness::{run_simulated_batched, Algorithm, MeasuredPoint, WorkloadConfig};
use msq_platform::{ConcurrentWordQueue, QueueFull};
use msq_sim::{SimConfig, Simulation};

/// Pairs moved by the simulated batch-mode workload cells.
const SIM_WORKLOAD_PAIRS: u64 = 1_600;
const SMOKE_SIM_WORKLOAD_PAIRS: u64 = 320;

/// Batch size the acceptance comparison uses (matches `batchbench`).
const HEADLINE_BATCH: usize = 32;

/// Headline segment budget: generous enough that a well-behaved workload
/// never gets denied (the acceptance criterion is metering overhead, not
/// starvation behaviour — cell 3 covers starvation).
const DEFAULT_BUDGET: u64 = 48;

/// Budget for the denial/recovery cell, in segments.
const TINY_BUDGET: u64 = 4;

fn workload_cell(
    algorithm: Algorithm,
    processors: usize,
    pairs: u64,
    mem_budget: Option<u64>,
) -> MeasuredPoint {
    run_simulated_batched(
        algorithm,
        SimConfig {
            processors,
            ..SimConfig::default()
        },
        &WorkloadConfig {
            pairs_total: pairs,
            other_work_ns: 6_000, // the paper's Section 4 workload
            capacity: 4_096,
            mem_budget,
        },
        HEADLINE_BATCH,
    )
}

struct TinyCell {
    accepted_before_full: u64,
    denials: u64,
    peak_resident_segments: u64,
    recovered: bool,
}

/// Drives one simulated process into budget exhaustion and back out.
fn tiny_budget_cell() -> TinyCell {
    let sim = Simulation::new(SimConfig {
        processors: 2,
        ..SimConfig::default()
    });
    let platform = sim.platform();
    let budget = Arc::new(MemBudget::new(&platform, TINY_BUDGET));
    let queue = Arc::new(WordSegQueue::with_capacity_and_budget(
        &platform,
        4_096,
        Arc::clone(&budget),
    ));
    let accepted = Arc::new(AtomicU64::new(0));
    let recovered = Arc::new(AtomicBool::new(false));
    sim.run({
        let queue = Arc::clone(&queue);
        let accepted = Arc::clone(&accepted);
        let recovered = Arc::clone(&recovered);
        move |info| {
            if info.pid != 0 {
                return;
            }
            let mut sent = 0u64;
            loop {
                match queue.enqueue(sent) {
                    Ok(()) => sent += 1,
                    Err(QueueFull(v)) => {
                        assert_eq!(v, sent, "the rejected value must come back intact");
                        break;
                    }
                }
            }
            accepted.store(sent, Ordering::Relaxed);
            for i in 0..sent {
                assert_eq!(queue.dequeue(), Some(i), "no value may be lost");
            }
            recovered.store(queue.enqueue(u64::MAX).is_ok(), Ordering::Relaxed);
            queue.dequeue();
        }
    });
    TinyCell {
        accepted_before_full: accepted.load(Ordering::Relaxed),
        denials: budget.denials(),
        peak_resident_segments: budget.peak(),
        recovered: recovered.load(Ordering::Relaxed),
    }
}

fn json_opt(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let budget = args
        .iter()
        .position(|a| a == "--mem-budget")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--mem-budget takes a segment count")
        })
        .unwrap_or(DEFAULT_BUDGET);
    let pairs = if smoke {
        SMOKE_SIM_WORKLOAD_PAIRS
    } else {
        SIM_WORKLOAD_PAIRS
    };

    // --- Cells 1 & 2: budgeted vs unbudgeted workload. ---
    let mut cells = Vec::new();
    for (algorithm, processors) in [
        (Algorithm::SegBatched, 4usize),
        (Algorithm::SegBatched, 8),
        (Algorithm::Sharded, 8),
    ] {
        let unbudgeted = workload_cell(algorithm, processors, pairs, None);
        let budgeted = workload_cell(algorithm, processors, pairs, Some(budget));
        let ratio = budgeted.elapsed_ns as f64 / unbudgeted.elapsed_ns as f64;
        let peak = budgeted.peak_resident_segments.unwrap_or(0);
        eprintln!(
            "sim {}p batch-{HEADLINE_BATCH} {:<12} budget {budget}: peak {peak} segs, \
             {} denials, time ratio {ratio:.3} ({} -> {} virtual ns)",
            processors,
            algorithm.label(),
            budgeted.budget_denials.unwrap_or(0),
            unbudgeted.elapsed_ns,
            budgeted.elapsed_ns
        );
        cells.push((unbudgeted, budgeted, ratio));
    }

    // --- Cell 3: tiny-budget denial and recovery. ---
    let tiny = tiny_budget_cell();
    eprintln!(
        "tiny budget {TINY_BUDGET}: {} accepted before QueueFull, {} denials, peak {} segs, \
         recovered: {}",
        tiny.accepted_before_full, tiny.denials, tiny.peak_resident_segments, tiny.recovered
    );

    // --- Acceptance summary. ---
    let peak_ok = cells
        .iter()
        .all(|(_, b, _)| b.peak_resident_segments.unwrap_or(u64::MAX) <= budget);
    // The ≤10% overhead criterion is for the full-size run; at smoke
    // scale fixed startup costs dominate the few hundred pairs, so the
    // smoke bound only guards against gross regressions.
    let time_bound = if smoke { 1.25 } else { 1.10 };
    let time_ok = cells.iter().all(|(_, _, r)| *r <= time_bound);
    let tiny_ok = tiny.denials > 0 && tiny.peak_resident_segments <= TINY_BUDGET && tiny.recovered;
    eprintln!(
        "acceptance: peak_within_budget={peak_ok} time_within_bound({time_bound})={time_ok} \
         tiny_budget_enforced_and_recovered={tiny_ok}"
    );

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"description\": \"global segment-residency budget: budgeted vs unbudgeted batch workload (peak resident segments, virtual-time ratio), plus tiny-budget denial/recovery\","
    );
    let _ = writeln!(json, "  \"workload_pairs\": {pairs},");
    let _ = writeln!(json, "  \"headline_batch\": {HEADLINE_BATCH},");
    let _ = writeln!(json, "  \"mem_budget\": {budget},");
    json.push_str("  \"budgeted_workload\": [\n");
    for (i, (unbudgeted, budgeted, ratio)) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"processors\": {}, \"unbudgeted_elapsed_virtual_ns\": {}, \"budgeted_elapsed_virtual_ns\": {}, \"time_ratio\": {:.4}, \"peak_resident_segments\": {}, \"budget_denials\": {}, \"miss_rate\": {:.4}}}{}",
            budgeted.algorithm.label(),
            budgeted.processors,
            unbudgeted.elapsed_ns,
            budgeted.elapsed_ns,
            ratio,
            json_opt(budgeted.peak_resident_segments),
            json_opt(budgeted.budget_denials),
            budgeted.miss_rate,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"tiny_budget\": {{\"budget\": {TINY_BUDGET}, \"accepted_before_full\": {}, \"denials\": {}, \"peak_resident_segments\": {}, \"recovered\": {}}},",
        tiny.accepted_before_full, tiny.denials, tiny.peak_resident_segments, tiny.recovered
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"peak_within_budget\": {peak_ok}, \"time_ratio_bound\": {time_bound}, \"time_within_bound\": {time_ok}, \"tiny_budget_enforced_and_recovered\": {tiny_ok}}}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_mem.json", &json).expect("write BENCH_mem.json");
    println!("{json}");
}
