//! Fault-injection acceptance numbers for the progress guarantees →
//! `BENCH_fault.json`.
//!
//! The paper's core robustness claim (Section 1, borne out by Figures 4–5)
//! is that a non-blocking queue keeps making global progress when a
//! process is halted in the middle of its operation, while lock-based
//! queues make everyone wait. This bench turns the claim into numbers:
//!
//! 1. **Stall sweep**: for each of the paper's six algorithms, process 0
//!    is deterministically stalled at the algorithm's *enqueue critical
//!    window* (`Algorithm::enqueue_fault_label`) for 0 / 100 µs / 400 µs /
//!    1.6 ms, several times over the run. The reported metric is
//!    **survivor completion time** — the virtual time at which the last
//!    *non-victim* process finishes its share. Non-blocking queues must
//!    stay flat (survivors sail past the stalled victim, helping its
//!    half-done enqueue along); the single-lock and Mellor-Crummey queues
//!    collapse by roughly (number of stalls) x (stall length), because
//!    every survivor waits out every stall — the Figure 4–5 ordering.
//! 2. **Death cells**: process 0 is *killed* inside the same window. On
//!    the new non-blocking queue every survivor completes and the queue
//!    drains (one stranded value from the victim's linearized enqueue);
//!    on the single-lock queue the virtual-time watchdog reports the
//!    survivors permanently blocked — the expected, asserted outcome.
//!
//! The stall comparison is repeated at 64 processors (the raised
//! simulator ceiling) for the three headline algorithms, and the
//! Figure 4–5 ordering is asserted there as well. Two later cells extend
//! the death story: **Cell 3** layers restart-and-catch-up recovery on
//! every contender (survivable windows absorb the victim's residual
//! share; held-lock windows watchdog), and **Cell 4** reruns the
//! held-lock deaths on the *repairable* builds (DESIGN.md §13), where a
//! waiter revokes the dead holder's lock and repairs the torn invariant
//! — reported as **time-to-repair**, with no lock queue left
//! watchdog-blocked.
//!
//! Run from the workspace root: `cargo run --release -p msq-bench --bin
//! faultbench`. Writes `BENCH_fault.json` in the current directory. Pass
//! `--smoke` for a scaled-down CI sanity run (same cells, same shape).

use std::fmt::Write as _;
use std::sync::Arc;

use msq_harness::{
    run_simulated_faulted, run_simulated_recovered, run_simulated_repaired, Algorithm,
    WorkloadConfig,
};
use msq_platform::Platform;
use msq_sim::{FaultPlan, RecoveryPolicy, SimConfig, Simulation};

/// Simulated processors (dedicated: one process each, as in Figure 3's
/// machine model — the *faults* supply the adverse scheduling here).
const PROCESSORS: usize = 4;

/// High-scale repeat of the headline cells: the same victim stalls with
/// 63 survivors instead of 3, exercising the raised simulator ceiling.
/// The Figure 4–5 ordering must hold there too.
const PROCESSORS_HIGH: usize = 64;

/// Enqueue/dequeue pairs across all processes.
const PAIRS: u64 = 1_600;
const SMOKE_PAIRS: u64 = 320;

/// The paper's ~6 µs of "other work" between queue operations.
const OTHER_WORK_NS: u64 = 6_000;

/// Stalls injected per run, and the victim's window-hit stride between
/// them (occurrences 0, 8, 16, 24 of the critical-window label).
const NUM_STALLS: u64 = 4;
const STALL_STRIDE: u64 = 8;

/// Stall lengths swept, in virtual nanoseconds.
const STALL_LENGTHS: [u64; 4] = [0, 100_000, 400_000, 1_600_000];

/// Virtual-time watchdog for the death cells (far above any faultless
/// completion time at these scales).
const WATCHDOG_NS: u64 = 400_000_000;

struct StallCell {
    algorithm: Algorithm,
    stall_ns: u64,
    elapsed_ns: u64,
    survivor_completion_ns: u64,
    stalls_fired: u64,
}

/// One stall-sweep run: pid 0 stalls `NUM_STALLS` times at the
/// algorithm's enqueue critical window; everyone runs the Section 4
/// workload. Returns survivor (non-victim) completion alongside elapsed.
fn stall_cell(algorithm: Algorithm, pairs: u64, stall_ns: u64) -> StallCell {
    stall_cell_at(
        algorithm,
        PROCESSORS,
        pairs,
        stall_ns,
        algorithm.enqueue_fault_label(),
    )
}

/// The dequeue-side twin: pid 0 stalls at the algorithm's *dequeue*
/// critical window instead. The collapser set differs from the enqueue
/// sweep — Mellor-Crummey's dequeue window (Head swung, old dummy not
/// yet recycled) blocks nobody, so on this side it joins the flat group.
fn dequeue_stall_cell(algorithm: Algorithm, pairs: u64, stall_ns: u64) -> StallCell {
    stall_cell_at(
        algorithm,
        PROCESSORS,
        pairs,
        stall_ns,
        algorithm.dequeue_fault_label(),
    )
}

fn stall_cell_at(
    algorithm: Algorithm,
    processors: usize,
    pairs: u64,
    stall_ns: u64,
    label: &'static str,
) -> StallCell {
    let mut plan = FaultPlan::new();
    if stall_ns > 0 {
        for k in 0..NUM_STALLS {
            plan = plan.stall_at_label(0, label, k * STALL_STRIDE, stall_ns);
        }
    }
    let sim = Simulation::with_faults(
        SimConfig {
            processors,
            ..SimConfig::default()
        },
        plan,
    );
    let platform = sim.platform();
    let queue = algorithm.build(&platform, 4_096);
    let report = sim.run({
        let queue = Arc::clone(&queue);
        let platform = platform.clone();
        move |info| {
            let n = info.num_processes as u64;
            let my_pairs = pairs / n + u64::from((info.pid as u64) < pairs % n);
            for i in 0..my_pairs {
                let value = ((info.pid as u64) << 40) | i;
                while queue.enqueue(value).is_err() {
                    platform.cpu_relax();
                }
                platform.delay(OTHER_WORK_NS);
                while queue.dequeue().is_none() {
                    platform.cpu_relax();
                }
                platform.delay(OTHER_WORK_NS);
            }
        }
    });
    let survivor_completion_ns = report
        .per_process
        .iter()
        .filter(|p| p.pid != 0)
        .map(|p| p.finished_at_ns)
        .max()
        .unwrap_or(0);
    StallCell {
        algorithm,
        stall_ns,
        elapsed_ns: report.elapsed_ns,
        survivor_completion_ns,
        stalls_fired: report.stalls_injected,
    }
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let pairs = if smoke { SMOKE_PAIRS } else { PAIRS };

    // --- Cell 1: the stall sweep over the paper's six. ---
    let mut cells: Vec<StallCell> = Vec::new();
    for algorithm in Algorithm::ALL {
        for stall_ns in STALL_LENGTHS {
            let cell = stall_cell(algorithm, pairs, stall_ns);
            eprintln!(
                "stall {:>9} ns  {:<16} survivors done at {:>12} ns (elapsed {:>12} ns, {} stalls fired)",
                cell.stall_ns,
                cell.algorithm.label(),
                cell.survivor_completion_ns,
                cell.elapsed_ns,
                cell.stalls_fired
            );
            cells.push(cell);
        }
    }
    let baseline = |alg: Algorithm| {
        cells
            .iter()
            .find(|c| c.algorithm == alg && c.stall_ns == 0)
            .expect("baseline cell")
            .survivor_completion_ns
    };
    let at_max = |alg: Algorithm| {
        cells
            .iter()
            .find(|c| c.algorithm == alg && c.stall_ns == *STALL_LENGTHS.last().unwrap())
            .expect("max-stall cell")
            .survivor_completion_ns
    };

    // --- Cell 1b: the headline comparison again at 64 processors. Only
    // the extremes of the stall sweep (0 and the longest), for the three
    // algorithms the Figure 4–5 ordering is about. ---
    let high_contenders = [
        Algorithm::NewNonBlocking,
        Algorithm::SingleLock,
        Algorithm::MellorCrummey,
    ];
    let mut high_cells: Vec<StallCell> = Vec::new();
    for algorithm in high_contenders {
        for stall_ns in [0, *STALL_LENGTHS.last().unwrap()] {
            let cell = stall_cell_at(
                algorithm,
                PROCESSORS_HIGH,
                pairs,
                stall_ns,
                algorithm.enqueue_fault_label(),
            );
            eprintln!(
                "stall {:>9} ns  {:<16} ({}p) survivors done at {:>12} ns ({} stalls fired)",
                cell.stall_ns,
                cell.algorithm.label(),
                PROCESSORS_HIGH,
                cell.survivor_completion_ns,
                cell.stalls_fired
            );
            high_cells.push(cell);
        }
    }
    let high_at = |alg: Algorithm, stall_ns: u64| {
        high_cells
            .iter()
            .find(|c| c.algorithm == alg && c.stall_ns == stall_ns)
            .expect("high-scale cell")
            .survivor_completion_ns
    };

    // --- Cell 1c: the dequeue-side stall sweep over the same six. ---
    let mut deq_cells: Vec<StallCell> = Vec::new();
    for algorithm in Algorithm::ALL {
        for stall_ns in STALL_LENGTHS {
            let cell = dequeue_stall_cell(algorithm, pairs, stall_ns);
            eprintln!(
                "deq stall {:>9} ns  {:<16} survivors done at {:>12} ns ({} stalls fired)",
                cell.stall_ns,
                cell.algorithm.label(),
                cell.survivor_completion_ns,
                cell.stalls_fired
            );
            deq_cells.push(cell);
        }
    }
    let deq_baseline = |alg: Algorithm| {
        deq_cells
            .iter()
            .find(|c| c.algorithm == alg && c.stall_ns == 0)
            .expect("dequeue baseline cell")
            .survivor_completion_ns
    };
    let deq_at_max = |alg: Algorithm| {
        deq_cells
            .iter()
            .find(|c| c.algorithm == alg && c.stall_ns == *STALL_LENGTHS.last().unwrap())
            .expect("dequeue max-stall cell")
            .survivor_completion_ns
    };

    // --- Cell 2: death in the critical window. ---
    let workload = WorkloadConfig {
        pairs_total: pairs,
        other_work_ns: OTHER_WORK_NS,
        capacity: 4_096,
        mem_budget: None,
    };
    let faulted_cfg = SimConfig {
        processors: PROCESSORS,
        watchdog_ns: WATCHDOG_NS,
        ..SimConfig::default()
    };
    let kill_ms = run_simulated_faulted(
        Algorithm::NewNonBlocking,
        faulted_cfg,
        &workload,
        FaultPlan::new().kill_at_label(0, Algorithm::NewNonBlocking.enqueue_fault_label(), 0),
    );
    let kill_lock = run_simulated_faulted(
        Algorithm::SingleLock,
        faulted_cfg,
        &workload,
        FaultPlan::new().kill_at_label(0, Algorithm::SingleLock.enqueue_fault_label(), 0),
    );
    eprintln!(
        "kill new-nonblocking: killed {:?}, blocked {:?}, drained {:?}, {} pairs completed",
        kill_ms.killed, kill_ms.blocked, kill_ms.drained, kill_ms.pairs_completed
    );
    eprintln!(
        "kill single-lock:     killed {:?}, blocked {:?} (watchdog), {} pairs completed",
        kill_lock.killed, kill_lock.blocked, kill_lock.pairs_completed
    );

    // --- Cell 3: kill/recovery cells for every contender. Pid 1 is
    // killed at its first pass through the algorithm's dequeue-side fault
    // point; pid 0 is the designated survivor of the restart-and-catch-up
    // policy. On a contender whose dequeue-window death is survivable the
    // survivor absorbs the victim's residual share (recovery cost ==
    // residual pairs, a positive time-to-recover is stamped); on the
    // lock-based queues the dead H_lock holder wedges everyone and the
    // watchdog flags the run instead. ---
    struct RecoveryCell {
        algorithm: Algorithm,
        point: msq_harness::FaultedPoint,
    }
    let mut recovery_cells: Vec<RecoveryCell> = Vec::new();
    for algorithm in Algorithm::WITH_EXTENSIONS {
        let point = run_simulated_recovered(
            algorithm,
            faulted_cfg,
            &workload,
            FaultPlan::new().kill_at_label(1, algorithm.dequeue_fault_label(), 0),
            RecoveryPolicy::designated(0),
        );
        eprintln!(
            "recovery {:<16} killed {:?}, blocked {:?}, recovered {} pairs, ttr {:?} ns",
            algorithm.label(),
            point.killed,
            point.blocked,
            point.recovered_pairs,
            point.time_to_recover_ns
        );
        recovery_cells.push(RecoveryCell { algorithm, point });
    }

    // --- Cell 4: revocable-lock repair cells (DESIGN.md §13). The same
    // kind of death that leaves Cell 3's lock queues watchdog-flagged —
    // pid 1 killed while holding each lock or blocking window — is rerun
    // on the *repairable* builds: a waiter revokes the dead holder's
    // lock, repairs the torn invariant, and the designated survivor
    // absorbs the residual share. The reported metric is
    // **time-to-repair**: the virtual time from the kill to the
    // repairing waiter's verdict. ---
    struct RepairCell {
        algorithm: Algorithm,
        kill_label: &'static str,
        point: msq_harness::FaultedPoint,
    }
    const REPAIR_KILLS: [(Algorithm, &str); 6] = [
        (Algorithm::SingleLock, "single-lock:enq:locked"),
        (Algorithm::SingleLock, "single-lock:deq:locked"),
        (Algorithm::NewTwoLock, "two-lock:enq:locked"),
        (Algorithm::NewTwoLock, "two-lock:deq:locked"),
        (Algorithm::MellorCrummey, "mc:enq:window"),
        (Algorithm::MellorCrummey, "mc:deq:window"),
    ];
    let mut repair_cells: Vec<RepairCell> = Vec::new();
    for (algorithm, kill_label) in REPAIR_KILLS {
        let point = run_simulated_repaired(
            algorithm,
            faulted_cfg,
            &workload,
            FaultPlan::new().kill_at_label(1, kill_label, 0),
            RecoveryPolicy::designated(0),
        );
        eprintln!(
            "repair {:<16} @ {:<24} killed {:?}, blocked {:?}, verdict {:?}, ttr {:?} ns",
            algorithm.label(),
            kill_label,
            point.killed,
            point.blocked,
            point.repairs.first().map(|r| r.point),
            point.time_to_repair_ns
        );
        repair_cells.push(RepairCell {
            algorithm,
            kill_label,
            point,
        });
    }

    // --- Cell 5: repair latency vs victim count. Kill pids 1..=v, each
    // at occurrence 0 of the enqueue-side lock label, so the deaths
    // chain: the lock serializes the critical section, each later
    // victim (or the survivor) revokes and repairs its predecessor
    // before dying in its own window — a dead *repairer* leaves
    // `repairing(dead)`, revocable by the very same rule — and pid 0
    // finishes the chain, then absorbs every victim's residual share.
    // The metric is how time-to-repair stretches as the chain deepens. ---
    struct MultiRepairCell {
        algorithm: Algorithm,
        kill_label: &'static str,
        victims: usize,
        point: msq_harness::FaultedPoint,
    }
    const MULTI_REPAIR: [(Algorithm, &str); 2] = [
        (Algorithm::SingleLock, "single-lock:enq:locked"),
        (Algorithm::NewTwoLock, "two-lock:enq:locked"),
    ];
    let mut multi_repair_cells: Vec<MultiRepairCell> = Vec::new();
    for (algorithm, kill_label) in MULTI_REPAIR {
        for victims in 1..=3_usize {
            let mut plan = FaultPlan::new();
            for pid in 1..=victims {
                plan = plan.kill_at_label(pid, kill_label, 0);
            }
            let point = run_simulated_repaired(
                algorithm,
                faulted_cfg,
                &workload,
                plan,
                RecoveryPolicy::designated(0),
            );
            eprintln!(
                "multi-repair {:<16} victims {}: killed {:?}, repairs {}, slowest ttr {:?} ns",
                algorithm.label(),
                victims,
                point.killed,
                point.repairs.len(),
                point.time_to_repair_ns
            );
            multi_repair_cells.push(MultiRepairCell {
                algorithm,
                kill_label,
                victims,
                point,
            });
        }
    }

    // --- Acceptance. ---
    let max_stall = *STALL_LENGTHS.last().unwrap();
    let injected = NUM_STALLS * max_stall;
    // Non-blocking survivors must be (nearly) oblivious to the victim's
    // stalls. Smoke scale leaves fixed costs a bigger share, so its bound
    // is looser.
    let flat_bound = if smoke { 1.20 } else { 1.10 };
    let nonblocking_flat = Algorithm::ALL
        .into_iter()
        .filter(|a| a.is_nonblocking())
        .all(|a| (at_max(a) as f64) <= (baseline(a) as f64) * flat_bound);
    // Blocking survivors wait out the stalls: their excess must reflect a
    // sizable share of the injected stall time.
    let collapsers = [Algorithm::SingleLock, Algorithm::MellorCrummey];
    let blocking_collapses = collapsers
        .into_iter()
        .all(|a| at_max(a).saturating_sub(baseline(a)) >= injected / 2);
    // The Figure 4–5 ordering at the longest stall: the new non-blocking
    // queue beats both collapsing baselines outright.
    let figure_ordering = collapsers
        .into_iter()
        .all(|a| at_max(Algorithm::NewNonBlocking) < at_max(a));
    // The same ordering at 64 processors: with 63 survivors sharing the
    // fixed pair budget, the lock queues still serialize every survivor
    // behind the stalled victim while the non-blocking queue sails past.
    let figure_ordering_high = collapsers
        .into_iter()
        .all(|a| high_at(Algorithm::NewNonBlocking, max_stall) < high_at(a, max_stall));
    let all_stalls_fired = cells
        .iter()
        .all(|c| c.stalls_fired == if c.stall_ns == 0 { 0 } else { NUM_STALLS });
    let kill_nonblocking_survives =
        kill_ms.killed == vec![0] && kill_ms.survivors_completed() && kill_ms.drained == Some(1);
    let kill_single_lock_blocks = kill_lock.killed == vec![0] && !kill_lock.survivors_completed();
    // Dequeue side: survivable-window contenders (the four non-blocking
    // AND Mellor-Crummey, whose dequeue window blocks nobody) stay flat;
    // only the queues whose dequeue window is a held lock collapse.
    let deq_survivable_flat = Algorithm::ALL
        .into_iter()
        .filter(|a| a.dequeue_death_survivable())
        .all(|a| (deq_at_max(a) as f64) <= (deq_baseline(a) as f64) * flat_bound);
    let deq_collapsers = [Algorithm::SingleLock, Algorithm::NewTwoLock];
    let deq_blocking_collapses = deq_collapsers
        .into_iter()
        .all(|a| deq_at_max(a).saturating_sub(deq_baseline(a)) >= injected / 2);
    let deq_all_stalls_fired = deq_cells
        .iter()
        .all(|c| c.stalls_fired == if c.stall_ns == 0 { 0 } else { NUM_STALLS });
    // The committed asymmetry: every survivable contender's recovery cost
    // is exactly the victim's residual share (pairs conserved, a positive
    // time-to-recover stamped), while the lock-based queues end
    // watchdog-flagged with nothing recovered.
    let recovery_absorbs_residual = recovery_cells
        .iter()
        .filter(|c| c.algorithm.dequeue_death_survivable())
        .all(|c| {
            c.point.killed == vec![1]
                && c.point.survivors_completed()
                && c.point.recovered_pairs > 0
                && c.point.pairs_completed + c.point.recovered_pairs == pairs
                && c.point.time_to_recover_ns.is_some_and(|t| t > 0)
        });
    let recovery_lock_based_flagged = recovery_cells
        .iter()
        .filter(|c| !c.algorithm.dequeue_death_survivable())
        .all(|c| {
            c.point.killed == vec![1]
                && !c.point.survivors_completed()
                && c.point.recovered_pairs == 0
                && c.point.time_to_recover_ns.is_none()
        });
    // The tentpole claim: under repair *no* lock queue ends
    // watchdog-blocked — every cell completes with full conservation,
    // exactly one repair stamped with a positive time-to-repair, and a
    // drainable queue.
    let repair_unwedges_lock_queues = repair_cells.iter().all(|c| {
        c.point.killed == vec![1]
            && c.point.survivors_completed()
            && c.point.blocked_kinds.is_empty()
            && c.point.repairs.len() == 1
            && c.point.pairs_completed + c.point.recovered_pairs == pairs
            && c.point.time_to_repair_ns.is_some_and(|t| t > 0)
            && c.point.drained.is_some()
    });
    // Cell 5's claim: the chain of v deaths ends fully repaired — one
    // repair per victim, every victim's whole share (it died in its
    // first pair) replayed by the survivor, and nobody watchdog-flagged.
    let multi_repair_chain_conserves = multi_repair_cells.iter().all(|c| {
        let v = c.victims;
        c.point.killed.len() == v
            && c.point.survivors_completed()
            && c.point.blocked_kinds.is_empty()
            && c.point.repairs.len() == v
            && c.point.recovered_pairs == (v as u64) * (pairs / PROCESSORS as u64)
            && c.point.pairs_completed + c.point.recovered_pairs == pairs
            && c.point.time_to_repair_ns.is_some_and(|t| t > 0)
            && c.point.drained.is_some()
    });
    eprintln!(
        "acceptance: nonblocking_flat={nonblocking_flat} blocking_collapses={blocking_collapses} \
         figure_ordering={figure_ordering} figure_ordering_{PROCESSORS_HIGH}p={figure_ordering_high} \
         all_stalls_fired={all_stalls_fired} \
         kill_nonblocking_survives={kill_nonblocking_survives} \
         kill_single_lock_blocks={kill_single_lock_blocks} \
         deq_survivable_flat={deq_survivable_flat} \
         deq_blocking_collapses={deq_blocking_collapses} \
         deq_all_stalls_fired={deq_all_stalls_fired} \
         recovery_absorbs_residual={recovery_absorbs_residual} \
         recovery_lock_based_flagged={recovery_lock_based_flagged} \
         repair_unwedges_lock_queues={repair_unwedges_lock_queues} \
         multi_repair_chain_conserves={multi_repair_chain_conserves}"
    );

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"description\": \"deterministic fault injection: survivor completion time vs critical-window stall length (non-blocking flat, lock-based collapsing), plus mid-operation death cells\","
    );
    let _ = writeln!(json, "  \"processors\": {PROCESSORS},");
    let _ = writeln!(json, "  \"workload_pairs\": {pairs},");
    let _ = writeln!(json, "  \"stalls_per_run\": {NUM_STALLS},");
    let _ = writeln!(json, "  \"victim\": 0,");
    json.push_str("  \"stall_sweep\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let degradation = c.survivor_completion_ns as f64 / baseline(c.algorithm) as f64;
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"nonblocking\": {}, \"stall_ns\": {}, \"survivor_completion_virtual_ns\": {}, \"elapsed_virtual_ns\": {}, \"stalls_fired\": {}, \"survivor_degradation\": {:.4}}}{}",
            c.algorithm.label(),
            c.algorithm.is_nonblocking(),
            c.stall_ns,
            c.survivor_completion_ns,
            c.elapsed_ns,
            c.stalls_fired,
            degradation,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"processors_high\": {PROCESSORS_HIGH},");
    json.push_str("  \"stall_sweep_high\": [\n");
    for (i, c) in high_cells.iter().enumerate() {
        let degradation = c.survivor_completion_ns as f64 / high_at(c.algorithm, 0) as f64;
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"nonblocking\": {}, \"stall_ns\": {}, \"survivor_completion_virtual_ns\": {}, \"elapsed_virtual_ns\": {}, \"stalls_fired\": {}, \"survivor_degradation\": {:.4}}}{}",
            c.algorithm.label(),
            c.algorithm.is_nonblocking(),
            c.stall_ns,
            c.survivor_completion_ns,
            c.elapsed_ns,
            c.stalls_fired,
            degradation,
            if i + 1 == high_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"deq_stall_sweep\": [\n");
    for (i, c) in deq_cells.iter().enumerate() {
        let degradation = c.survivor_completion_ns as f64 / deq_baseline(c.algorithm) as f64;
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"nonblocking\": {}, \"dequeue_death_survivable\": {}, \"stall_ns\": {}, \"survivor_completion_virtual_ns\": {}, \"elapsed_virtual_ns\": {}, \"stalls_fired\": {}, \"survivor_degradation\": {:.4}}}{}",
            c.algorithm.label(),
            c.algorithm.is_nonblocking(),
            c.algorithm.dequeue_death_survivable(),
            c.stall_ns,
            c.survivor_completion_ns,
            c.elapsed_ns,
            c.stalls_fired,
            degradation,
            if i + 1 == deq_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery\": [\n");
    for (i, c) in recovery_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"nonblocking\": {}, \"dequeue_death_survivable\": {}, \"victim\": 1, \"designated_survivor\": 0, \"killed\": {:?}, \"blocked\": {:?}, \"pairs_completed\": {}, \"recovered_pairs\": {}, \"time_to_recover_virtual_ns\": {}, \"drained\": {}}}{}",
            c.algorithm.label(),
            c.algorithm.is_nonblocking(),
            c.algorithm.dequeue_death_survivable(),
            c.point.killed,
            c.point.blocked,
            c.point.pairs_completed,
            c.point.recovered_pairs,
            c.point
                .time_to_recover_ns
                .map_or_else(|| "null".into(), |t| t.to_string()),
            c.point
                .drained
                .map_or_else(|| "null".into(), |d| d.to_string()),
            if i + 1 == recovery_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"repair\": [\n");
    for (i, c) in repair_cells.iter().enumerate() {
        let verdict = c
            .point
            .repairs
            .first()
            .map_or_else(|| "null".into(), |r| format!("\"{}\"", r.point));
        let repaired_by = c
            .point
            .repairs
            .first()
            .map_or_else(|| "null".into(), |r| r.by.to_string());
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"lock\": \"{}\", \"victim\": 1, \"designated_survivor\": 0, \"killed\": {:?}, \"blocked\": {:?}, \"repaired_by\": {}, \"verdict\": {}, \"time_to_repair_virtual_ns\": {}, \"pairs_completed\": {}, \"recovered_pairs\": {}, \"drained\": {}}}{}",
            c.algorithm.label(),
            c.kill_label,
            c.point.killed,
            c.point.blocked,
            repaired_by,
            verdict,
            c.point
                .time_to_repair_ns
                .map_or_else(|| "null".into(), |t| t.to_string()),
            c.point.pairs_completed,
            c.point.recovered_pairs,
            c.point
                .drained
                .map_or_else(|| "null".into(), |d| d.to_string()),
            if i + 1 == repair_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"repair_vs_victims\": [\n");
    for (i, c) in multi_repair_cells.iter().enumerate() {
        let mean_ttr = if c.point.repairs.is_empty() {
            "null".into()
        } else {
            (c.point
                .repairs
                .iter()
                .map(|r| r.time_to_repair_ns())
                .sum::<u64>()
                / c.point.repairs.len() as u64)
                .to_string()
        };
        let _ = writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"lock\": \"{}\", \"victims\": {}, \"designated_survivor\": 0, \"killed\": {:?}, \"blocked\": {:?}, \"repairs\": {}, \"slowest_time_to_repair_virtual_ns\": {}, \"mean_time_to_repair_virtual_ns\": {}, \"pairs_completed\": {}, \"recovered_pairs\": {}, \"drained\": {}}}{}",
            c.algorithm.label(),
            c.kill_label,
            c.victims,
            c.point.killed,
            c.point.blocked,
            c.point.repairs.len(),
            c.point
                .time_to_repair_ns
                .map_or_else(|| "null".into(), |t| t.to_string()),
            mean_ttr,
            c.point.pairs_completed,
            c.point.recovered_pairs,
            c.point
                .drained
                .map_or_else(|| "null".into(), |d| d.to_string()),
            if i + 1 == multi_repair_cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"death\": {{\"new_nonblocking\": {{\"killed\": {:?}, \"blocked\": {:?}, \"drained\": {}, \"pairs_completed\": {}, \"max_completion_virtual_ns\": {}}}, \"single_lock\": {{\"killed\": {:?}, \"blocked\": {:?}, \"pairs_completed\": {}}}}},",
        kill_ms.killed,
        kill_ms.blocked,
        kill_ms.drained.map_or_else(|| "null".into(), |d| d.to_string()),
        kill_ms.pairs_completed,
        kill_ms.max_completion_ns,
        kill_lock.killed,
        kill_lock.blocked,
        kill_lock.pairs_completed
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"nonblocking_flat_bound\": {flat_bound}, \"nonblocking_flat\": {nonblocking_flat}, \"blocking_collapses\": {blocking_collapses}, \"figure_ordering\": {figure_ordering}, \"figure_ordering_high\": {figure_ordering_high}, \"all_stalls_fired\": {all_stalls_fired}, \"kill_nonblocking_survives\": {kill_nonblocking_survives}, \"kill_single_lock_blocks\": {kill_single_lock_blocks}, \"deq_survivable_flat\": {deq_survivable_flat}, \"deq_blocking_collapses\": {deq_blocking_collapses}, \"deq_all_stalls_fired\": {deq_all_stalls_fired}, \"recovery_absorbs_residual\": {recovery_absorbs_residual}, \"recovery_lock_based_flagged\": {recovery_lock_based_flagged}, \"repair_unwedges_lock_queues\": {repair_unwedges_lock_queues}, \"multi_repair_chain_conserves\": {multi_repair_chain_conserves}}}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
    println!("{json}");
}
