//! Shared helpers for the Criterion benches.
//!
//! The benches live in `benches/`:
//!
//! * `ops` — native per-operation costs for all six algorithms plus the
//!   idiomatic heap queues and third-party comparators;
//! * `figure3` / `figure4` / `figure5` — one bench per paper figure,
//!   running the Section 4 workload on the simulated multiprocessor at a
//!   reduced op count (the full-size sweeps are the `figures` binary in
//!   `msq-harness`);
//! * `ablations` — backoff on/off and idiomatic-variant comparisons.
//!
//! **Interpreting the simulator-based benches:** Criterion measures *host
//! wall time*, which for a simulated run tracks the number of simulated
//! operations (each one is a scheduler transaction), not the virtual-time
//! result. They exist to catch performance regressions in the simulator
//! and algorithms; the reproduction's actual metric — virtual net time —
//! comes from the `figures` binary and is asserted by
//! `tests/figure_shapes.rs`. The native benches (`ops`, the uncontended
//! ablations) measure real operation latency directly.

#![warn(missing_docs)]

use msq_harness::{run_simulated, Algorithm, MeasuredPoint, WorkloadConfig};
use msq_sim::SimConfig;

/// A small but contended workload sized for Criterion iteration counts.
pub fn bench_workload() -> WorkloadConfig {
    WorkloadConfig {
        pairs_total: 500,
        other_work_ns: 6_000,
        capacity: 1_024,
        mem_budget: None,
    }
}

/// Simulated machine for figure benches; quantum scaled with the reduced
/// op count exactly as the `figures` binary does.
pub fn bench_sim_config(processors: usize, processes_per_processor: usize) -> SimConfig {
    // 10 ms scaled by pairs/10^6 would give 5 µs for the 500-pair bench
    // workload; clamp to the harness's 20 µs floor.
    let quantum_ns = 20_000;
    SimConfig {
        processors,
        processes_per_processor,
        quantum_ns,
        ctx_switch_ns: (quantum_ns / 400).max(200),
        ..SimConfig::default()
    }
}

/// Runs one figure cell (for use inside a Criterion `iter`).
pub fn figure_cell(
    algorithm: Algorithm,
    processors: usize,
    processes_per_processor: usize,
) -> MeasuredPoint {
    run_simulated(
        algorithm,
        bench_sim_config(processors, processes_per_processor),
        &bench_workload(),
    )
}
