//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **Backoff** — the paper uses bounded exponential backoff in both the
//!   lock-based and non-blocking algorithms; `BackoffConfig::DISABLED`
//!   removes it. (The paper: "performance was not sensitive to the exact
//!   choice of backoff parameters" — given a modest amount of other work.)
//! * **Reclamation strategy** — arena free list (the paper's scheme) vs
//!   hazard pointers + heap allocation (the modern idiomatic variant).
//! * **Simulated contention with and without backoff** — where backoff
//!   actually earns its keep.
//! * **Segment size** — 8/32/128 slots per segment in the seg-batched
//!   extension: bigger segments amortize link CASes over more `fetch_add`
//!   claims but waste more space and lengthen the poison scan.

use criterion::{criterion_group, criterion_main, Criterion};
use msq_baselines::SingleLockQueue;
use msq_core::{MsQueue, WordMsQueue, WordSegQueue, WordTwoLockQueue};
use msq_harness::WorkloadConfig;
use msq_platform::{BackoffConfig, ConcurrentWordQueue, NativePlatform, Platform};
use msq_sim::{SimConfig, Simulation};
use std::hint::black_box;
use std::sync::Arc;

fn backoff_on_off_native(c: &mut Criterion) {
    let platform = NativePlatform::new();
    let mut group = c.benchmark_group("backoff_uncontended");
    for (label, config) in [
        ("default", BackoffConfig::DEFAULT),
        ("disabled", BackoffConfig::DISABLED),
    ] {
        let queue = WordMsQueue::with_capacity_and_backoff(&platform, 64, config);
        group.bench_function(format!("ms-nonblocking/{label}"), |b| {
            b.iter(|| {
                queue.enqueue(black_box(5)).unwrap();
                black_box(queue.dequeue())
            })
        });
        let two_lock = WordTwoLockQueue::with_capacity_and_backoff(&platform, 64, config);
        group.bench_function(format!("two-lock/{label}"), |b| {
            b.iter(|| {
                two_lock.enqueue(black_box(5)).unwrap();
                black_box(two_lock.dequeue())
            })
        });
    }
    group.finish();
}

fn backoff_under_simulated_contention(c: &mut Criterion) {
    // 8 simulated processors hammering one queue with NO other work:
    // maximum contention, where backoff matters most.
    let mut group = c.benchmark_group("backoff_contended_sim");
    group.sample_size(10);
    for (label, config) in [
        ("default", BackoffConfig::DEFAULT),
        ("disabled", BackoffConfig::DISABLED),
    ] {
        group.bench_function(format!("ms-nonblocking/{label}"), |b| {
            b.iter(|| {
                let sim = Simulation::new(SimConfig {
                    processors: 8,
                    ..SimConfig::default()
                });
                let queue = Arc::new(WordMsQueue::with_capacity_and_backoff(
                    &sim.platform(),
                    1_024,
                    config,
                ));
                let report = sim.run({
                    let queue = Arc::clone(&queue);
                    move |info| {
                        for i in 0..50_u64 {
                            queue.enqueue((info.pid as u64) << 32 | i).unwrap();
                            while queue.dequeue().is_none() {}
                        }
                    }
                });
                black_box(report.elapsed_ns)
            })
        });
        group.bench_function(format!("single-lock/{label}"), |b| {
            b.iter(|| {
                let sim = Simulation::new(SimConfig {
                    processors: 8,
                    ..SimConfig::default()
                });
                let queue = Arc::new(SingleLockQueue::with_capacity_and_backoff(
                    &sim.platform(),
                    1_024,
                    config,
                ));
                let report = sim.run({
                    let queue = Arc::clone(&queue);
                    move |info| {
                        for i in 0..50_u64 {
                            queue.enqueue((info.pid as u64) << 32 | i).unwrap();
                            while queue.dequeue().is_none() {}
                        }
                    }
                });
                black_box(report.elapsed_ns)
            })
        });
    }
    group.finish();
}

fn reclamation_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("reclamation");
    let platform = NativePlatform::new();
    let arena_queue = WordMsQueue::with_capacity(&platform, 64);
    group.bench_function("arena-free-list", |b| {
        b.iter(|| {
            arena_queue.enqueue(black_box(5)).unwrap();
            black_box(arena_queue.dequeue())
        })
    });
    let hazard_queue: MsQueue<u64> = MsQueue::new();
    group.bench_function("hazard-pointers-heap", |b| {
        b.iter(|| {
            hazard_queue.enqueue(black_box(5));
            black_box(hazard_queue.dequeue())
        })
    });
    let epoch_queue: msq_core::EpochMsQueue<u64> = msq_core::EpochMsQueue::new();
    group.bench_function("epoch-heap", |b| {
        b.iter(|| {
            epoch_queue.enqueue(black_box(5));
            black_box(epoch_queue.dequeue())
        })
    });
    group.finish();
}

fn other_work_sensitivity(c: &mut Criterion) {
    // The paper: backoff parameters don't matter much "in programs that do
    // at least a modest amount of work between queue operations". Sweep
    // the other-work knob at fixed contention.
    let mut group = c.benchmark_group("other_work_sensitivity");
    group.sample_size(10);
    for other_work_ns in [0_u64, 2_000, 6_000, 12_000] {
        group.bench_function(format!("ms-nonblocking/{other_work_ns}ns"), |b| {
            b.iter(|| {
                let sim = Simulation::new(SimConfig {
                    processors: 4,
                    ..SimConfig::default()
                });
                let platform = sim.platform();
                let queue = Arc::new(WordMsQueue::with_capacity(&platform, 1_024));
                let workload = WorkloadConfig {
                    pairs_total: 200,
                    other_work_ns,
                    capacity: 1_024,
                    mem_budget: None,
                };
                let report = sim.run({
                    let queue = Arc::clone(&queue);
                    let platform = platform.clone();
                    move |info| {
                        for i in 0..workload.pairs_total / 4 {
                            queue.enqueue((info.pid as u64) << 32 | i).unwrap();
                            platform.delay(workload.other_work_ns);
                            while queue.dequeue().is_none() {}
                            platform.delay(workload.other_work_ns);
                        }
                    }
                });
                black_box(report.elapsed_ns)
            })
        });
    }
    group.finish();
}

fn lock_substrates_under_simulated_contention(c: &mut Criterion) {
    // The lock the queue algorithms build on: the paper's TTAS-with-backoff
    // vs plain TAS, a ticket lock, and the queue locks of the authors'
    // reference [12] (MCS, CLH). 6 simulated processors hammer one
    // counter-increment critical section.
    use msq_sync::{ClhLock, McsLock, RawLock, TasLock, TicketLock, TokenLock, TtasLock};

    fn run_raw<L: RawLock<msq_sim::SimPlatform> + 'static>(
        make: impl Fn(&msq_sim::SimPlatform) -> L,
    ) -> u64 {
        let sim = Simulation::new(SimConfig {
            processors: 6,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let lock = Arc::new(make(&platform));
        let shared = Arc::new(msq_platform::Platform::alloc_cell(&platform, 0));
        sim.run({
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            move |_| {
                for _ in 0..50 {
                    lock.lock(&platform);
                    let v = msq_platform::AtomicWord::load(&*shared);
                    msq_platform::AtomicWord::store(&*shared, v + 1);
                    lock.unlock(&platform);
                }
            }
        })
        .elapsed_ns
    }

    fn run_token<L: TokenLock<msq_sim::SimPlatform> + 'static>(
        make: impl Fn(&msq_sim::SimPlatform) -> L,
    ) -> u64 {
        let sim = Simulation::new(SimConfig {
            processors: 6,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let lock = Arc::new(make(&platform));
        let shared = Arc::new(msq_platform::Platform::alloc_cell(&platform, 0));
        sim.run({
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            move |_| {
                for _ in 0..50 {
                    let token = lock.lock(&platform);
                    let v = msq_platform::AtomicWord::load(&*shared);
                    msq_platform::AtomicWord::store(&*shared, v + 1);
                    lock.unlock(&platform, token);
                }
            }
        })
        .elapsed_ns
    }

    let mut group = c.benchmark_group("lock_substrates_contended_sim");
    group.sample_size(10);
    group.bench_function("tas", |b| b.iter(|| black_box(run_raw(TasLock::new))));
    group.bench_function("ttas-backoff", |b| {
        b.iter(|| black_box(run_raw(TtasLock::new)))
    });
    group.bench_function("ticket", |b| b.iter(|| black_box(run_raw(TicketLock::new))));
    group.bench_function("mcs", |b| {
        b.iter(|| black_box(run_token(|p| McsLock::new(p, 8))))
    });
    group.bench_function("clh", |b| {
        b.iter(|| black_box(run_token(|p| ClhLock::new(p, 8))))
    });
    group.finish();
}

fn segment_size(c: &mut Criterion) {
    // The seg-batched extension's one tuning knob, natively uncontended
    // and under maximum simulated contention.
    let mut group = c.benchmark_group("segment_size");
    group.sample_size(10);
    let platform = NativePlatform::new();
    for seg_size in [8_u32, 32, 128] {
        let queue = WordSegQueue::with_seg_size_and_backoff(
            &platform,
            1_024,
            seg_size,
            BackoffConfig::DEFAULT,
        );
        group.bench_function(format!("native-uncontended/{seg_size}"), |b| {
            b.iter(|| {
                queue.enqueue(black_box(5)).unwrap();
                black_box(queue.dequeue())
            })
        });
        group.bench_function(format!("sim-contended-8p/{seg_size}"), |b| {
            b.iter(|| {
                let sim = Simulation::new(SimConfig {
                    processors: 8,
                    ..SimConfig::default()
                });
                let queue = Arc::new(WordSegQueue::with_seg_size_and_backoff(
                    &sim.platform(),
                    1_024,
                    seg_size,
                    BackoffConfig::DEFAULT,
                ));
                let report = sim.run({
                    let queue = Arc::clone(&queue);
                    move |info| {
                        for i in 0..50_u64 {
                            queue.enqueue((info.pid as u64) << 32 | i).unwrap();
                            while queue.dequeue().is_none() {}
                        }
                    }
                });
                black_box(report.elapsed_ns)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    backoff_on_off_native,
    backoff_under_simulated_contention,
    reclamation_strategies,
    other_work_sensitivity,
    lock_substrates_under_simulated_contention,
    segment_size
);
criterion_main!(benches);
