//! Figure 5 of the paper: net time for the Section 4 workload on a
//! dedicated simulated multiprocessor with 3 process(es) per processor,
//! one Criterion benchmark per (algorithm, processor-count) cell. The
//! full-size sweep (with CSV output) is `cargo run -p msq-harness
//! --release --bin figures -- --figure 5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msq_bench::figure_cell;
use msq_harness::Algorithm;
use std::hint::black_box;

fn figure5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    for algorithm in Algorithm::ALL {
        for processors in [1, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.label(), processors),
                &processors,
                |b, &p| b.iter(|| black_box(figure_cell(algorithm, p, 3)).net_ns),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, figure5);
criterion_main!(benches);
