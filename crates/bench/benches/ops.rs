//! Native per-operation costs: uncontended enqueue/dequeue pairs for the
//! six word queues plus the seg-batched extension, the idiomatic heap
//! queues, and comparators (our segment-batched SegQueue, a mutexed
//! VecDeque). The paper's "with only one processor ... completion times
//! are very low" anchor.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, Criterion};
use msq_core::{MsQueue, SegQueue, TwoLockQueue};
use msq_harness::Algorithm;
use msq_platform::NativePlatform;
use std::hint::black_box;

fn word_queues(c: &mut Criterion) {
    let platform = NativePlatform::new();
    let mut group = c.benchmark_group("uncontended_pair");
    for algorithm in Algorithm::WITH_EXTENSIONS {
        let queue = algorithm.build(&platform, 64);
        group.bench_function(algorithm.label(), |b| {
            b.iter(|| {
                queue.enqueue(black_box(7)).unwrap();
                black_box(queue.dequeue())
            })
        });
    }
    group.finish();
}

fn heap_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_pair_idiomatic");
    let ms: MsQueue<u64> = MsQueue::new();
    group.bench_function("ms-queue-hazard", |b| {
        b.iter(|| {
            ms.enqueue(black_box(7));
            black_box(ms.dequeue())
        })
    });
    let two_lock: TwoLockQueue<u64> = TwoLockQueue::new();
    group.bench_function("two-lock-parking-lot", |b| {
        b.iter(|| {
            two_lock.enqueue(black_box(7));
            black_box(two_lock.dequeue())
        })
    });
    let seg: SegQueue<u64> = SegQueue::new();
    group.bench_function("seg-queue-hazard", |b| {
        b.iter(|| {
            seg.enqueue(black_box(7u64));
            black_box(seg.dequeue())
        })
    });
    let mutexed = parking_lot::Mutex::new(VecDeque::new());
    group.bench_function("mutex-vecdeque", |b| {
        b.iter(|| {
            mutexed.lock().push_back(black_box(7u64));
            black_box(mutexed.lock().pop_front())
        })
    });
    // Herlihy's universal construction: the "general methodology" the
    // paper contrasts specialized algorithms against. Keep some items in
    // the queue so the per-op whole-object copy is visible.
    let herlihy = msq_baselines::HerlihyQueue::new();
    for i in 0..64_u64 {
        herlihy.enqueue(i);
    }
    group.bench_function("herlihy-universal", |b| {
        b.iter(|| {
            herlihy.enqueue(black_box(7u64));
            black_box(herlihy.dequeue())
        })
    });
    group.finish();
}

fn contended_native(c: &mut Criterion) {
    // Two-thread ping: one producer thread runs in the background while
    // the measured thread does pairs; captures cache-line transfer costs
    // even on a single-core host (via preemption) and real contention on
    // multicore hosts.
    let mut group = c.benchmark_group("contended_pair_2thread");
    group.sample_size(20);
    for algorithm in [
        Algorithm::SingleLock,
        Algorithm::NewTwoLock,
        Algorithm::NewNonBlocking,
        Algorithm::SegBatched,
    ] {
        let platform = NativePlatform::new();
        let queue = algorithm.build(&platform, 4_096);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let background = {
            let queue = std::sync::Arc::clone(&queue);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = queue.enqueue(1);
                    let _ = queue.dequeue();
                }
            })
        };
        group.bench_function(algorithm.label(), |b| {
            b.iter(|| {
                queue.enqueue(black_box(7)).unwrap();
                black_box(queue.dequeue())
            })
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        background.join().unwrap();
    }
    group.finish();
}

criterion_group!(benches, word_queues, heap_queues, contended_native);
criterion_main!(benches);
