//! [`RcArena`]: Valois-style reference-counted node management.
//!
//! Valois's non-blocking queue lets `Tail` lag behind `Head`, so dequeued
//! nodes cannot simply be pushed back to a free list; his fix associates an
//! atomically-updated reference counter with every node, counting both
//! process-local pointers and links from the data structure itself. A node
//! is reclaimed only when its count reaches zero. Michael & Scott found and
//! corrected races in the original mechanism (TR 599); this implementation
//! follows the corrected discipline:
//!
//! * counts are kept shifted left one bit; the low bit is a **claim flag**
//!   so exactly one process reclaims a node whose count reaches zero, even
//!   while stale `safe_read`s transiently increment and decrement it;
//! * `safe_read` validates the source link (with its modification counter)
//!   after incrementing, releasing on mismatch;
//! * reclamation drops the node's own link reference to its successor,
//!   which is what produces the paper's observed failure mode: a single
//!   delayed process holding one node pins *that node and all its
//!   successors*, and "no finite memory can guarantee to satisfy the memory
//!   requirements of the algorithm all the time". The
//!   `valois_exhaustion` integration test and `valois_leak` example
//!   demonstrate it, mirroring the paper's 64,000-node experiment.

use msq_platform::{AtomicWord, Platform, Tagged};

use crate::arena::NodeArena;

/// A node arena whose nodes carry Valois reference counts.
///
/// Count encoding: `refs = 2 * count + claimed`. Free-list nodes hold
/// `refs == 1` (count 0, claimed by the free list); [`RcArena::alloc`]
/// hands out nodes with count 1 (the allocating process's local
/// reference).
pub struct RcArena<P: Platform> {
    arena: NodeArena<P>,
    refs: Vec<P::Cell>,
}

impl<P: Platform> RcArena<P> {
    /// Creates an arena of `capacity` reference-counted nodes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or does not fit a tagged index.
    pub fn new(platform: &P, capacity: u32) -> Self {
        let arena = NodeArena::new(platform, capacity);
        let refs = (0..capacity).map(|_| platform.alloc_cell(1)).collect();
        RcArena { arena, refs }
    }

    /// As [`RcArena::new`], metering the node pool (one unit per node,
    /// reserved for the arena's lifetime) against `budget` via
    /// [`NodeArena::with_budget`] — force-reserved, so an over-budget pool
    /// surfaces in [`crate::MemBudget::overruns`] rather than failing.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or does not fit a tagged index.
    pub fn with_budget(
        platform: &P,
        capacity: u32,
        budget: std::sync::Arc<crate::MemBudget<P>>,
    ) -> Self {
        let arena = NodeArena::with_budget(platform, capacity, budget);
        let refs = (0..capacity).map(|_| platform.alloc_cell(1)).collect();
        RcArena { arena, refs }
    }

    /// The underlying plain arena (value/next accessors).
    pub fn nodes(&self) -> &NodeArena<P> {
        &self.arena
    }

    /// Allocates a node with reference count 1 (the caller's local
    /// reference), or `None` if every node is pinned or in use.
    pub fn alloc(&self) -> Option<u32> {
        let node = self.arena.alloc()?;
        // The free list holds nodes claimed (odd count). Adding 1 clears the
        // claim flag and establishes count 1 in a single atomic step, so
        // stray increments from stale readers interleave harmlessly.
        let prev = self.refs[node as usize].fetch_add(1);
        debug_assert!(prev & 1 == 1, "allocated node must have been claimed");
        // Reclamation interprets `next` as a counted link, so it must never
        // carry stale free-list threading once the node is live.
        self.arena.set_next(node, msq_platform::NULL_INDEX);
        Some(node)
    }

    /// Records a new reference (a structure link or copied local pointer)
    /// to `node`.
    pub fn add_ref(&self, node: u32) {
        self.refs[node as usize].fetch_add(2);
    }

    /// Drops a reference to `node`, reclaiming it (and releasing its link
    /// reference to its successor) if the count reaches zero.
    pub fn release(&self, node: u32) {
        let prev = self.refs[node as usize].fetch_sub(2);
        debug_assert!(prev >= 2, "release without a matching reference");
        if prev == 2 {
            self.try_reclaim(node);
        }
    }

    /// Valois `SafeRead`: loads a tagged link from `cell` and returns the
    /// validated word — whose node's count is already incremented — or
    /// `None` if the link is null. The increment-then-validate dance
    /// guarantees the referenced node cannot be reclaimed while the caller
    /// holds it. (Returning the full [`Tagged`] word lets callers CAS the
    /// source cell against exactly what they validated.)
    pub fn safe_read(&self, cell: &P::Cell) -> Option<Tagged> {
        loop {
            let observed = cell.load();
            let link = Tagged::from_raw(observed);
            if link.is_null() {
                return None;
            }
            let node = link.index();
            self.refs[node as usize].fetch_add(2);
            if cell.load() == observed {
                return Some(link);
            }
            // The link changed (its modification counter guarantees we can
            // tell): our increment may have landed on a reused or free
            // node. Undo it; `release` arbitrates reclamation races.
            self.release(node);
        }
    }

    /// Current reference count of `node` (for tests and diagnostics; racy
    /// by nature).
    pub fn ref_count(&self, node: u32) -> u64 {
        self.refs[node as usize].load() >> 1
    }

    fn try_reclaim(&self, node: u32) {
        // Only the process that wins the claim flag pushes the node to the
        // free list; late decrementers see a non-zero word and stand down.
        if self.refs[node as usize].cas(0, 1) {
            let successor = self.arena.next(node);
            self.arena.free(node);
            if !successor.is_null() {
                // The reclaimed node's link reference to its successor dies
                // with it.
                self.release(successor.index());
            }
        }
    }
}

impl<P: Platform> std::fmt::Debug for RcArena<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RcArena(capacity={})", self.arena.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::{NativePlatform, Tagged, NULL_INDEX};
    use std::sync::Arc;

    fn rc_arena(capacity: u32) -> RcArena<NativePlatform> {
        RcArena::new(&NativePlatform::new(), capacity)
    }

    #[test]
    fn alloc_release_cycles_a_node() {
        let a = rc_arena(1);
        let n = a.alloc().unwrap();
        assert_eq!(a.ref_count(n), 1);
        assert_eq!(a.alloc(), None, "single node is in use");
        a.release(n);
        assert_eq!(a.alloc(), Some(n), "released node is reusable");
    }

    #[test]
    fn add_ref_pins_a_node() {
        let a = rc_arena(1);
        let n = a.alloc().unwrap();
        a.add_ref(n);
        a.release(n);
        assert_eq!(a.alloc(), None, "outstanding reference pins the node");
        a.release(n);
        assert!(a.alloc().is_some());
    }

    #[test]
    fn safe_read_returns_pinned_node() {
        let p = NativePlatform::new();
        let a = RcArena::new(&p, 2);
        let n = a.alloc().unwrap();
        let link = p.alloc_cell(Tagged::new(n, 0).raw());
        let read = a.safe_read(&link).unwrap();
        assert_eq!(read.index(), n);
        assert_eq!(read.tag(), 0);
        assert_eq!(a.ref_count(n), 2, "local + safe_read references");
        a.release(n);
        a.release(n);
    }

    #[test]
    fn safe_read_of_null_is_none() {
        let p = NativePlatform::new();
        let a = RcArena::new(&p, 1);
        let link = p.alloc_cell(Tagged::NULL.raw());
        assert_eq!(a.safe_read(&link), None);
    }

    #[test]
    fn reclaim_releases_the_successor_link() {
        let a = rc_arena(2);
        let first = a.alloc().unwrap();
        let second = a.alloc().unwrap();
        // first --> second, with the link counted.
        a.nodes().set_next(first, second);
        a.add_ref(second);
        // Drop our local reference to second; only the link keeps it alive.
        a.release(second);
        assert_eq!(a.ref_count(second), 1);
        // Dropping first reclaims it AND unpins second transitively.
        a.release(first);
        let mut free = 0;
        while a.alloc().is_some() {
            free += 1;
        }
        assert_eq!(free, 2, "both nodes reclaimed");
    }

    #[test]
    fn held_node_pins_its_successors() {
        // The paper's Valois failure mode in miniature: a stalled process
        // holding one node keeps the whole chain from being reclaimed.
        let a = rc_arena(3);
        let n0 = a.alloc().unwrap();
        let n1 = a.alloc().unwrap();
        let n2 = a.alloc().unwrap();
        a.nodes().set_next(n0, n1);
        a.add_ref(n1);
        a.nodes().set_next(n1, n2);
        a.add_ref(n2);
        a.nodes().set_next(n2, NULL_INDEX);
        // Drop local refs to n1 and n2; links keep them alive.
        a.release(n1);
        a.release(n2);
        // A "stalled process" still holds n0 — nothing can be allocated.
        assert_eq!(a.alloc(), None);
        // Once it lets go, the entire chain unravels.
        a.release(n0);
        let mut free = 0;
        while a.alloc().is_some() {
            free += 1;
        }
        assert_eq!(free, 3);
    }

    #[test]
    fn stale_safe_read_does_not_double_free() {
        // Exercise release-vs-safe_read interleavings with real threads:
        // nodes cycle through a shared link while readers pin/unpin them.
        let p = NativePlatform::new();
        let a = Arc::new(RcArena::new(&p, 8));
        let link = Arc::new(p.alloc_cell(Tagged::NULL.raw()));

        let writer = {
            let a = Arc::clone(&a);
            let link = Arc::clone(&link);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    if let Some(n) = a.alloc() {
                        a.nodes().set_next(n, NULL_INDEX);
                        // Publish with a link reference, then drop ours.
                        a.add_ref(n);
                        let old = Tagged::from_raw(link.swap(Tagged::new(n, 0).raw()));
                        a.release(n);
                        if !old.is_null() {
                            a.release(old.index());
                        }
                    }
                }
                // Retire the final published node.
                let old = Tagged::from_raw(link.swap(Tagged::NULL.raw()));
                if !old.is_null() {
                    a.release(old.index());
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let a = Arc::clone(&a);
                let link = Arc::clone(&link);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        if let Some(n) = a.safe_read(&link) {
                            std::hint::spin_loop();
                            a.release(n.index());
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        // Conservation: all 8 nodes reclaimable, each exactly once.
        let mut seen = std::collections::HashSet::new();
        while let Some(n) = a.alloc() {
            assert!(seen.insert(n), "node {n} freed twice");
        }
        assert_eq!(seen.len(), 8, "all nodes recovered");
    }
}
