//! [`SegArena`]: fixed pool of array segments + Treiber-stack free list.
//!
//! The segment-batched queue (`msq-core`'s `WordSegQueue`) needs nodes
//! that are whole *arrays* of slots rather than single values. This arena
//! provides them in the same spirit as [`NodeArena`](crate::NodeArena):
//! a pre-allocated pool, a non-blocking LIFO free list threaded through
//! the segments' own `next` words, and tagged words against ABA.
//!
//! Because a segment is reused across *generations* while stale processes
//! may still hold its index, every mutable per-segment word carries the
//! segment's generation in its tag half:
//!
//! * **state words** (one per slot): `{state, gen}` — a slot-state CAS
//!   keyed to an old generation fails;
//! * **enqueue-count word**: `{count, gen}` — claimed by `fetch_add(1)`
//!   on the raw word; a claimant compares the returned tag against the
//!   generation it expected, so a stale `fetch_add` on a recycled
//!   segment is detected (it merely burns one claim index, which the
//!   queue's poisoning protocol skips over);
//! * **dequeue-index word**: `{index, gen}` — same CAS discipline;
//! * **next word**: `{segment index, modification counter}` exactly as in
//!   `NodeArena`, doubling as the free-list link.
//!
//! [`SegArena::free`] bumps the authoritative generation word *first*,
//! then resets the tagged words under the new generation, so by the time
//! a segment can be re-allocated every stale CAS is already doomed.
//!
//! Value words are plain (untaggable) `u64`s; the queue's slot protocol
//! guarantees a value store only happens between a generation-checked
//! claim CAS and the matching publication store.

use std::sync::Arc;

use msq_platform::{AtomicWord, Platform, Tagged, NULL_INDEX};

use crate::MemBudget;

/// A fixed pool of array segments shared by one concurrent queue.
///
/// # Example
///
/// ```
/// use msq_arena::SegArena;
/// use msq_platform::{AtomicWord, NativePlatform, Tagged};
///
/// let platform = NativePlatform::new();
/// let arena = SegArena::new(&platform, 4, 8);
/// let seg = arena.alloc().expect("fresh arena has free segments");
/// arena.value_cell(seg, 0).store(42);
/// assert_eq!(arena.value_cell(seg, 0).load(), 42);
/// arena.free(seg);
/// ```
pub struct SegArena<P: Platform> {
    /// Slot states, `seg * seg_size + slot`: `{state, gen}`.
    states: Vec<P::Cell>,
    /// Slot values, `seg * seg_size + slot`: raw payloads.
    values: Vec<P::Cell>,
    /// Per-segment claim counters: `{count, gen}`.
    enq_counts: Vec<P::Cell>,
    /// Per-segment dequeue indices: `{index, gen}`.
    deq_idxs: Vec<P::Cell>,
    /// Per-segment prefill counts: `{count, gen}`. Written only while a
    /// segment is privately owned (before a bulk splice publishes it);
    /// slots below the prefill count are published by the splice CAS
    /// itself, with no per-slot state transition.
    prefills: Vec<P::Cell>,
    /// Per-segment links: `{segment index, modification counter}`.
    nexts: Vec<P::Cell>,
    /// Per-segment authoritative generation (full 64-bit, monotone).
    gens: Vec<P::Cell>,
    free_top: P::Cell,
    seg_count: u32,
    seg_size: u32,
    /// Optional global residency budget: one unit per segment currently
    /// *out* of the free list. Reserved before a pop, released after a
    /// push-back (the free list's tagged generations make a pushed
    /// segment unreachable-by-construction, so crediting there respects
    /// the credit-after-unreachability rule).
    budget: Option<Arc<MemBudget<P>>>,
    /// Kept for the `seg:alloc:reserved` fault point in [`SegArena::alloc`]
    /// (a no-op outside the simulator).
    platform: P,
}

impl<P: Platform> SegArena<P> {
    /// Creates an arena of `seg_count` segments of `seg_size` slots, all
    /// initially free and at generation 0.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0 or `seg_count` does not fit a
    /// tagged index.
    pub fn new(platform: &P, seg_count: u32, seg_size: u32) -> Self {
        SegArena::build(platform, seg_count, seg_size, None)
    }

    /// Like [`SegArena::new`], but every [`SegArena::alloc`] reserves one
    /// unit against `budget` (and every [`SegArena::free`] credits it
    /// back), so segment residency across all arenas sharing the budget
    /// is globally bounded. An exhausted budget makes `alloc` return
    /// `None` exactly as an exhausted free list does.
    pub fn with_budget(
        platform: &P,
        seg_count: u32,
        seg_size: u32,
        budget: Arc<MemBudget<P>>,
    ) -> Self {
        SegArena::build(platform, seg_count, seg_size, Some(budget))
    }

    fn build(
        platform: &P,
        seg_count: u32,
        seg_size: u32,
        budget: Option<Arc<MemBudget<P>>>,
    ) -> Self {
        assert!(seg_count > 0, "arena needs at least one segment");
        assert!(seg_size > 0, "segments need at least one slot");
        assert!(
            seg_count < NULL_INDEX,
            "segment count must fit a tagged index"
        );
        let slots = (seg_count as usize) * (seg_size as usize);
        let states = (0..slots)
            .map(|_| platform.alloc_cell(Tagged::new(0, 0).raw()))
            .collect();
        let values = (0..slots).map(|_| platform.alloc_cell(0)).collect();
        let enq_counts = (0..seg_count)
            .map(|_| platform.alloc_cell(Tagged::new(0, 0).raw()))
            .collect();
        let deq_idxs = (0..seg_count)
            .map(|_| platform.alloc_cell(Tagged::new(0, 0).raw()))
            .collect();
        let prefills = (0..seg_count)
            .map(|_| platform.alloc_cell(Tagged::new(0, 0).raw()))
            .collect();
        // Thread the free list: segment i links to i + 1, the last to NULL.
        let nexts: Vec<P::Cell> = (0..seg_count)
            .map(|i| {
                let next = if i + 1 < seg_count { i + 1 } else { NULL_INDEX };
                platform.alloc_cell(Tagged::new(next, 0).raw())
            })
            .collect();
        let gens = (0..seg_count).map(|_| platform.alloc_cell(0)).collect();
        let free_top = platform.alloc_cell(Tagged::new(0, 0).raw());
        SegArena {
            states,
            values,
            enq_counts,
            deq_idxs,
            prefills,
            nexts,
            gens,
            free_top,
            seg_count,
            seg_size,
            budget,
            platform: platform.clone(),
        }
    }

    /// The budget this arena reserves against, if any.
    pub fn budget(&self) -> Option<&Arc<MemBudget<P>>> {
        self.budget.as_ref()
    }

    /// Number of segments in the pool.
    pub fn seg_count(&self) -> u32 {
        self.seg_count
    }

    /// Slots per segment.
    pub fn seg_size(&self) -> u32 {
        self.seg_size
    }

    /// Pops a segment off the free list (Treiber pop), or `None` if the
    /// pool is exhausted. Lock-free.
    ///
    /// The segment's state, claim, and dequeue words are already reset
    /// under its current generation (done by [`SegArena::free`]); its
    /// `next` word holds a stale free-list link that callers must point at
    /// `NULL_INDEX` (via [`SegArena::set_next`]) before publishing.
    pub fn alloc(&self) -> Option<u32> {
        // Reserve through the RAII guard so the unit cannot leak: until
        // `commit`, any exit from this function — including the unwind of
        // a process killed at the fault point below — credits it back.
        let reservation = match &self.budget {
            Some(budget) => match budget.try_reserve_guard(1) {
                Some(r) => Some(r),
                None => return None,
            },
            None => None,
        };
        // The unit is booked but no segment is attached yet: the window
        // the budget-conservation fault tests target.
        self.platform.fault_point("seg:alloc:reserved");
        let popped = self.pop_free();
        if popped.is_some() {
            if let Some(r) = reservation {
                // The segment now carries the unit; `free` releases it.
                r.commit();
            }
        }
        popped
    }

    /// The Treiber pop itself, budget aside.
    fn pop_free(&self) -> Option<u32> {
        loop {
            let top = Tagged::from_raw(self.free_top.load());
            if top.is_null() {
                return None;
            }
            // Safe even if the would-be-popped segment is concurrently
            // popped and reused: the CAS below fails (counter mismatch).
            let next = Tagged::from_raw(self.nexts[top.index() as usize].load());
            if self
                .free_top
                .cas(top.raw(), top.with_index(next.index()).raw())
            {
                return Some(top.index());
            }
            std::hint::spin_loop();
        }
    }

    /// Returns a drained segment to the free list. Lock-free.
    ///
    /// Bumps the generation first, then resets every tagged word (state
    /// and counter index halves to 0) under the new generation, so stale
    /// CASes keyed to the old generation can no longer succeed once the
    /// segment is re-allocatable.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `seg` is out of range.
    pub fn free(&self, seg: u32) {
        debug_assert!(seg < self.seg_count);
        let gen = self.gens[seg as usize].fetch_add(1).wrapping_add(1);
        let gtag = gen as u32;
        let base = (seg as usize) * (self.seg_size as usize);
        for slot in 0..self.seg_size as usize {
            self.states[base + slot].store(Tagged::new(0, gtag).raw());
        }
        self.enq_counts[seg as usize].store(Tagged::new(0, gtag).raw());
        self.deq_idxs[seg as usize].store(Tagged::new(0, gtag).raw());
        self.prefills[seg as usize].store(Tagged::new(0, gtag).raw());
        loop {
            let top = Tagged::from_raw(self.free_top.load());
            self.set_next(seg, top.index());
            if self.free_top.cas(top.raw(), top.with_index(seg).raw()) {
                break;
            }
            std::hint::spin_loop();
        }
        // The push is the unreachability point: any stale CAS on the
        // segment is doomed by the generation bump above, so the unit may
        // be credited back to the shared budget.
        if let Some(budget) = &self.budget {
            budget.release(1);
        }
    }

    /// The segment's current generation. Its low 32 bits are the tag
    /// carried by the segment's state/claim/dequeue words.
    pub fn gen(&self, seg: u32) -> u64 {
        self.gens[seg as usize].load()
    }

    /// Direct access to a slot's state word (`{state, gen}`).
    pub fn state_cell(&self, seg: u32, slot: u32) -> &P::Cell {
        &self.states[(seg as usize) * (self.seg_size as usize) + slot as usize]
    }

    /// Direct access to a slot's value word.
    pub fn value_cell(&self, seg: u32, slot: u32) -> &P::Cell {
        &self.values[(seg as usize) * (self.seg_size as usize) + slot as usize]
    }

    /// Direct access to the segment's claim-counter word (`{count, gen}`).
    pub fn enq_cell(&self, seg: u32) -> &P::Cell {
        &self.enq_counts[seg as usize]
    }

    /// Direct access to the segment's dequeue-index word (`{index, gen}`).
    pub fn deq_cell(&self, seg: u32) -> &P::Cell {
        &self.deq_idxs[seg as usize]
    }

    /// Direct access to the segment's prefill-count word (`{count, gen}`).
    ///
    /// Slots below the prefill count were published wholesale by a bulk
    /// splice: their value words are authoritative and their state words
    /// are still in the reset (`EMPTY`) state. Dequeuers must consult this
    /// word before interpreting a slot's state.
    pub fn prefill_cell(&self, seg: u32) -> &P::Cell {
        &self.prefills[seg as usize]
    }

    /// Reads a segment's next word.
    pub fn next(&self, seg: u32) -> Tagged {
        Tagged::from_raw(self.nexts[seg as usize].load())
    }

    /// Points `seg`'s next word at `to` (or [`NULL_INDEX`]), bumping the
    /// modification counter as [`NodeArena::set_next`](crate::NodeArena::set_next) does.
    pub fn set_next(&self, seg: u32, to: u32) {
        let old = Tagged::from_raw(self.nexts[seg as usize].load());
        self.nexts[seg as usize].store(old.with_index(to).raw());
    }

    /// CAS on `seg`'s next word: installs `<to, expected.tag + 1>` if the
    /// word still equals `expected`.
    pub fn cas_next(&self, seg: u32, expected: Tagged, to: u32) -> bool {
        self.nexts[seg as usize].cas(expected.raw(), expected.with_index(to).raw())
    }
}

impl<P: Platform> std::fmt::Debug for SegArena<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SegArena(seg_count={}, seg_size={})",
            self.seg_count, self.seg_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn arena(seg_count: u32, seg_size: u32) -> SegArena<NativePlatform> {
        SegArena::new(&NativePlatform::new(), seg_count, seg_size)
    }

    #[test]
    fn allocates_every_segment_exactly_once() {
        let a = arena(4, 8);
        let mut seen = HashSet::new();
        for _ in 0..4 {
            let s = a.alloc().expect("has capacity");
            assert!(seen.insert(s), "double allocation of {s}");
            assert!(s < 4);
        }
        assert_eq!(a.alloc(), None, "exhausted arena must refuse");
    }

    #[test]
    fn free_bumps_generation_and_resets_words() {
        let a = arena(2, 4);
        let s = a.alloc().unwrap();
        let g0 = a.gen(s);
        a.enq_cell(s).store(Tagged::new(3, g0 as u32).raw());
        a.state_cell(s, 1).store(Tagged::new(2, g0 as u32).raw());

        a.free(s);
        let g1 = a.gen(s);
        assert_eq!(g1, g0 + 1);
        let enq = Tagged::from_raw(a.enq_cell(s).load());
        assert_eq!(enq.index(), 0);
        assert_eq!(enq.tag(), g1 as u32);
        let state = Tagged::from_raw(a.state_cell(s, 1).load());
        assert_eq!(state.index(), 0);
        assert_eq!(state.tag(), g1 as u32);
    }

    #[test]
    fn stale_generation_cas_fails_after_free() {
        let a = arena(2, 2);
        let s = a.alloc().unwrap();
        let old_gtag = a.gen(s) as u32;
        a.free(s);
        assert_eq!(a.alloc(), Some(s), "LIFO reuse");
        // A CAS keyed to the pre-free generation must fail even though the
        // index halves match a freshly reset segment.
        assert!(!a.state_cell(s, 0).cas(
            Tagged::new(0, old_gtag).raw(),
            Tagged::new(1, old_gtag).raw()
        ));
        let new_gtag = a.gen(s) as u32;
        assert!(a.state_cell(s, 0).cas(
            Tagged::new(0, new_gtag).raw(),
            Tagged::new(1, new_gtag).raw()
        ));
    }

    #[test]
    fn stale_fetch_add_is_detectable_from_returned_tag() {
        let a = arena(2, 2);
        let s = a.alloc().unwrap();
        let expected = a.gen(s) as u32;
        a.free(s);
        // Stale claimant increments the recycled segment's counter; the
        // returned tag exposes the mismatch.
        let prev = Tagged::from_raw(a.enq_cell(s).fetch_add(1));
        assert_ne!(prev.tag(), expected);
        assert_eq!(prev.tag(), a.gen(s) as u32);
        // The burnt claim is visible to the current generation.
        assert_eq!(Tagged::from_raw(a.enq_cell(s).load()).index(), 1);
    }

    #[test]
    fn next_words_double_as_free_list_links() {
        let a = arena(3, 2);
        let s0 = a.alloc().unwrap();
        a.set_next(s0, NULL_INDEX);
        assert!(a.next(s0).is_null());
        let counter = a.next(s0).tag();
        a.free(s0);
        assert_ne!(a.next(s0).tag(), counter, "free must bump the link counter");
    }

    #[test]
    fn cas_next_requires_exact_tagged_match() {
        let a = arena(2, 2);
        let s = a.alloc().unwrap();
        a.set_next(s, NULL_INDEX);
        let current = a.next(s);
        let stale = Tagged::new(current.index(), current.tag().wrapping_sub(1));
        assert!(!a.cas_next(s, stale, 1));
        assert!(a.cas_next(s, current, 1));
        assert_eq!(a.next(s).index(), 1);
    }

    #[test]
    fn concurrent_alloc_free_conserves_segments() {
        let a = Arc::new(arena(16, 4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    if let Some(s) = a.alloc() {
                        a.value_cell(s, 0).store(u64::from(s) + 1);
                        assert_eq!(a.value_cell(s, 0).load(), u64::from(s) + 1);
                        a.free(s);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = HashSet::new();
        while let Some(s) = a.alloc() {
            assert!(seen.insert(s), "segment {s} on free list twice");
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn budget_caps_alloc_below_free_list_capacity() {
        let platform = NativePlatform::new();
        let budget = Arc::new(crate::MemBudget::new(&platform, 2));
        let a = SegArena::with_budget(&platform, 8, 4, Arc::clone(&budget));
        let s0 = a.alloc().expect("within budget");
        let s1 = a.alloc().expect("within budget");
        assert_eq!(a.alloc(), None, "budget of 2 denies a third segment");
        assert_eq!(budget.denials(), 1);
        assert_eq!(budget.reserved(), 2);
        a.free(s0);
        assert_eq!(budget.reserved(), 1, "free credits the budget");
        assert_eq!(a.alloc(), Some(s0), "credit makes room again");
        a.free(s1);
        assert_eq!(budget.peak(), 2);
    }

    #[test]
    fn budget_is_shared_across_arenas() {
        let platform = NativePlatform::new();
        let budget = Arc::new(crate::MemBudget::new(&platform, 3));
        let a = SegArena::with_budget(&platform, 4, 2, Arc::clone(&budget));
        let b = SegArena::with_budget(&platform, 4, 2, Arc::clone(&budget));
        assert!(a.alloc().is_some());
        assert!(b.alloc().is_some());
        let last = a.alloc().unwrap();
        assert_eq!(b.alloc(), None, "sibling arena exhausts the shared cap");
        a.free(last);
        assert!(
            b.alloc().is_some(),
            "credit from one arena unblocks another"
        );
    }

    #[test]
    fn exhausted_free_list_refunds_its_reservation() {
        let platform = NativePlatform::new();
        let budget = Arc::new(crate::MemBudget::new(&platform, 10));
        let a = SegArena::with_budget(&platform, 2, 2, Arc::clone(&budget));
        let _s0 = a.alloc().unwrap();
        let _s1 = a.alloc().unwrap();
        assert_eq!(a.alloc(), None, "free list empty");
        assert_eq!(
            budget.reserved(),
            2,
            "the failed alloc must not leak its reservation"
        );
    }

    #[test]
    fn works_inside_the_simulator() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 4,
            ..SimConfig::default()
        });
        let a = Arc::new(SegArena::new(&sim.platform(), 8, 4));
        let report = sim.run({
            let a = Arc::clone(&a);
            move |_| {
                for _ in 0..50 {
                    let s = a.alloc().expect("8 segments for 4 procs");
                    a.free(s);
                }
            }
        });
        assert!(report.total_ops > 0);
        let mut count = 0;
        while a.alloc().is_some() {
            count += 1;
        }
        assert_eq!(count, 8, "conservation under simulated contention");
    }
}
