//! [`NodeArena`]: fixed-capacity nodes + Treiber-stack free list.

use std::sync::Arc;

use msq_platform::{AtomicWord, Platform, Tagged, NULL_INDEX};

use crate::budget::MemBudget;

/// A fixed pool of list nodes shared by one concurrent data structure.
///
/// Each node is a pair of shared words:
///
/// * a **value** word (opaque `u64` payload), and
/// * a **next** word holding a [`Tagged`] `{index, modification-counter}`
///   pair, used both as the linked-list link while a node is in a queue and
///   as the stack link while it sits on the free list — the same reuse the
///   paper's C implementation performs.
///
/// [`NodeArena::alloc`] and [`NodeArena::free`] are lock-free (Treiber's
/// stack with ABA counters in the top-of-stack word).
///
/// # Example
///
/// ```
/// use msq_arena::NodeArena;
/// use msq_platform::NativePlatform;
///
/// let platform = NativePlatform::new();
/// let arena = NodeArena::new(&platform, 4);
/// let node = arena.alloc().expect("fresh arena has free nodes");
/// arena.set_value(node, 42);
/// assert_eq!(arena.value(node), 42);
/// arena.free(node);
/// ```
pub struct NodeArena<P: Platform> {
    values: Vec<P::Cell>,
    nexts: Vec<P::Cell>,
    free_top: P::Cell,
    capacity: u32,
    /// Budget the whole pool is accounted against (one unit per node,
    /// reserved for the arena's lifetime), if any.
    budget: Option<Arc<MemBudget<P>>>,
}

impl<P: Platform> NodeArena<P> {
    /// Creates an arena of `capacity` nodes, all initially free.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or does not fit in a [`Tagged`] index.
    pub fn new(platform: &P, capacity: u32) -> Self {
        assert!(capacity > 0, "arena capacity must be positive");
        assert!(capacity < NULL_INDEX, "capacity must fit a tagged index");
        let values = (0..capacity).map(|_| platform.alloc_cell(0)).collect();
        // Thread the free list: node i links to i + 1, the last to NULL.
        let nexts: Vec<P::Cell> = (0..capacity)
            .map(|i| {
                let next = if i + 1 < capacity { i + 1 } else { NULL_INDEX };
                platform.alloc_cell(Tagged::new(next, 0).raw())
            })
            .collect();
        let free_top = platform.alloc_cell(Tagged::new(0, 0).raw());
        NodeArena {
            values,
            nexts,
            free_top,
            capacity,
            budget: None,
        }
    }

    /// As [`NodeArena::new`], metering the pool against `budget`: the
    /// whole `capacity` is preallocated and resident for the arena's
    /// lifetime, so that many units are reserved up front (one per node)
    /// and released when the arena drops.
    ///
    /// The constructor is infallible, so the reservation uses
    /// [`MemBudget::force_reserve`]: an arena larger than the remaining
    /// budget is *counted as an overrun*, not denied — the paper's queues
    /// preallocate their free lists unconditionally, and the budget's job
    /// here is to make that residency observable under `MSQ_MEM_BUDGET`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or does not fit in a [`Tagged`] index.
    pub fn with_budget(platform: &P, capacity: u32, budget: Arc<MemBudget<P>>) -> Self {
        budget.force_reserve(u64::from(capacity));
        let mut arena = Self::new(platform, capacity);
        arena.budget = Some(budget);
        arena
    }

    /// The budget this arena is metered against, if any.
    pub fn budget(&self) -> Option<&Arc<MemBudget<P>>> {
        self.budget.as_ref()
    }

    /// Number of nodes in the pool.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Pops a node index off the free list (Treiber pop), or `None` if the
    /// pool is exhausted. Lock-free.
    ///
    /// The returned node's `next` and `value` words hold stale contents;
    /// callers initialize them (Figure 1 lines E1–E3).
    pub fn alloc(&self) -> Option<u32> {
        loop {
            let top = Tagged::from_raw(self.free_top.load());
            if top.is_null() {
                return None;
            }
            // Reading the next link of the would-be-popped node is safe even
            // if it is concurrently popped and reused: the CAS below fails
            // (counter mismatch) and we retry.
            let next = Tagged::from_raw(self.nexts[top.index() as usize].load());
            if self
                .free_top
                .cas(top.raw(), top.with_index(next.index()).raw())
            {
                return Some(top.index());
            }
            // Retry pressure on the free list is far below that on the
            // queue ends (the paper applies backoff to the queues, not the
            // free list); a bare spin hint suffices. Under simulation each
            // retry already pays memory-op costs, so progress is charged.
            std::hint::spin_loop();
        }
    }

    /// Pushes `node` back onto the free list (Treiber push). Lock-free.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `node` is out of range.
    pub fn free(&self, node: u32) {
        debug_assert!(node < self.capacity);
        loop {
            let top = Tagged::from_raw(self.free_top.load());
            self.set_next(node, top.index());
            if self.free_top.cas(top.raw(), top.with_index(node).raw()) {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Reads a node's value word.
    pub fn value(&self, node: u32) -> u64 {
        self.values[node as usize].load()
    }

    /// Writes a node's value word.
    pub fn set_value(&self, node: u32, value: u64) {
        self.values[node as usize].store(value)
    }

    /// Reads a node's next word.
    pub fn next(&self, node: u32) -> Tagged {
        Tagged::from_raw(self.nexts[node as usize].load())
    }

    /// Points `node`'s next word at `to` (or [`NULL_INDEX`]), preserving the
    /// word's modification counter by bumping it — so an in-flight CAS by
    /// another process keyed to the old contents cannot spuriously succeed.
    pub fn set_next(&self, node: u32, to: u32) {
        let old = Tagged::from_raw(self.nexts[node as usize].load());
        self.nexts[node as usize].store(old.with_index(to).raw());
    }

    /// CAS on `node`'s next word: installs `<to, expected.tag + 1>` if the
    /// word still equals `expected` (Figure 1 line E9).
    pub fn cas_next(&self, node: u32, expected: Tagged, to: u32) -> bool {
        self.nexts[node as usize].cas(expected.raw(), expected.with_index(to).raw())
    }

    /// Direct access to the next-word cell, for algorithms with needs beyond
    /// the helpers (e.g. Mellor-Crummey's unconditional link store).
    pub fn next_cell(&self, node: u32) -> &P::Cell {
        &self.nexts[node as usize]
    }

    /// Direct access to the value-word cell.
    pub fn value_cell(&self, node: u32) -> &P::Cell {
        &self.values[node as usize]
    }
}

impl<P: Platform> Drop for NodeArena<P> {
    fn drop(&mut self) {
        // Credit the pool back only now that no node can be reached: the
        // arena owns every cell, so dropping it is the unreachability proof
        // the budget discipline requires.
        if let Some(budget) = &self.budget {
            budget.release(u64::from(self.capacity));
        }
    }
}

impl<P: Platform> std::fmt::Debug for NodeArena<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeArena(capacity={})", self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn arena(capacity: u32) -> NodeArena<NativePlatform> {
        NodeArena::new(&NativePlatform::new(), capacity)
    }

    #[test]
    fn allocates_every_node_exactly_once() {
        let a = arena(8);
        let mut seen = HashSet::new();
        for _ in 0..8 {
            let n = a.alloc().expect("has capacity");
            assert!(seen.insert(n), "double allocation of {n}");
            assert!(n < 8);
        }
        assert_eq!(a.alloc(), None, "exhausted arena must refuse");
    }

    #[test]
    fn freed_nodes_are_reused() {
        let a = arena(2);
        let n1 = a.alloc().unwrap();
        let n2 = a.alloc().unwrap();
        assert_eq!(a.alloc(), None);
        a.free(n1);
        assert_eq!(a.alloc(), Some(n1), "LIFO reuse");
        a.free(n2);
        a.free(n1);
        assert_eq!(a.alloc(), Some(n1));
        assert_eq!(a.alloc(), Some(n2));
    }

    #[test]
    fn value_and_next_round_trip() {
        let a = arena(3);
        let n = a.alloc().unwrap();
        a.set_value(n, 999);
        assert_eq!(a.value(n), 999);
        a.set_next(n, NULL_INDEX);
        assert!(a.next(n).is_null());
        a.set_next(n, 2);
        assert_eq!(a.next(n).index(), 2);
    }

    #[test]
    fn set_next_bumps_the_counter() {
        let a = arena(2);
        let n = a.alloc().unwrap();
        let before = a.next(n).tag();
        a.set_next(n, NULL_INDEX);
        assert_eq!(a.next(n).tag(), before.wrapping_add(1));
    }

    #[test]
    fn cas_next_requires_exact_tagged_match() {
        let a = arena(4);
        let n = a.alloc().unwrap();
        a.set_next(n, NULL_INDEX);
        let current = a.next(n);
        // Stale tag must fail even with the right index.
        let stale = Tagged::new(current.index(), current.tag().wrapping_sub(1));
        assert!(!a.cas_next(n, stale, 2));
        assert!(a.cas_next(n, current, 2));
        assert_eq!(a.next(n).index(), 2);
        assert_eq!(a.next(n).tag(), current.tag().wrapping_add(1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        arena(0);
    }

    #[test]
    fn concurrent_alloc_free_conserves_nodes() {
        let a = Arc::new(arena(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    if let Some(n) = a.alloc() {
                        // Touch the node to shake out aliasing bugs.
                        a.set_value(n, u64::from(n) + 1);
                        assert_eq!(a.value(n), u64::from(n) + 1);
                        a.free(n);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All nodes must be back: drain exactly `capacity` then None.
        let mut count = 0;
        let mut seen = HashSet::new();
        while let Some(n) = a.alloc() {
            assert!(seen.insert(n), "node {n} on free list twice");
            count += 1;
        }
        assert_eq!(count, 64);
    }

    #[test]
    fn concurrent_allocators_never_share_a_node() {
        let a = Arc::new(arena(32));
        let taken: Arc<Vec<std::sync::atomic::AtomicU32>> = Arc::new(
            (0..32)
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect(),
        );
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    if let Some(n) = a.alloc() {
                        let prev =
                            taken[n as usize].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert_eq!(prev, 0, "node {n} allocated to two threads");
                        taken[n as usize].fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        a.free(n);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn works_inside_the_simulator() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 4,
            ..SimConfig::default()
        });
        let a = Arc::new(NodeArena::new(&sim.platform(), 16));
        let report = sim.run({
            let a = Arc::clone(&a);
            move |_| {
                for _ in 0..50 {
                    let n = a.alloc().expect("16 nodes for 4 procs");
                    a.free(n);
                }
            }
        });
        assert!(report.total_ops > 0);
        let mut count = 0;
        while a.alloc().is_some() {
            count += 1;
        }
        assert_eq!(count, 16, "conservation under simulated contention");
    }
}
