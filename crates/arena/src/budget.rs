//! [`MemBudget`]: a process-global, lock-free memory budget for segments.
//!
//! The paper's free-list bounds each queue's memory by construction: nodes
//! are preallocated and recycled, so one queue can never grow without
//! bound. That bound is *per queue*, though — a process running many
//! `SegQueue`s (the sharded front-end alone owns N of them) has unbounded
//! aggregate segment churn. `MemBudget` restores a global bound in the
//! spirit of the memory-optimal non-blocking queues of Aksenov et al.:
//! every segment a queue brings into existence must first **reserve** a
//! unit against a fixed budget, and the unit is **released only when the
//! segment is provably unreachable** (actually freed, not merely pooled).
//!
//! The accounting discipline ("credit-after-unreachability") is what makes
//! the bound sound: a drained segment sitting in a reuse pool is still
//! resident memory, and a segment retired to the hazard domain may still
//! be reachable through a stale traversal, so neither may credit the
//! budget. Only the point where a segment's storage genuinely returns to
//! the allocator — or, for arena-backed queues, to the arena free list,
//! which the tagged-generation protocol makes unreachable-by-construction
//! — runs [`MemBudget::release`].
//!
//! The counters are plain [`AtomicWord`] cells allocated from a
//! [`Platform`], so the same type meters native queues and queues running
//! inside the `msq-sim` deterministic simulator (where every reserve and
//! release is charged in the coherence cost model like any other shared
//! word).
//!
//! When the budget is exhausted, allocators escalate rather than grow:
//! flush deferred hazard retirements, shrink reuse pools via registered
//! [reclaimers](MemBudget::register_reclaimer), and finally report
//! backpressure (`QueueFull`/`BatchFull`) instead of allocating past the
//! limit.

use std::sync::{Arc, Mutex, OnceLock};

use msq_platform::{AtomicWord, NativePlatform, Platform};

/// A reclaimer callback: attempts to free budgeted memory (e.g. by
/// draining a segment pool) and returns how many units it released.
pub type Reclaimer = Box<dyn Fn() -> u64 + Send + Sync>;

/// A shared budget metering segment residency across any number of queues.
///
/// `limit` is in abstract *units* — the queues in this repository use one
/// unit per segment. [`u64::MAX`] means unlimited (metering only).
///
/// # Example
///
/// ```
/// use msq_arena::MemBudget;
/// use msq_platform::NativePlatform;
///
/// let budget = MemBudget::new(&NativePlatform::new(), 2);
/// assert!(budget.try_reserve(1));
/// assert!(budget.try_reserve(1));
/// assert!(!budget.try_reserve(1), "third segment exceeds the budget");
/// budget.release(1);
/// assert!(budget.try_reserve(1), "released units can be re-reserved");
/// assert_eq!(budget.peak(), 2);
/// ```
pub struct MemBudget<P: Platform> {
    /// Hard cap on concurrently reserved units. Immutable after creation.
    limit: u64,
    /// Currently reserved units.
    reserved: P::Cell,
    /// High-water mark of `reserved`.
    peak: P::Cell,
    /// Failed [`MemBudget::try_reserve`] calls (backpressure events).
    denials: P::Cell,
    /// [`MemBudget::force_reserve`] calls that pushed `reserved` past the
    /// limit (infallible paths that could not take backpressure).
    overruns: P::Cell,
    /// Registered pool-shrink callbacks, keyed by registration slot.
    reclaimers: Mutex<Vec<Option<Reclaimer>>>,
}

impl<P: Platform> MemBudget<P> {
    /// Creates a budget of `limit` units on `platform`.
    pub fn new(platform: &P, limit: u64) -> Self {
        MemBudget {
            limit,
            reserved: platform.alloc_cell(0),
            peak: platform.alloc_cell(0),
            denials: platform.alloc_cell(0),
            overruns: platform.alloc_cell(0),
            reclaimers: Mutex::new(Vec::new()),
        }
    }

    /// Creates an unlimited budget (metering only: every reserve
    /// succeeds, peak/reserved are still tracked).
    pub fn unlimited(platform: &P) -> Self {
        MemBudget::new(platform, u64::MAX)
    }

    /// The configured limit in units ([`u64::MAX`] = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Units currently reserved.
    pub fn reserved(&self) -> u64 {
        self.reserved.load()
    }

    /// High-water mark of concurrently reserved units.
    pub fn peak(&self) -> u64 {
        self.peak.load()
    }

    /// Number of denied [`MemBudget::try_reserve`] calls so far.
    pub fn denials(&self) -> u64 {
        self.denials.load()
    }

    /// Number of [`MemBudget::force_reserve`] calls that overran the
    /// limit.
    pub fn overruns(&self) -> u64 {
        self.overruns.load()
    }

    /// Attempts to reserve `n` units. Lock-free.
    ///
    /// Returns `false` (and counts a denial) if the reservation would push
    /// `reserved` past the limit; the caller must not allocate.
    pub fn try_reserve(&self, n: u64) -> bool {
        loop {
            let current = self.reserved.load();
            let next = match current.checked_add(n) {
                Some(next) if next <= self.limit => next,
                _ => {
                    self.denials.fetch_add(1);
                    return false;
                }
            };
            if self.reserved.cas(current, next) {
                self.note_peak(next);
                return true;
            }
            std::hint::spin_loop();
        }
    }

    /// Reserves `n` units unconditionally. Lock-free.
    ///
    /// Used by infallible paths (constructors, `enqueue` without a `try_`
    /// variant) that cannot report backpressure: the reservation always
    /// succeeds, but pushing past the limit is counted as an overrun so
    /// the violation is observable.
    pub fn force_reserve(&self, n: u64) {
        let next = self.reserved.fetch_add(n).wrapping_add(n);
        if next > self.limit {
            self.overruns.fetch_add(1);
        }
        self.note_peak(next);
    }

    /// Returns `n` units to the budget. Lock-free.
    ///
    /// Call this only once the backing memory is provably unreachable
    /// (truly freed, or returned to a generation-tagged arena free list) —
    /// never for segments merely parked in a reuse pool.
    pub fn release(&self, n: u64) {
        let prev = self.reserved.fetch_sub(n);
        debug_assert!(prev >= n, "budget release underflow: {prev} - {n}");
    }

    /// Registers a reclaimer to be invoked by [`MemBudget::reclaim`] when
    /// the budget runs dry (typically: drain a queue's segment pool).
    /// Returns a token for [`MemBudget::unregister_reclaimer`].
    pub fn register_reclaimer(&self, f: Reclaimer) -> usize {
        let mut slots = self.reclaimers.lock().unwrap();
        if let Some(id) = slots.iter().position(Option::is_none) {
            slots[id] = Some(f);
            id
        } else {
            slots.push(Some(f));
            slots.len() - 1
        }
    }

    /// Removes a previously registered reclaimer. Idempotent.
    pub fn unregister_reclaimer(&self, id: usize) {
        let mut slots = self.reclaimers.lock().unwrap();
        if let Some(slot) = slots.get_mut(id) {
            *slot = None;
        }
    }

    /// Applies cross-queue reclaim pressure: runs every registered
    /// reclaimer and returns the total units they released. Called by
    /// allocators after their local options (own pool, eager hazard scan)
    /// are exhausted, before giving up and reporting backpressure.
    pub fn reclaim(&self) -> u64 {
        let slots = self.reclaimers.lock().unwrap();
        slots.iter().flatten().map(|f| f()).sum()
    }

    /// CAS-max loop raising the peak watermark to at least `candidate`.
    fn note_peak(&self, candidate: u64) {
        loop {
            let seen = self.peak.load();
            if candidate <= seen || self.peak.cas(seen, candidate) {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// As [`MemBudget::try_reserve`], but returns an RAII [`Reservation`]
    /// guard instead of a bare flag.
    ///
    /// The units flow back to the budget when the guard drops — including
    /// a drop during unwinding, so a process that dies between reserving
    /// and attaching the memory (the fault suite's kill-mid-allocation
    /// scenario) leaks nothing. Call [`Reservation::commit`] once the
    /// allocated object has taken ownership of the units (its own drop
    /// path must then release them).
    pub fn try_reserve_guard(self: &Arc<Self>, units: u64) -> Option<Reservation<P>> {
        self.try_reserve(units).then(|| Reservation {
            budget: Arc::clone(self),
            units,
        })
    }
}

/// RAII guard for reserved budget units: releases them on drop unless
/// [`Reservation::commit`]ted. See [`MemBudget::try_reserve_guard`].
pub struct Reservation<P: Platform> {
    budget: Arc<MemBudget<P>>,
    units: u64,
}

impl<P: Platform> Reservation<P> {
    /// Units this guard still holds.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Transfers ownership of the units to the caller: the guard releases
    /// nothing on drop, and whoever owns the allocated memory must
    /// [`MemBudget::release`] when it becomes unreachable.
    pub fn commit(mut self) {
        self.units = 0;
    }
}

impl<P: Platform> Drop for Reservation<P> {
    fn drop(&mut self) {
        if self.units > 0 {
            self.budget.release(self.units);
        }
    }
}

impl<P: Platform> std::fmt::Debug for Reservation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Reservation({} units)", self.units)
    }
}

impl MemBudget<NativePlatform> {
    /// The process-global native budget.
    ///
    /// Its limit comes from the `MSQ_MEM_BUDGET` environment variable
    /// (a segment count, read once on first use); unset or unparsable
    /// means unlimited, so existing code is metered but never denied.
    /// Heap-allocating queues attach this budget by default.
    pub fn global() -> &'static Arc<MemBudget<NativePlatform>> {
        static GLOBAL: OnceLock<Arc<MemBudget<NativePlatform>>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let limit = std::env::var("MSQ_MEM_BUDGET")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(u64::MAX);
            Arc::new(MemBudget::new(&NativePlatform::new(), limit))
        })
    }
}

impl<P: Platform> std::fmt::Debug for MemBudget<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemBudget")
            .field("limit", &self.limit)
            .field("reserved", &self.reserved())
            .field("peak", &self.peak())
            .field("denials", &self.denials())
            .field("overruns", &self.overruns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn budget(limit: u64) -> MemBudget<NativePlatform> {
        MemBudget::new(&NativePlatform::new(), limit)
    }

    #[test]
    fn reserve_release_tracks_watermarks() {
        let b = budget(4);
        assert!(b.try_reserve(3));
        assert_eq!(b.reserved(), 3);
        assert_eq!(b.peak(), 3);
        b.release(2);
        assert_eq!(b.reserved(), 1);
        assert_eq!(b.peak(), 3, "peak is a high-water mark");
        assert!(b.try_reserve(3));
        assert_eq!(b.peak(), 4);
    }

    #[test]
    fn denial_leaves_reservation_untouched() {
        let b = budget(2);
        assert!(b.try_reserve(2));
        assert!(!b.try_reserve(1));
        assert_eq!(b.reserved(), 2);
        assert_eq!(b.denials(), 1);
        b.release(1);
        assert!(b.try_reserve(1));
    }

    #[test]
    fn unlimited_never_denies_even_near_overflow() {
        let b = MemBudget::unlimited(&NativePlatform::new());
        assert!(b.try_reserve(u64::MAX - 1));
        // A checked_add overflow must deny rather than wrap.
        assert!(!b.try_reserve(2));
        assert_eq!(b.denials(), 1);
    }

    #[test]
    fn force_reserve_counts_overruns() {
        let b = budget(1);
        b.force_reserve(1);
        assert_eq!(b.overruns(), 0);
        b.force_reserve(1);
        assert_eq!(b.overruns(), 1);
        assert_eq!(b.reserved(), 2);
        assert_eq!(b.peak(), 2);
    }

    #[test]
    fn reclaimers_run_and_unregister() {
        let b = budget(1);
        let calls = Arc::new(AtomicU64::new(0));
        let id = b.register_reclaimer({
            let calls = Arc::clone(&calls);
            Box::new(move || {
                calls.fetch_add(1, Ordering::Relaxed);
                3
            })
        });
        let id2 = b.register_reclaimer(Box::new(|| 0));
        assert_ne!(id, id2);
        assert_eq!(b.reclaim(), 3);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        b.unregister_reclaimer(id);
        assert_eq!(b.reclaim(), 0);
        // Slot reuse after unregistration.
        assert_eq!(b.register_reclaimer(Box::new(|| 0)), id);
    }

    #[test]
    fn concurrent_reservation_never_exceeds_limit() {
        let b = Arc::new(budget(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    if b.try_reserve(1) {
                        assert!(b.reserved() <= 8);
                        b.release(1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.reserved(), 0);
        assert!(b.peak() <= 8);
    }

    #[test]
    fn works_inside_the_simulator() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 4,
            ..SimConfig::default()
        });
        let b = Arc::new(MemBudget::new(&sim.platform(), 2));
        let report = sim.run({
            let b = Arc::clone(&b);
            move |_| {
                for _ in 0..100 {
                    if b.try_reserve(1) {
                        assert!(b.reserved() <= 2);
                        b.release(1);
                    }
                }
            }
        });
        assert!(report.total_ops > 0);
        assert_eq!(b.reserved(), 0);
        assert!(b.peak() <= 2);
        assert!(b.peak() >= 1);
    }
}
