//! Node storage for the queue algorithms.
//!
//! The paper's queues never call a general-purpose allocator: nodes come
//! from a pre-allocated pool threaded through "Treiber's simple and
//! efficient non-blocking stack algorithm", and a dequeued node may be
//! pushed straight back for reuse because the Michael–Scott dequeue
//! guarantees `Tail` never points at (or behind) a reclaimed node.
//!
//! [`NodeArena`] provides exactly that: `capacity` nodes, each with a value
//! word and a [`Tagged`](msq_platform::Tagged) next word, plus a
//! non-blocking LIFO free list. The
//! tagged `{index, counter}` representation is the paper's own suggestion
//! for fitting an ABA counter and a pointer into one CAS-able word.
//!
//! [`RcArena`] adds Valois-style per-node reference counting (with the
//! double-reclamation fix in the spirit of Michael & Scott's TR 599
//! correction); it exists so the Valois baseline pays the same costs it
//! paid in the paper's experiments.
//!
//! [`SegArena`] generalizes the node pool to whole array *segments* with
//! per-generation tags on every mutable word, backing the segment-batched
//! queue variant in `msq-core`.
//!
//! [`MemBudget`] bounds segment residency *globally*: a lock-free budget
//! every allocator reserves against before bringing a segment into
//! existence, crediting units back only once the segment is provably
//! unreachable.

#![warn(missing_docs)]

mod arena;
mod budget;
mod seg;
mod valois;

pub use arena::NodeArena;
pub use budget::{MemBudget, Reclaimer, Reservation};
pub use seg::SegArena;
pub use valois::RcArena;
