//! Recorded histories and the fast whole-history safety checks.

use std::collections::HashMap;

/// One completed queue operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operation {
    /// `enqueue(value)`; always succeeds in recorded histories.
    Enqueue(u64),
    /// `dequeue()` returning `Some(value)` or observing empty (`None`).
    Dequeue(Option<u64>),
}

/// A completed operation with its real-time interval.
///
/// `invoked_at < returned_at` always; timestamps come from a shared logical
/// clock, so intervals across processes are comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The process (thread) that performed the operation.
    pub process: usize,
    /// What was done and what came back.
    pub operation: Operation,
    /// Logical time just before the operation was invoked.
    pub invoked_at: u64,
    /// Logical time just after the operation returned.
    pub returned_at: u64,
}

/// A safety violation found by the fast checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A dequeue returned a value no enqueue inserted.
    UnknownValue(u64),
    /// A value was dequeued more than once.
    DuplicateDequeue(u64),
    /// More successful dequeues than enqueues (should be caught by the two
    /// above when values are unique, but guards non-unique histories).
    Imbalance {
        /// Number of enqueues in the history.
        enqueues: usize,
        /// Number of successful dequeues in the history.
        dequeues: usize,
    },
    /// Real-time FIFO order violated: `first` was enqueued strictly before
    /// `second` (non-overlapping), yet dequeued strictly after it.
    FifoReorder {
        /// The earlier-enqueued value.
        first: u64,
        /// The later-enqueued value that was dequeued first.
        second: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnknownValue(v) => write!(f, "dequeued value {v} was never enqueued"),
            Violation::DuplicateDequeue(v) => write!(f, "value {v} dequeued twice"),
            Violation::Imbalance { enqueues, dequeues } => {
                write!(f, "{dequeues} dequeues exceed {enqueues} enqueues")
            }
            Violation::FifoReorder { first, second } => write!(
                f,
                "value {first} enqueued strictly before {second} but dequeued after it"
            ),
        }
    }
}

/// A complete recorded history.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Builds a history from raw events.
    pub fn from_events(events: Vec<Event>) -> Self {
        History { events }
    }

    /// The recorded events (unordered across processes).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Runs every fast safety check, returning all violations found.
    ///
    /// Values must be unique across enqueues for the conservation checks to
    /// be meaningful (the harness guarantees this by construction).
    pub fn check_queue_safety(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut enqueued: HashMap<u64, &Event> = HashMap::new();
        let mut enqueue_count = 0usize;
        for event in &self.events {
            if let Operation::Enqueue(v) = event.operation {
                enqueued.insert(v, event);
                enqueue_count += 1;
            }
        }
        let mut dequeued: HashMap<u64, &Event> = HashMap::new();
        let mut dequeue_count = 0usize;
        for event in &self.events {
            if let Operation::Dequeue(Some(v)) = event.operation {
                dequeue_count += 1;
                if !enqueued.contains_key(&v) {
                    violations.push(Violation::UnknownValue(v));
                }
                if dequeued.insert(v, event).is_some() {
                    violations.push(Violation::DuplicateDequeue(v));
                }
            }
        }
        if dequeue_count > enqueue_count {
            violations.push(Violation::Imbalance {
                enqueues: enqueue_count,
                dequeues: dequeue_count,
            });
        }
        violations.extend(self.check_realtime_fifo(&enqueued, &dequeued));
        violations
    }

    /// Real-time FIFO: if `enq(a)` returned before `enq(b)` was invoked and
    /// both values were dequeued, then `deq(a)` must not have been invoked
    /// strictly after `deq(b)` returned.
    fn check_realtime_fifo(
        &self,
        enqueued: &HashMap<u64, &Event>,
        dequeued: &HashMap<u64, &Event>,
    ) -> Vec<Violation> {
        // Sort dequeued values by their enqueue completion time; a
        // violation needs enq(a).ret < enq(b).inv with deq(b).ret <
        // deq(a).inv. O(n log n + candidate pairs) via a sweep: for each b
        // in enqueue-invocation order, compare against the a whose dequeue
        // started latest among strictly-earlier enqueues.
        let mut pairs: Vec<(&Event, &Event)> = dequeued
            .iter()
            .filter_map(|(v, deq)| enqueued.get(v).map(|enq| (*enq, *deq)))
            .collect();
        // Order by enqueue return time.
        pairs.sort_by_key(|(enq, _)| enq.returned_at);
        let mut violations = Vec::new();
        // Track, over the prefix of values whose enqueue returned before
        // time t, the maximum dequeue invocation time (the "latest leaving"
        // earlier value).
        let mut best: Option<(&Event, &Event)> = None; // (enq, deq) with max deq.invoked_at
        let mut idx = 0;
        let mut by_enqueue_invoke = pairs.clone();
        by_enqueue_invoke.sort_by_key(|(enq, _)| enq.invoked_at);
        for (enq_b, deq_b) in &by_enqueue_invoke {
            // Admit into `best` every a with enq_a.returned_at < enq_b.invoked_at.
            while idx < pairs.len() && pairs[idx].0.returned_at < enq_b.invoked_at {
                let candidate = pairs[idx];
                if best.is_none_or(|(_, d)| candidate.1.invoked_at > d.invoked_at) {
                    best = Some(candidate);
                }
                idx += 1;
            }
            if let Some((enq_a, deq_a)) = best {
                if deq_b.returned_at < deq_a.invoked_at {
                    violations.push(Violation::FifoReorder {
                        first: match enq_a.operation {
                            Operation::Enqueue(v) => v,
                            _ => unreachable!("enqueue event"),
                        },
                        second: match enq_b.operation {
                            Operation::Enqueue(v) => v,
                            _ => unreachable!("enqueue event"),
                        },
                    });
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(process: usize, operation: Operation, invoked_at: u64, returned_at: u64) -> Event {
        Event {
            process,
            operation,
            invoked_at,
            returned_at,
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = History::from_events(vec![
            ev(0, Operation::Enqueue(1), 0, 1),
            ev(0, Operation::Enqueue(2), 2, 3),
            ev(1, Operation::Dequeue(Some(1)), 4, 5),
            ev(1, Operation::Dequeue(Some(2)), 6, 7),
            ev(1, Operation::Dequeue(None), 8, 9),
        ]);
        assert!(h.check_queue_safety().is_empty());
    }

    #[test]
    fn detects_unknown_value() {
        let h = History::from_events(vec![ev(0, Operation::Dequeue(Some(99)), 0, 1)]);
        let v = h.check_queue_safety();
        assert!(v.contains(&Violation::UnknownValue(99)));
        assert!(v.iter().any(|v| matches!(v, Violation::Imbalance { .. })));
    }

    #[test]
    fn detects_duplicate_dequeue() {
        let h = History::from_events(vec![
            ev(0, Operation::Enqueue(5), 0, 1),
            ev(1, Operation::Dequeue(Some(5)), 2, 3),
            ev(2, Operation::Dequeue(Some(5)), 4, 5),
        ]);
        let v = h.check_queue_safety();
        assert!(v.contains(&Violation::DuplicateDequeue(5)));
    }

    #[test]
    fn detects_fifo_reorder() {
        // enq(1) finishes before enq(2) begins, but 2 is dequeued strictly
        // before deq(1) is even invoked.
        let h = History::from_events(vec![
            ev(0, Operation::Enqueue(1), 0, 1),
            ev(0, Operation::Enqueue(2), 2, 3),
            ev(1, Operation::Dequeue(Some(2)), 4, 5),
            ev(1, Operation::Dequeue(Some(1)), 6, 7),
        ]);
        let v = h.check_queue_safety();
        assert_eq!(
            v,
            vec![Violation::FifoReorder {
                first: 1,
                second: 2
            }]
        );
    }

    #[test]
    fn overlapping_enqueues_may_dequeue_in_either_order() {
        // enq(1) and enq(2) overlap in real time: either dequeue order is
        // linearizable, so no violation.
        let h = History::from_events(vec![
            ev(0, Operation::Enqueue(1), 0, 5),
            ev(1, Operation::Enqueue(2), 1, 4),
            ev(2, Operation::Dequeue(Some(2)), 6, 7),
            ev(2, Operation::Dequeue(Some(1)), 8, 9),
        ]);
        assert!(h.check_queue_safety().is_empty());
    }

    #[test]
    fn violation_messages_are_descriptive() {
        for v in [
            Violation::UnknownValue(1),
            Violation::DuplicateDequeue(2),
            Violation::Imbalance {
                enqueues: 1,
                dequeues: 2,
            },
            Violation::FifoReorder {
                first: 3,
                second: 4,
            },
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
