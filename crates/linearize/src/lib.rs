//! Mechanical checking of the paper's Section 3 claims.
//!
//! The paper argues its queues are *linearizable*: "there is a specific
//! point during each operation at which it is considered to take effect"
//! [Herlihy & Wing]. This crate turns that claim into executable checks:
//!
//! * [`Recorder`] / [`RecorderHandle`] — wrap any
//!   [`msq_platform::ConcurrentWordQueue`] and record every operation's
//!   invocation/response interval with a global logical clock;
//! * [`History`] — the recorded events, with **fast whole-history checks**
//!   (value conservation, no duplication, real-time FIFO ordering) that
//!   scale to millions of operations; and
//! * [`is_linearizable_queue`] — an exhaustive Wing–Gong search against the
//!   sequential FIFO specification ([`SequentialQueue`]) for small
//!   histories, with memoization.

#![warn(missing_docs)]

mod checker;
mod history;
mod recorder;
mod spec;

pub use checker::is_linearizable_queue;
pub use history::{Event, History, Operation, Violation};
pub use recorder::{Recorder, RecorderHandle};
pub use spec::SequentialQueue;
