//! Exhaustive linearizability checking (Wing & Gong's algorithm).

use std::collections::HashSet;

use crate::history::{Event, Operation};
use crate::spec::SequentialQueue;

/// Decides whether `events` is linearizable with respect to the sequential
/// FIFO queue specification.
///
/// Implements the Wing–Gong search: repeatedly pick a *minimal* pending
/// operation (one whose invocation precedes every pending response), apply
/// it to the specification, and backtrack on mismatch. Memoizes
/// `(completed-set, spec-state)` pairs, which makes typical histories of a
/// few dozen events tractable; the search is exponential in the worst
/// case, so callers keep histories small (the integration tests use
/// windows of ≤ 20 operations).
///
/// # Panics
///
/// Panics if `events` contains more than 64 operations (the memoization
/// mask is a `u64`).
///
/// # Example
///
/// ```
/// use msq_linearize::{is_linearizable_queue, Event, Operation};
///
/// let history = [
///     Event { process: 0, operation: Operation::Enqueue(1), invoked_at: 0, returned_at: 3 },
///     Event { process: 1, operation: Operation::Dequeue(Some(1)), invoked_at: 1, returned_at: 2 },
/// ];
/// assert!(is_linearizable_queue(&history));
/// ```
pub fn is_linearizable_queue(events: &[Event]) -> bool {
    assert!(events.len() <= 64, "history too large for exhaustive check");
    if events.is_empty() {
        return true;
    }
    let mut memo = HashSet::new();
    search(events, 0, &SequentialQueue::new(), &mut memo)
}

fn search(
    events: &[Event],
    done: u64,
    spec: &SequentialQueue,
    memo: &mut HashSet<(u64, Vec<u64>)>,
) -> bool {
    if done.count_ones() as usize == events.len() {
        return true;
    }
    if !memo.insert((done, spec.items().collect())) {
        return false; // already explored this configuration
    }
    // A pending op is minimal if its invocation precedes every pending
    // response; only minimal ops may be linearized next.
    let min_pending_return = events
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, e)| e.returned_at)
        .min()
        .expect("at least one pending");
    for (i, event) in events.iter().enumerate() {
        if done & (1 << i) != 0 || event.invoked_at > min_pending_return {
            continue;
        }
        let mut next_spec = spec.clone();
        let consistent = match event.operation {
            Operation::Enqueue(v) => {
                next_spec.enqueue(v);
                true
            }
            Operation::Dequeue(expected) => next_spec.dequeue() == expected,
        };
        if consistent && search(events, done | (1 << i), &next_spec, memo) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(operation: Operation, invoked_at: u64, returned_at: u64) -> Event {
        Event {
            process: 0,
            operation,
            invoked_at,
            returned_at,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(is_linearizable_queue(&[]));
    }

    #[test]
    fn sequential_fifo_is_linearizable() {
        let h = [
            ev(Operation::Enqueue(1), 0, 1),
            ev(Operation::Enqueue(2), 2, 3),
            ev(Operation::Dequeue(Some(1)), 4, 5),
            ev(Operation::Dequeue(Some(2)), 6, 7),
            ev(Operation::Dequeue(None), 8, 9),
        ];
        assert!(is_linearizable_queue(&h));
    }

    #[test]
    fn sequential_lifo_is_not_linearizable() {
        let h = [
            ev(Operation::Enqueue(1), 0, 1),
            ev(Operation::Enqueue(2), 2, 3),
            ev(Operation::Dequeue(Some(2)), 4, 5),
        ];
        assert!(!is_linearizable_queue(&h));
    }

    #[test]
    fn overlapping_enqueues_permit_either_order() {
        let h = [
            ev(Operation::Enqueue(1), 0, 10),
            ev(Operation::Enqueue(2), 1, 9),
            ev(Operation::Dequeue(Some(2)), 11, 12),
            ev(Operation::Dequeue(Some(1)), 13, 14),
        ];
        assert!(is_linearizable_queue(&h));
    }

    #[test]
    fn dequeue_none_must_be_justifiable() {
        // Dequeue(None) strictly after an unmatched enqueue completed and
        // with nothing else removing the value: not linearizable.
        let h = [
            ev(Operation::Enqueue(1), 0, 1),
            ev(Operation::Dequeue(None), 2, 3),
            ev(Operation::Dequeue(Some(1)), 4, 5),
        ];
        assert!(!is_linearizable_queue(&h));
    }

    #[test]
    fn dequeue_none_overlapping_enqueue_is_fine() {
        // The empty observation can linearize before the overlapping
        // enqueue takes effect.
        let h = [
            ev(Operation::Enqueue(1), 0, 5),
            ev(Operation::Dequeue(None), 1, 2),
            ev(Operation::Dequeue(Some(1)), 6, 7),
        ];
        assert!(is_linearizable_queue(&h));
    }

    #[test]
    fn stone_style_lost_value_is_caught() {
        // The race the paper found in Stone's queue: an item is enqueued
        // (operation completed) and then never dequeued, while later
        // operations observe empty. A full drain observing None after the
        // enqueue completed cannot linearize.
        let h = [
            ev(Operation::Enqueue(7), 0, 1),
            ev(Operation::Dequeue(None), 2, 3),
            ev(Operation::Dequeue(None), 4, 5),
        ];
        assert!(!is_linearizable_queue(&h));
    }

    #[test]
    fn pending_overlap_three_processes() {
        // Three overlapping operations with only one valid linearization.
        let h = [
            ev(Operation::Enqueue(1), 0, 6),
            ev(Operation::Enqueue(2), 0, 6),
            ev(Operation::Dequeue(Some(2)), 0, 6),
        ];
        // deq(2) requires enq(2) before it; enq(1) can go anywhere.
        assert!(is_linearizable_queue(&h));
    }

    #[test]
    fn respects_realtime_order() {
        // deq returns before enq begins: the dequeue cannot see the value.
        let h = [
            ev(Operation::Dequeue(Some(1)), 0, 1),
            ev(Operation::Enqueue(1), 2, 3),
        ];
        assert!(!is_linearizable_queue(&h));
    }

    #[test]
    #[should_panic(expected = "history too large")]
    fn oversized_history_is_rejected() {
        let h: Vec<Event> = (0..65)
            .map(|i| ev(Operation::Enqueue(i), i * 2, i * 2 + 1))
            .collect();
        is_linearizable_queue(&h);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::spec::SequentialQueue;
    use proptest::prelude::*;

    /// Builds a correct sequential history from a random op script, then
    /// randomly *stretches* each operation's interval leftward (keeping
    /// the response order). A sequential witness still exists, so the
    /// stretched, overlapping history must remain linearizable.
    fn correct_history(script: &[Option<u64>], stretches: &[u64]) -> Vec<Event> {
        let mut spec = SequentialQueue::new();
        let mut events = Vec::new();
        for (i, op) in script.iter().enumerate() {
            let t = (i as u64) * 10;
            let stretch = stretches.get(i).copied().unwrap_or(0) % (t + 1);
            let (invoked_at, returned_at) = (t - stretch.min(t), t + 5);
            let operation = match op {
                Some(v) => {
                    spec.enqueue(*v);
                    Operation::Enqueue(*v)
                }
                None => Operation::Dequeue(spec.dequeue()),
            };
            events.push(Event {
                process: i % 3,
                operation,
                invoked_at,
                returned_at,
            });
        }
        events
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn correct_histories_are_linearizable(
            script in prop::collection::vec(prop::option::of(0u64..50), 0..12),
            stretches in prop::collection::vec(0u64..100, 0..12),
        ) {
            let events = correct_history(&script, &stretches);
            prop_assert!(is_linearizable_queue(&events));
        }

        #[test]
        fn lifo_misorder_of_nonoverlapping_enqueues_is_rejected(
            gap in 1u64..10,
            a in 0u64..100,
            b in 100u64..200,
        ) {
            // enq(a) strictly precedes enq(b); dequeuing b first from a
            // 2-element queue can never linearize.
            let events = [
                Event { process: 0, operation: Operation::Enqueue(a), invoked_at: 0, returned_at: 1 },
                Event { process: 0, operation: Operation::Enqueue(b), invoked_at: 1 + gap, returned_at: 2 + gap },
                Event { process: 1, operation: Operation::Dequeue(Some(b)), invoked_at: 10 + gap, returned_at: 11 + gap },
            ];
            prop_assert!(!is_linearizable_queue(&events));
        }
    }
}
