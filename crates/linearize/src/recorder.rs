//! Recording concurrent operations against a live queue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use msq_platform::{ConcurrentWordQueue, QueueFull};

use crate::history::{Event, History, Operation};

/// Records operation intervals across threads with a shared logical clock.
///
/// Create one `Recorder`, hand a [`RecorderHandle`] to each worker thread,
/// run the workload, then call [`Recorder::finish`].
///
/// # Example
///
/// ```
/// use msq_linearize::Recorder;
/// use msq_platform::{ConcurrentWordQueue, NativePlatform};
/// // Any ConcurrentWordQueue works; here a single-threaded demo:
/// # use msq_core::WordMsQueue;
/// let queue = WordMsQueue::with_capacity(&NativePlatform::new(), 8);
/// let recorder = Recorder::new();
/// let mut handle = recorder.handle(0);
/// handle.enqueue(&queue, 5).unwrap();
/// assert_eq!(handle.dequeue(&queue), Some(5));
/// drop(handle);
/// let history = recorder.finish();
/// assert!(history.check_queue_safety().is_empty());
/// ```
pub struct Recorder {
    clock: Arc<AtomicU64>,
    events: Arc<Mutex<Vec<Event>>>,
}

impl Recorder {
    /// Creates a recorder with an empty history.
    pub fn new() -> Self {
        Recorder {
            clock: Arc::new(AtomicU64::new(0)),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle for `process` to record with; cheap to create, one per
    /// thread. Events are buffered locally and flushed when the handle
    /// drops.
    pub fn handle(&self, process: usize) -> RecorderHandle {
        RecorderHandle {
            clock: Arc::clone(&self.clock),
            events: Arc::clone(&self.events),
            buffer: Vec::new(),
            process,
        }
    }

    /// Collects the recorded history. Call after every handle has dropped.
    pub fn finish(self) -> History {
        let events = std::mem::take(&mut *self.events.lock().expect("recorder events"));
        History::from_events(events)
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Recorder(clock={})", self.clock.load(Ordering::Relaxed))
    }
}

/// Per-thread recording handle; see [`Recorder::handle`].
pub struct RecorderHandle {
    clock: Arc<AtomicU64>,
    events: Arc<Mutex<Vec<Event>>>,
    buffer: Vec<Event>,
    process: usize,
}

impl RecorderHandle {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Performs and records `queue.enqueue(value)`.
    ///
    /// # Errors
    ///
    /// Propagates [`QueueFull`]; failed enqueues are *not* recorded (they
    /// have no effect on the abstract queue).
    pub fn enqueue<Q: ConcurrentWordQueue + ?Sized>(
        &mut self,
        queue: &Q,
        value: u64,
    ) -> Result<(), QueueFull> {
        let invoked_at = self.tick();
        let result = queue.enqueue(value);
        let returned_at = self.tick();
        if result.is_ok() {
            self.buffer.push(Event {
                process: self.process,
                operation: Operation::Enqueue(value),
                invoked_at,
                returned_at,
            });
        }
        result
    }

    /// Performs and records `queue.dequeue()`.
    pub fn dequeue<Q: ConcurrentWordQueue + ?Sized>(&mut self, queue: &Q) -> Option<u64> {
        let invoked_at = self.tick();
        let result = queue.dequeue();
        let returned_at = self.tick();
        self.buffer.push(Event {
            process: self.process,
            operation: Operation::Dequeue(result),
            invoked_at,
            returned_at,
        });
        result
    }

    /// Number of events buffered so far on this handle.
    pub fn recorded(&self) -> usize {
        self.buffer.len()
    }
}

impl Drop for RecorderHandle {
    fn drop(&mut self) {
        if !self.buffer.is_empty() {
            let mut events = self.events.lock().expect("recorder events");
            events.append(&mut self.buffer);
        }
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RecorderHandle(process={}, recorded={})",
            self.process,
            self.buffer.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_core::WordMsQueue;
    use msq_platform::NativePlatform;

    #[test]
    fn records_intervals_in_order() {
        let q = WordMsQueue::with_capacity(&NativePlatform::new(), 8);
        let recorder = Recorder::new();
        let mut h = recorder.handle(3);
        h.enqueue(&q, 1).unwrap();
        h.enqueue(&q, 2).unwrap();
        assert_eq!(h.dequeue(&q), Some(1));
        assert_eq!(h.recorded(), 3);
        drop(h);
        let history = recorder.finish();
        assert_eq!(history.len(), 3);
        for e in history.events() {
            assert_eq!(e.process, 3);
            assert!(e.invoked_at < e.returned_at);
        }
        assert!(history.check_queue_safety().is_empty());
    }

    #[test]
    fn failed_enqueues_are_not_recorded() {
        let q = WordMsQueue::with_capacity(&NativePlatform::new(), 1);
        let recorder = Recorder::new();
        let mut h = recorder.handle(0);
        h.enqueue(&q, 1).unwrap();
        assert!(h.enqueue(&q, 2).is_err());
        drop(h);
        assert_eq!(recorder.finish().len(), 1);
    }

    #[test]
    fn concurrent_recording_produces_checkable_history() {
        use std::sync::Arc as StdArc;
        let q = StdArc::new(WordMsQueue::with_capacity(&NativePlatform::new(), 128));
        let recorder = Recorder::new();
        let mut threads = Vec::new();
        for t in 0..4_u64 {
            let q = StdArc::clone(&q);
            let mut handle = recorder.handle(t as usize);
            threads.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let v = t * 1_000 + i;
                    handle.enqueue(&*q, v).unwrap();
                    handle.dequeue(&*q);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let history = recorder.finish();
        assert_eq!(history.len(), 4 * 1_000);
        assert!(history.check_queue_safety().is_empty());
    }
}
