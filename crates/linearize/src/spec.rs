//! The sequential FIFO specification.

use std::collections::VecDeque;

/// The abstract queue the concurrent implementations must be equivalent
/// to: a plain FIFO with `enqueue` and `dequeue -> Option<u64>`.
///
/// Used as the oracle by the Wing–Gong checker and by the property-based
/// model tests.
///
/// # Example
///
/// ```
/// use msq_linearize::SequentialQueue;
///
/// let mut spec = SequentialQueue::new();
/// spec.enqueue(1);
/// spec.enqueue(2);
/// assert_eq!(spec.dequeue(), Some(1));
/// assert_eq!(spec.dequeue(), Some(2));
/// assert_eq!(spec.dequeue(), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SequentialQueue {
    items: VecDeque<u64>,
}

impl SequentialQueue {
    /// Creates an empty specification queue.
    pub fn new() -> Self {
        SequentialQueue::default()
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&mut self, value: u64) {
        self.items.push_back(value);
    }

    /// Removes the head value, or `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        self.items.pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The queued values, head first.
    pub fn items(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_semantics() {
        let mut q = SequentialQueue::new();
        assert!(q.is_empty());
        q.enqueue(10);
        q.enqueue(20);
        assert_eq!(q.len(), 2);
        assert_eq!(q.items().collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(q.dequeue(), Some(10));
        assert_eq!(q.dequeue(), Some(20));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn clone_and_eq_support_memoization() {
        let mut a = SequentialQueue::new();
        a.enqueue(1);
        let b = a.clone();
        assert_eq!(a, b);
        a.dequeue();
        assert_ne!(a, b);
    }
}
