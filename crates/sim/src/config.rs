//! Simulator parameters.

/// Machine and scheduling parameters for a [`crate::Simulation`].
///
/// The defaults are era-plausible *ratios* rather than an attempt to clock a
/// 1995 SGI Challenge: what the reproduction must preserve is which
/// algorithm wins and by roughly what factor, and `EXPERIMENTS.md` shows the
/// figure shapes are stable under ±2× changes to these costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of simulated processors (1–256).
    pub processors: usize,
    /// Processes multiplexed on each processor. `1` reproduces the
    /// dedicated machine of Figure 3; `2` and `3` reproduce Figures 4
    /// and 5.
    pub processes_per_processor: usize,
    /// Local (non-shared-memory) work charged alongside every shared
    /// operation, covering the surrounding register instructions.
    pub t_local_ns: u64,
    /// Cost of a read that hits in the processor's cache.
    pub t_hit_ns: u64,
    /// Cost of a read or write miss.
    pub t_miss_ns: u64,
    /// Surcharge for an atomic read-modify-write (CAS, swap, fetch-and-add),
    /// successful or not — the bus still arbitrates the exclusive access.
    pub t_rmw_ns: u64,
    /// Surcharge per *other* sharer invalidated by a write or RMW; models
    /// rising miss cost under contention, which the paper singles out for
    /// the single-lock and Mellor-Crummey curves.
    pub t_inval_ns: u64,
    /// Cost of a context switch when a processor rotates to its next
    /// process.
    pub ctx_switch_ns: u64,
    /// Scheduling quantum. The paper's multiprogrammed runs used 10 ms.
    pub quantum_ns: u64,
    /// Maximum number of [`crate::TraceEvent`]s to record (0 disables
    /// tracing, the default). Tracing changes no behaviour — only the
    /// report contents.
    pub trace_capacity: usize,
    /// Schedule seed. `0` (the default) is the **canonical schedule**:
    /// byte-identical to the simulator's historical behaviour, so exact
    /// virtual-time regression tests keep passing. Any other value
    /// perturbs per-processor clock phases and quantum jitter
    /// deterministically, yielding a different — but still reproducible —
    /// legal interleaving. [`crate::schedule_sweep`] runs a closure
    /// across many seeds to sample the schedule space.
    pub seed: u64,
    /// Virtual-time watchdog limit in nanoseconds (`0`, the default,
    /// disables it). When a process's next scheduler entry finds its
    /// processor clock at or past this limit, the process is judged
    /// *permanently blocked* — the paper's "a blocked process stalls
    /// everyone" outcome — recorded in [`crate::SimReport::blocked`], and
    /// retired so the run terminates deterministically instead of hanging.
    /// Because blocked spinners keep charging virtual time (spins, backoff
    /// delays, cache misses), every stuck process trips the watchdog in
    /// bounded virtual time. Set it well above the expected faultless
    /// completion time.
    pub watchdog_ns: u64,
    /// Execution backend selector. `None` (the default) defers to the
    /// `MSQ_SIM_WORKERS` environment variable; `Some(0)` forces the serial
    /// token-passing backend; `Some(n)` for `n >= 1` selects the
    /// frame-stepped backend with `n` commit workers. The backend is an
    /// execution strategy only: every choice produces a byte-identical
    /// [`crate::SimReport`] (test-enforced), so this field never changes
    /// what a run computes — only how the host computes it.
    pub sim_workers: Option<usize>,
}

impl SimConfig {
    /// Returns the total number of simulated processes.
    pub fn num_processes(&self) -> usize {
        self.processors * self.processes_per_processor
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if there are no processors or processes, or more than 256
    /// processors (the sharer set is a fixed 256-bit mask).
    pub fn validate(&self) {
        assert!(self.processors >= 1, "need at least one processor");
        assert!(self.processors <= 256, "at most 256 processors supported");
        assert!(
            self.processes_per_processor >= 1,
            "need at least one process per processor"
        );
        assert!(self.quantum_ns > 0, "quantum must be positive");
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            processors: 1,
            processes_per_processor: 1,
            t_local_ns: 2,
            t_hit_ns: 5,
            t_miss_ns: 120,
            t_rmw_ns: 30,
            t_inval_ns: 25,
            ctx_switch_ns: 25_000,
            quantum_ns: 10_000_000,
            trace_capacity: 0,
            seed: 0,
            watchdog_ns: 0,
            sim_workers: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_dedicated_processor() {
        let c = SimConfig::default();
        assert_eq!(c.processors, 1);
        assert_eq!(c.processes_per_processor, 1);
        assert_eq!(c.num_processes(), 1);
        c.validate();
    }

    #[test]
    fn num_processes_multiplies() {
        let c = SimConfig {
            processors: 4,
            processes_per_processor: 3,
            ..SimConfig::default()
        };
        assert_eq!(c.num_processes(), 12);
    }

    #[test]
    #[should_panic(expected = "at most 256")]
    fn rejects_too_many_processors() {
        SimConfig {
            processors: 257,
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    fn accepts_data_center_scale_processor_counts() {
        for processors in [64, 128, 256] {
            SimConfig {
                processors,
                ..SimConfig::default()
            }
            .validate();
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn rejects_zero_processors() {
        SimConfig {
            processors: 0,
            ..SimConfig::default()
        }
        .validate();
    }
}
