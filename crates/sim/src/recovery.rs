//! The restart-and-catch-up recovery policy (DESIGN.md §11).
//!
//! The fault layer can kill a process mid-operation; this module names
//! *what happens next*. Production queue services do not shrug at a dead
//! worker — a supervisor re-dispatches its remaining work to a survivor.
//! Under the simulator that idiom stays deterministic: the kill posts a
//! death notice on the [`crate::SimPlatform::death_board`], the
//! designated survivor observes it with ordinary charged loads, replays
//! the victim's unfinished share, and stamps the handoff with
//! [`crate::SimPlatform::mark_recovered`] — all of it a pure function of
//! the seed, so every recovery (and its time-to-recover) replays
//! byte-identically on both backends.

/// Which survivor absorbs a killed process's remaining work share.
///
/// The policy is deliberately minimal: one designated survivor, known
/// before the run starts, so the recovery schedule is deterministic and
/// the asymmetry under test stays clean — for a non-blocking queue the
/// designated survivor completes the victim's share (recovery cost ≈ the
/// residual share); for a lock-based queue it wedges on the dead
/// process's lock and the watchdog flags it instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// The pid that absorbs every victim's remaining share.
    pub survivor: usize,
}

impl RecoveryPolicy {
    /// A policy where `survivor` absorbs every victim's remaining share.
    pub fn designated(survivor: usize) -> RecoveryPolicy {
        RecoveryPolicy { survivor }
    }

    /// Whether `pid` is the designated survivor.
    pub fn is_survivor(self, pid: usize) -> bool {
        self.survivor == pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designated_survivor_round_trips() {
        let policy = RecoveryPolicy::designated(2);
        assert!(policy.is_survivor(2));
        assert!(!policy.is_survivor(0));
        assert_eq!(policy, RecoveryPolicy { survivor: 2 });
    }
}
