//! [`schedule_sweep`]: run a test body across many deterministic
//! schedules.
//!
//! A single simulated run explores exactly one legal interleaving. The
//! sweep re-runs a closure under `K` distinct [`SimConfig::seed`] values —
//! always starting with seed 0, the canonical schedule — so a test
//! samples `K` different (but individually reproducible) interleavings.
//! Because every seed is independent, the *first failing sweep index is
//! already the minimal counterexample*; on failure the helper prints the
//! exact `seed` value to paste into a `SimConfig` for a single-schedule
//! reproduction, then re-raises the panic.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::config::SimConfig;
use crate::core::splitmix64;

/// Runs `body` once per sweep index in `0..seeds`, each time with a
/// distinct deterministic schedule seed patched into `base` (index 0 maps
/// to seed 0, the canonical schedule).
///
/// On the first failure, prints the failing sweep index and seed — the
/// shrunk, single-schedule reproduction — plus a ready-to-paste
/// `MSQ_SWEEP_SEED=<seed> cargo test …` command line, and resumes the
/// panic. Setting `MSQ_SWEEP_SEED` pins the sweep to that single seed
/// (the printed reproducer does exactly this).
///
/// # Example
///
/// ```
/// use msq_sim::{schedule_sweep, SimConfig, Simulation};
///
/// schedule_sweep(SimConfig { processors: 2, ..SimConfig::default() }, 4, |cfg| {
///     let sim = Simulation::new(cfg);
///     let report = sim.run(|_| {});
///     assert_eq!(report.total_ops, 0);
/// });
/// ```
///
/// # Panics
///
/// Re-raises the first panic from `body`, after printing the failing
/// seed.
pub fn schedule_sweep<F>(base: SimConfig, seeds: u64, body: F)
where
    F: Fn(SimConfig),
{
    // MSQ_SWEEP_SEED pins the sweep to one seed — the reproduction mode
    // the failure report prints.
    if let Some(seed) = pinned_seed() {
        let cfg = SimConfig { seed, ..base };
        eprintln!("schedule_sweep: MSQ_SWEEP_SEED pins this sweep to seed {seed:#x}");
        body(cfg);
        return;
    }
    for index in 0..seeds {
        let seed = if index == 0 { 0 } else { splitmix64(index) };
        let cfg = SimConfig { seed, ..base };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(cfg))) {
            let test = std::thread::current()
                .name()
                .map_or_else(|| "<test name>".to_string(), str::to_owned);
            eprintln!(
                "schedule_sweep: first failing schedule at sweep index {index} \
                 of {seeds}; reproduce with `SimConfig {{ seed: {seed:#x}, .. }}` \
                 or:\n    MSQ_SWEEP_SEED={seed} cargo test -q {test}"
            );
            resume_unwind(payload);
        }
    }
}

/// Parses `MSQ_SWEEP_SEED` (decimal, or hex with an `0x` prefix).
fn pinned_seed() -> Option<u64> {
    let raw = std::env::var("MSQ_SWEEP_SEED").ok()?;
    let raw = raw.trim();
    let parsed = raw
        .strip_prefix("0x")
        .or_else(|| raw.strip_prefix("0X"))
        .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("MSQ_SWEEP_SEED must be a u64 (decimal or 0x-hex), got `{raw}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use msq_platform::Platform;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn visits_every_seed_starting_with_canonical() {
        let seen = std::cell::RefCell::new(Vec::new());
        schedule_sweep(SimConfig::default(), 8, |cfg| {
            seen.borrow_mut().push(cfg.seed);
        });
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 8);
        assert_eq!(seen[0], 0, "index 0 is the canonical schedule");
        let mut unique = seen.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 8, "seeds must be distinct");
    }

    #[test]
    fn seeds_actually_produce_different_interleavings() {
        // Two contended processors bumping one counter: the per-seed
        // clock phases shift which processor pick_next favours, so the
        // elapsed virtual time varies across seeds (while any single
        // seed stays deterministic).
        let mut elapsed = Vec::new();
        for _ in 0..2 {
            let per_seed = std::cell::RefCell::new(Vec::new());
            schedule_sweep(
                SimConfig {
                    processors: 2,
                    ..SimConfig::default()
                },
                8,
                |cfg| {
                    let sim = Simulation::new(cfg);
                    let counter = Arc::new(sim.platform().alloc_cell(0));
                    let report = sim.run({
                        let counter = Arc::clone(&counter);
                        move |_| {
                            use msq_platform::AtomicWord;
                            for _ in 0..32 {
                                counter.fetch_add(1);
                            }
                        }
                    });
                    per_seed.borrow_mut().push(report.elapsed_ns);
                },
            );
            elapsed.push(per_seed.into_inner());
        }
        assert_eq!(elapsed[0], elapsed[1], "each seed is deterministic");
        let mut unique = elapsed[0].clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(
            unique.len() > 1,
            "8 seeds should yield more than one distinct schedule: {:?}",
            elapsed[0]
        );
    }

    #[test]
    fn failure_reports_first_failing_seed_and_reraises() {
        let runs = Arc::new(AtomicU64::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let runs = Arc::clone(&runs);
            schedule_sweep(SimConfig::default(), 16, move |_| {
                if runs.fetch_add(1, Ordering::Relaxed) == 3 {
                    panic!("injected failure");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate");
        assert_eq!(
            runs.load(Ordering::Relaxed),
            4,
            "sweep stops at the first failure (indices 0..=3 ran)"
        );
    }
}
