//! [`schedule_sweep`]: run a test body across many deterministic
//! schedules.
//!
//! A single simulated run explores exactly one legal interleaving. The
//! sweep re-runs a closure under `K` distinct [`SimConfig::seed`] values —
//! always starting with seed 0, the canonical schedule — so a test
//! samples `K` different (but individually reproducible) interleavings.
//! Because every seed is independent, the *minimal failing sweep index is
//! already the minimal counterexample*; on failure the helper prints the
//! exact `seed` value to paste into a `SimConfig` for a single-schedule
//! reproduction, then re-raises the panic.
//!
//! Seeds share nothing, so the sweep dispatches them across host cores:
//! lane threads claim sweep indices off an atomic cursor (lane count from
//! `MSQ_SWEEP_LANES`, defaulting to the host's available parallelism).
//! Failure reporting stays deterministic regardless of lane count —
//! indices are claimed in increasing order, so every index below a
//! failing one also ran, and the report names the minimum failing index.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::config::SimConfig;
use crate::core::splitmix64;

/// Runs `body` once per sweep index in `0..seeds`, each time with a
/// distinct deterministic schedule seed patched into `base` (index 0 maps
/// to seed 0, the canonical schedule). Seeds are dispatched across host
/// cores; see [`schedule_sweep_with`] to pick the lane count explicitly.
///
/// On failure, prints the minimal failing sweep index and seed — the
/// shrunk, single-schedule reproduction — plus a ready-to-paste
/// `MSQ_SWEEP_SEED=<seed> MSQ_SIM_WORKERS=<n> cargo test …` command line
/// naming the execution backend the sweep ran under, and resumes the
/// panic. Setting `MSQ_SWEEP_SEED` pins the sweep to that single seed
/// (the printed reproducer does exactly this).
///
/// # Example
///
/// ```
/// use msq_sim::{schedule_sweep, SimConfig, Simulation};
///
/// schedule_sweep(SimConfig { processors: 2, ..SimConfig::default() }, 4, |cfg| {
///     let sim = Simulation::new(cfg);
///     let report = sim.run(|_| {});
///     assert_eq!(report.total_ops, 0);
/// });
/// ```
///
/// # Panics
///
/// Re-raises the minimal failing panic from `body`, after printing the
/// failing seed. Also panics if `MSQ_SWEEP_LANES` is set but not a
/// positive integer.
pub fn schedule_sweep<F>(base: SimConfig, seeds: u64, body: F)
where
    F: Fn(SimConfig) + Sync,
{
    schedule_sweep_with(base, seeds, default_lanes(seeds), body);
}

/// [`schedule_sweep`] with an explicit lane count: `lanes` host threads
/// claim sweep indices off a shared cursor. `lanes = 1` reproduces the
/// historical serial sweep exactly, including its stop-at-first-failure
/// behaviour; with more lanes, indices already claimed when a failure
/// occurs still complete (their outcomes are needed to determine the
/// *minimal* failing index), but no index beyond a known failure is
/// newly claimed.
///
/// Every lane observes the same seed ↦ index mapping, so which seeds run
/// (and the failure report) do not depend on the lane count — only
/// wall-clock time does.
pub fn schedule_sweep_with<F>(base: SimConfig, seeds: u64, lanes: usize, body: F)
where
    F: Fn(SimConfig) + Sync,
{
    // MSQ_SWEEP_SEED pins the sweep to one seed — the reproduction mode
    // the failure report prints.
    if let Some(seed) = pinned_seed() {
        let cfg = SimConfig { seed, ..base };
        eprintln!("schedule_sweep: MSQ_SWEEP_SEED pins this sweep to seed {seed:#x}");
        body(cfg);
        return;
    }
    if seeds == 0 {
        return;
    }
    let lanes = lanes.clamp(1, seeds.min(256) as usize);
    let test = std::thread::current()
        .name()
        .map_or_else(|| "<test name>".to_string(), str::to_owned);
    let started = std::time::Instant::now();
    if lanes == 1 {
        for index in 0..seeds {
            let cfg = SimConfig {
                seed: sweep_seed(index),
                ..base
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(cfg))) {
                report_failure(&test, index, seeds, cfg.seed);
                resume_unwind(payload);
            }
        }
        report_timing(&test, seeds, lanes, started);
        return;
    }
    let cursor = AtomicU64::new(0);
    // Indices at or beyond this bound need not start: a failure at a
    // lower index already decides the sweep.
    let bound = AtomicU64::new(seeds);
    let failed: Mutex<Option<(u64, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for lane in 0..lanes {
            let body = &body;
            let cursor = &cursor;
            let bound = &bound;
            let failed = &failed;
            std::thread::Builder::new()
                .name(format!("sweep-lane-{lane}"))
                .spawn_scoped(scope, move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= seeds || index >= bound.load(Ordering::Relaxed) {
                        return;
                    }
                    let cfg = SimConfig {
                        seed: sweep_seed(index),
                        ..base
                    };
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(cfg))) {
                        bound.fetch_min(index, Ordering::Relaxed);
                        let mut failed = failed.lock().expect("sweep failure slot");
                        match &*failed {
                            Some((first, _)) if *first <= index => {}
                            _ => *failed = Some((index, payload)),
                        }
                    }
                })
                .expect("spawn sweep lane");
        }
    });
    if let Some((index, payload)) = failed.into_inner().expect("sweep failure slot") {
        report_failure(&test, index, seeds, sweep_seed(index));
        resume_unwind(payload);
    }
    report_timing(&test, seeds, lanes, started);
}

/// One wall-clock line per completed sweep, so CI logs show what the
/// lanes (and the per-run backend) buy on the sweep-heavy suites.
/// Opt-in via `MSQ_SWEEP_TIMINGS=1`: `eprintln!` bypasses the test
/// harness's output capture, so unconditional per-sweep lines would
/// spam every `cargo test -q` run of the sweep-heavy suites. CI lanes
/// that want the breakdown set the flag on their own step.
fn report_timing(test: &str, seeds: u64, lanes: usize, started: std::time::Instant) {
    if !timings_enabled() {
        return;
    }
    eprintln!(
        "schedule_sweep: {test}: {seeds} seeds x {lanes} lane(s) ({}) in {:.3}s wall-clock",
        crate::engine::backend_label(crate::engine::env_workers()),
        started.elapsed().as_secs_f64()
    );
}

/// Whether `MSQ_SWEEP_TIMINGS` asks for per-sweep wall-clock lines
/// (any non-empty value other than `0` enables them).
fn timings_enabled() -> bool {
    std::env::var("MSQ_SWEEP_TIMINGS").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// The deterministic seed for a sweep index: index 0 is the canonical
/// schedule, every other index a splitmix64 point.
fn sweep_seed(index: u64) -> u64 {
    if index == 0 {
        0
    } else {
        splitmix64(index)
    }
}

fn report_failure(test: &str, index: u64, seeds: u64, seed: u64) {
    let workers = crate::engine::env_workers();
    let backend = crate::engine::backend_label(workers);
    eprintln!(
        "schedule_sweep: minimal failing schedule at sweep index {index} \
         of {seeds} (ran under the {backend}); reproduce with \
         `SimConfig {{ seed: {seed:#x}, .. }}` or:\n    \
         MSQ_SWEEP_SEED={seed} MSQ_SIM_WORKERS={workers} cargo test -q {test}"
    );
}

/// Lane count when the caller does not pick one: `MSQ_SWEEP_LANES` if
/// set, else the host's available parallelism, capped at the seed count.
fn default_lanes(seeds: u64) -> usize {
    if let Ok(raw) = std::env::var("MSQ_SWEEP_LANES") {
        let lanes: usize = raw
            .trim()
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("MSQ_SWEEP_LANES must be a positive integer, got `{raw}`"));
        return lanes;
    }
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    host.min(seeds.max(1) as usize)
}

/// Parses `MSQ_SWEEP_SEED` (decimal, or hex with an `0x` prefix).
fn pinned_seed() -> Option<u64> {
    let raw = std::env::var("MSQ_SWEEP_SEED").ok()?;
    let raw = raw.trim();
    let parsed = raw
        .strip_prefix("0x")
        .or_else(|| raw.strip_prefix("0X"))
        .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("MSQ_SWEEP_SEED must be a u64 (decimal or 0x-hex), got `{raw}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use msq_platform::Platform;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn visits_every_seed_starting_with_canonical() {
        let seen = Mutex::new(Vec::new());
        schedule_sweep(SimConfig::default(), 8, |cfg| {
            seen.lock().unwrap().push(cfg.seed);
        });
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 8);
        assert!(seen.contains(&0), "the canonical schedule is always swept");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "seeds must be distinct");
    }

    #[test]
    fn lane_count_changes_nothing_but_wall_clock() {
        let seeds_under = |lanes| {
            let seen = Mutex::new(Vec::new());
            schedule_sweep_with(SimConfig::default(), 12, lanes, |cfg| {
                seen.lock().unwrap().push(cfg.seed);
            });
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            seen
        };
        let serial = seeds_under(1);
        assert_eq!(serial, seeds_under(2));
        assert_eq!(serial, seeds_under(8));
    }

    #[test]
    fn seeds_actually_produce_different_interleavings() {
        // Two contended processors bumping one counter: the per-seed
        // clock phases shift which processor pick_next favours, so the
        // elapsed virtual time varies across seeds (while any single
        // seed stays deterministic).
        let mut elapsed = Vec::new();
        for _ in 0..2 {
            let per_seed = Mutex::new(Vec::new());
            schedule_sweep(
                SimConfig {
                    processors: 2,
                    ..SimConfig::default()
                },
                8,
                |cfg| {
                    let sim = Simulation::new(cfg);
                    let counter = Arc::new(sim.platform().alloc_cell(0));
                    let report = sim.run({
                        let counter = Arc::clone(&counter);
                        move |_| {
                            use msq_platform::AtomicWord;
                            for _ in 0..32 {
                                counter.fetch_add(1);
                            }
                        }
                    });
                    per_seed.lock().unwrap().push((cfg.seed, report.elapsed_ns));
                },
            );
            let mut per_seed = per_seed.into_inner().unwrap();
            per_seed.sort_unstable();
            elapsed.push(per_seed);
        }
        assert_eq!(elapsed[0], elapsed[1], "each seed is deterministic");
        let mut unique: Vec<u64> = elapsed[0].iter().map(|&(_, ns)| ns).collect();
        unique.sort_unstable();
        unique.dedup();
        assert!(
            unique.len() > 1,
            "8 seeds should yield more than one distinct schedule: {:?}",
            elapsed[0]
        );
    }

    #[test]
    fn serial_failure_reports_first_failing_seed_and_reraises() {
        let runs = Arc::new(AtomicU64::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let runs = Arc::clone(&runs);
            schedule_sweep_with(SimConfig::default(), 16, 1, move |_| {
                if runs.fetch_add(1, Ordering::Relaxed) == 3 {
                    panic!("injected failure");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate");
        assert_eq!(
            runs.load(Ordering::Relaxed),
            4,
            "a single lane stops at the first failure (indices 0..=3 ran)"
        );
    }

    #[test]
    fn parallel_failure_reports_the_minimal_failing_index() {
        // Indices 3 and 9 both fail; whatever the lane interleaving, the
        // sweep must re-raise index 3's payload.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let failing: Vec<u64> = vec![sweep_seed(3), sweep_seed(9)];
            schedule_sweep_with(SimConfig::default(), 16, 4, move |cfg| {
                if failing.contains(&cfg.seed) {
                    if cfg.seed == sweep_seed(3) {
                        panic!("minimal failure");
                    }
                    panic!("later failure");
                }
            });
        }));
        let payload = result.expect_err("the panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(message, "minimal failure", "must surface index 3, not 9");
    }

    #[test]
    fn parallel_failure_does_not_claim_new_indices_past_the_failure() {
        // With the failure at index 0 claimed first, lanes may finish
        // in-flight work but must not start arbitrarily many more seeds.
        let runs = Arc::new(AtomicU64::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let runs = Arc::clone(&runs);
            schedule_sweep_with(SimConfig::default(), 1_000, 2, move |cfg| {
                runs.fetch_add(1, Ordering::Relaxed);
                if cfg.seed == 0 {
                    panic!("early failure");
                }
                // Keep non-failing indices slow enough that the bound is
                // in place before any lane loops back for more work.
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        }));
        assert!(result.is_err());
        assert!(
            runs.load(Ordering::Relaxed) < 100,
            "the failure bound must stop new claims ({} ran)",
            runs.load(Ordering::Relaxed)
        );
    }
}
