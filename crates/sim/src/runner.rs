//! [`Simulation`]: construction, worker-thread orchestration, teardown.

use std::sync::Arc;

use crate::config::SimConfig;
use crate::core::ProcessKilled;
use crate::engine::EngineShared;
use crate::fault::FaultPlan;
use crate::platform::{bind_current_process, unbind_current_process, SimPlatform};
use crate::report::SimReport;

/// Identity of a simulated process, passed to the process body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessInfo {
    /// Process id, `0..num_processes`.
    pub pid: usize,
    /// The simulated processor this process is bound to.
    pub processor: usize,
    /// Total number of processes in the simulation.
    pub num_processes: usize,
}

/// A deterministic multiprocessor simulation.
///
/// Lifecycle: create with [`Simulation::new`], allocate shared state through
/// [`Simulation::platform`] (untimed setup), then call [`Simulation::run`]
/// once with the per-process body. The platform handle (and any cells)
/// remain usable afterwards for untimed inspection.
pub struct Simulation {
    shared: Arc<EngineShared>,
    cfg: SimConfig,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation({} processors x {} processes)",
            self.cfg.processors, self.cfg.processes_per_processor
        )
    }
}

impl Simulation {
    /// Creates a simulation of the machine described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`SimConfig::validate`]).
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_faults(cfg, FaultPlan::new())
    }

    /// Creates a simulation that injects the faults scheduled in `plan`
    /// (see [`FaultPlan`]). An empty plan is exactly [`Simulation::new`]:
    /// the schedule is not perturbed in any way.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or if `plan` targets a pid outside
    /// `0..cfg.num_processes()`.
    pub fn with_faults(cfg: SimConfig, plan: FaultPlan) -> Self {
        cfg.validate();
        // The backend (serial token vs frame-stepped, and the worker
        // count) is resolved here, once, from `cfg.sim_workers` or the
        // `MSQ_SIM_WORKERS` environment variable — so every consumer of
        // `Simulation`, harnesses and direct users alike, obeys the same
        // selection. The choice never affects the report (test-enforced).
        Simulation {
            shared: Arc::new(EngineShared::build(cfg, plan)),
            cfg,
        }
    }

    /// The platform handle used to allocate shared cells and to construct
    /// the data structures under test.
    pub fn platform(&self) -> SimPlatform {
        SimPlatform::new(Arc::clone(&self.shared))
    }

    /// The simulation's configuration.
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// Total number of simulated processes.
    pub fn num_processes(&self) -> usize {
        self.cfg.num_processes()
    }

    /// Runs `body` once per simulated process (on dedicated worker threads,
    /// strictly serialized by the virtual-time scheduler) and returns the
    /// run's statistics.
    ///
    /// The interleaving of `Platform`/`AtomicWord` operations across
    /// processes is deterministic: it depends only on the configuration and
    /// the operations the bodies perform, never on host scheduling.
    ///
    /// # Panics
    ///
    /// Panics if a worker panics (the worker's panic is propagated), or if
    /// called twice on the same simulation.
    pub fn run<F>(self, body: F) -> SimReport
    where
        F: Fn(ProcessInfo) + Send + Sync + 'static,
    {
        let n = self.cfg.num_processes();
        let body = Arc::new(body);
        let mut handles = Vec::with_capacity(n);
        for pid in 0..n {
            let shared = Arc::clone(&self.shared);
            let body = Arc::clone(&body);
            let info = ProcessInfo {
                pid,
                processor: pid % self.cfg.processors,
                num_processes: n,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sim-proc-{pid}"))
                    .spawn(move || {
                        bind_current_process(pid);
                        // Catch panics so a failing body cannot strand the
                        // scheduler with a token holder that never yields.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(info)));
                        let outcome = match outcome {
                            // A fault-layer kill: the scheduler already
                            // retired this process; swallow the unwind.
                            Err(payload) => match payload.downcast::<ProcessKilled>() {
                                Ok(_) => {
                                    unbind_current_process();
                                    return;
                                }
                                Err(other) => Err(other),
                            },
                            ok => ok,
                        };
                        shared.finish(pid);
                        unbind_current_process();
                        if let Err(panic) = outcome {
                            std::panic::resume_unwind(panic);
                        }
                    })
                    .expect("spawn simulated process"),
            );
        }
        self.shared.run_to_completion();
        let mut worker_panic = None;
        for handle in handles {
            if let Err(panic) = handle.join() {
                worker_panic.get_or_insert(panic);
            }
        }
        if let Some(panic) = worker_panic {
            std::panic::resume_unwind(panic);
        }
        self.shared.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::{AtomicWord, Platform};

    #[test]
    fn single_process_accumulates_costs() {
        let sim = Simulation::new(SimConfig::default());
        let cfg = sim.config();
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |_| {
                cell.store(1); // miss
                cell.store(2); // hit
            }
        });
        assert_eq!(cell.load(), 2);
        assert_eq!(report.total_ops, 2);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(
            report.elapsed_ns,
            2 * cfg.t_local_ns + cfg.t_miss_ns + cfg.t_hit_ns
        );
    }

    #[test]
    fn fetch_add_from_many_processes_is_atomic() {
        for processors in [1, 2, 7] {
            for ppp in [1, 3] {
                let sim = Simulation::new(SimConfig {
                    processors,
                    processes_per_processor: ppp,
                    quantum_ns: 5_000,
                    ..SimConfig::default()
                });
                let n = sim.num_processes() as u64;
                let cell = Arc::new(sim.platform().alloc_cell(0));
                let report = sim.run({
                    let cell = Arc::clone(&cell);
                    move |_| {
                        for _ in 0..200 {
                            cell.fetch_add(1);
                        }
                    }
                });
                assert_eq!(cell.load(), 200 * n);
                assert_eq!(report.total_ops, 200 * n);
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run_once = || {
            let sim = Simulation::new(SimConfig {
                processors: 3,
                processes_per_processor: 2,
                quantum_ns: 3_000,
                ..SimConfig::default()
            });
            let cell = Arc::new(sim.platform().alloc_cell(0));
            let log = Arc::new(std::sync::Mutex::new(Vec::new()));
            let report = sim.run({
                let cell = Arc::clone(&cell);
                let log = Arc::clone(&log);
                move |info| {
                    for _ in 0..50 {
                        let seen = cell.fetch_add(1);
                        log.lock().unwrap().push((info.pid, seen));
                    }
                }
            });
            // The log vector's *push order* races at the host level (pushes
            // happen after the token is passed on), but the simulated
            // interleaving — which pid observed which counter value — is
            // fully determined. Sort by observed value to recover it.
            let mut log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
            log.sort_by_key(|&(_, seen)| seen);
            (report, log)
        };
        let (r1, l1) = run_once();
        let (r2, l2) = run_once();
        assert_eq!(r1, r2);
        assert_eq!(l1, l2, "operation interleaving must be reproducible");
    }

    #[test]
    fn parallel_processes_overlap_in_virtual_time() {
        // Two processors each doing independent work should take barely
        // longer than one (true parallelism in virtual time).
        let elapsed = |processors| {
            let sim = Simulation::new(SimConfig {
                processors,
                ..SimConfig::default()
            });
            let cells: Vec<_> = (0..processors)
                .map(|_| Arc::new(sim.platform().alloc_cell(0)))
                .collect();
            sim.run(move |info| {
                let cell = &cells[info.processor];
                for _ in 0..1000 {
                    cell.fetch_add(1);
                }
            })
            .elapsed_ns
        };
        let one = elapsed(1);
        let four = elapsed(4);
        assert!(
            four <= one + one / 10,
            "independent work should scale: 1p={one}ns 4p={four}ns"
        );
    }

    #[test]
    fn multiprogramming_serializes_processes_on_one_processor() {
        // Two processes on ONE processor take about twice as long as one
        // process doing the same per-process work.
        let elapsed = |ppp| {
            let sim = Simulation::new(SimConfig {
                processors: 1,
                processes_per_processor: ppp,
                quantum_ns: 10_000,
                ..SimConfig::default()
            });
            let p = sim.platform();
            let cell = Arc::new(p.alloc_cell(0));
            sim.run(move |_| {
                let _ = &cell;
                for _ in 0..500 {
                    cell.fetch_add(1);
                }
            })
            .elapsed_ns
        };
        let one = elapsed(1);
        let two = elapsed(2);
        assert!(
            two >= 2 * one,
            "multiprogrammed work must serialize: 1x={one}ns 2x={two}ns"
        );
    }

    #[test]
    fn preemptions_occur_only_when_multiprogrammed() {
        let run = |ppp| {
            let sim = Simulation::new(SimConfig {
                processors: 2,
                processes_per_processor: ppp,
                quantum_ns: 2_000,
                ..SimConfig::default()
            });
            let p = sim.platform();
            let cell = Arc::new(p.alloc_cell(0));
            sim.run(move |_| {
                let _ = &cell;
                for _ in 0..200 {
                    cell.fetch_add(1);
                }
            })
        };
        assert_eq!(run(1).preemptions, 0);
        assert!(run(2).preemptions > 0);
    }

    #[test]
    fn delay_advances_clock_without_memory_ops() {
        let sim = Simulation::new(SimConfig::default());
        let platform = sim.platform();
        let report = sim.run(move |_| {
            platform.delay(123_456);
        });
        assert_eq!(report.total_ops, 0);
        assert_eq!(report.elapsed_ns, 123_456);
    }

    #[test]
    fn empty_bodies_finish_immediately() {
        let sim = Simulation::new(SimConfig {
            processors: 4,
            processes_per_processor: 2,
            ..SimConfig::default()
        });
        let report = sim.run(|_| {});
        assert_eq!(report.total_ops, 0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let sim = Simulation::new(SimConfig {
            processors: 2,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let cell = Arc::new(platform.alloc_cell(0));
        sim.run(move |info| {
            // Both processes do some work; pid 1 then panics. The
            // simulation must still drain and re-raise.
            cell.fetch_add(1);
            if info.pid == 1 {
                panic!("boom");
            }
            cell.fetch_add(1);
        });
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_unfaulted() {
        let run = |faulted: bool| {
            let cfg = SimConfig {
                processors: 3,
                processes_per_processor: 2,
                quantum_ns: 3_000,
                ..SimConfig::default()
            };
            let sim = if faulted {
                Simulation::with_faults(cfg, crate::FaultPlan::new())
            } else {
                Simulation::new(cfg)
            };
            let cell = Arc::new(sim.platform().alloc_cell(0));
            sim.run(move |_| {
                for _ in 0..100 {
                    cell.fetch_add(1);
                }
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn kill_fault_retires_victim_while_others_complete() {
        let plan = crate::FaultPlan::new().kill_at_op(1, 5);
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 2,
                ..SimConfig::default()
            },
            plan,
        );
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |_| {
                for _ in 0..100 {
                    cell.fetch_add(1);
                }
            }
        });
        assert_eq!(report.killed, vec![1]);
        assert!(report.blocked.is_empty());
        // Victim got exactly 5 increments in before dying mid-operation.
        assert_eq!(cell.load(), 105);
        assert_eq!(report.per_process[1].ops, 5);
        assert_eq!(report.per_process[0].ops, 100);
        assert!(report.per_process[0].finished_at_ns > 0);
    }

    #[test]
    fn kill_at_label_fires_on_the_chosen_occurrence() {
        let plan = crate::FaultPlan::new().kill_at_label(0, "test:window", 3);
        let sim = Simulation::with_faults(SimConfig::default(), plan);
        let platform = sim.platform();
        let cell = Arc::new(platform.alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |_| {
                for _ in 0..10 {
                    cell.fetch_add(1);
                    platform.fault_point("test:window");
                }
            }
        });
        assert_eq!(report.killed, vec![0]);
        // Occurrence 3 is the fourth hit: four increments landed.
        assert_eq!(cell.load(), 4);
    }

    #[test]
    fn stall_fault_idles_the_victim_for_its_duration() {
        const STALL_NS: u64 = 5_000_000;
        let base = SimConfig::default();
        let unfaulted = {
            let sim = Simulation::new(base);
            let cell = Arc::new(sim.platform().alloc_cell(0));
            sim.run(move |_| {
                for _ in 0..50 {
                    cell.fetch_add(1);
                }
            })
        };
        let faulted = {
            let sim =
                Simulation::with_faults(base, crate::FaultPlan::new().stall_at_op(0, 10, STALL_NS));
            let cell = Arc::new(sim.platform().alloc_cell(0));
            sim.run(move |_| {
                for _ in 0..50 {
                    cell.fetch_add(1);
                }
            })
        };
        assert_eq!(faulted.stalls_injected, 1);
        assert_eq!(
            faulted.elapsed_ns,
            unfaulted.elapsed_ns + STALL_NS,
            "a lone stalled process idles its processor for exactly the stall"
        );
        assert_eq!(faulted.total_ops, unfaulted.total_ops, "work unchanged");
    }

    #[test]
    fn stalled_process_cedes_its_processor_to_queue_mates() {
        // Two processes multiprogrammed on one processor; pid 0 stalls for
        // a long time early on. Pid 1 must finish long before pid 0's
        // stall would allow if the stall blocked the whole processor.
        const STALL_NS: u64 = 50_000_000;
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 1,
                processes_per_processor: 2,
                quantum_ns: 10_000,
                ..SimConfig::default()
            },
            crate::FaultPlan::new().stall_at_op(0, 1, STALL_NS),
        );
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |_| {
                for _ in 0..100 {
                    cell.fetch_add(1);
                }
            }
        });
        assert_eq!(cell.load(), 200, "both processes finish all their work");
        assert!(
            report.per_process[1].finished_at_ns < STALL_NS,
            "pid 1 finished at {}ns, inside pid 0's {}ns stall",
            report.per_process[1].finished_at_ns,
            STALL_NS
        );
        assert!(report.per_process[0].finished_at_ns >= STALL_NS);
    }

    #[test]
    fn preempt_fault_rotates_and_charges_a_context_switch() {
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 1,
                processes_per_processor: 2,
                ..SimConfig::default()
            },
            crate::FaultPlan::new().preempt_storm(0, "test:crit", 3),
        );
        let platform = sim.platform();
        let cell = Arc::new(platform.alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |_| {
                for _ in 0..5 {
                    cell.fetch_add(1);
                    platform.fault_point("test:crit");
                }
            }
        });
        assert_eq!(report.preempts_injected, 3);
        assert!(report.preemptions >= 3);
        assert_eq!(cell.load(), 10);
    }

    #[test]
    fn watchdog_reports_a_spinning_survivor_as_blocked() {
        // Pid 0 "holds a lock" forever by dying; pid 1 spins on the flag.
        // The watchdog must convert pid 1's infinite spin into a recorded
        // `blocked` verdict and terminate the run.
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 2,
                watchdog_ns: 3_000_000,
                ..SimConfig::default()
            },
            crate::FaultPlan::new().kill_at_op(0, 0),
        );
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |info| {
                if info.pid == 0 {
                    cell.store(1); // killed before this ever lands
                    cell.store(0);
                } else {
                    while cell.load() == 0 {
                        // spin: each probe charges virtual time
                    }
                }
            }
        });
        assert_eq!(report.killed, vec![0]);
        assert_eq!(report.blocked, vec![1]);
        assert!(!report.survivors_completed());
        assert_eq!(cell.load(), 0, "the killed store never executed");
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let run = || {
            let sim = Simulation::with_faults(
                SimConfig {
                    processors: 2,
                    processes_per_processor: 2,
                    quantum_ns: 3_000,
                    seed: 42,
                    ..SimConfig::default()
                },
                crate::FaultPlan::new()
                    .kill_at_op(3, 17)
                    .stall_at_op(1, 9, 100_000)
                    .preempt_at_label(2, "test:w", 1),
            );
            let platform = sim.platform();
            let cell = Arc::new(platform.alloc_cell(0));
            let report = sim.run({
                let cell = Arc::clone(&cell);
                move |_| {
                    for _ in 0..40 {
                        cell.fetch_add(1);
                        platform.fault_point("test:w");
                    }
                }
            });
            (report, cell.load())
        };
        let (r1, v1) = run();
        let (r2, v2) = run();
        assert_eq!(r1, r2, "same plan, same schedule, same history");
        assert_eq!(v1, v2);
        assert_eq!(r1.killed, vec![3]);
        assert_eq!(r1.stalls_injected, 1);
        assert_eq!(r1.preempts_injected, 1);
    }

    #[test]
    #[should_panic(expected = "targets pid 9")]
    fn fault_plan_pid_out_of_range_is_rejected() {
        let _ = Simulation::with_faults(
            SimConfig::default(),
            crate::FaultPlan::new().kill_at_op(9, 0),
        );
    }

    #[test]
    fn trace_records_operations_in_time_order() {
        use crate::report::TraceKind;
        let sim = Simulation::new(SimConfig {
            processors: 2,
            trace_capacity: 64,
            ..SimConfig::default()
        });
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |info| {
                if info.pid == 0 {
                    cell.store(1);
                    cell.fetch_add(2);
                } else {
                    let _ = cell.load();
                    let _ = cell.compare_exchange(1_000, 0); // will fail
                }
            }
        });
        assert_eq!(report.trace.len(), 4);
        // Virtual-time order is non-decreasing.
        for pair in report.trace.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns);
        }
        // Kinds and outcomes are recorded.
        assert!(report
            .trace
            .iter()
            .any(|e| e.kind == TraceKind::CompareExchange { success: false }));
        assert!(report.trace.iter().any(|e| e.kind == TraceKind::FetchAdd));
        assert!(report.trace.iter().all(|e| e.cell == 0));
    }

    #[test]
    fn trace_capacity_caps_recording() {
        let sim = Simulation::new(SimConfig {
            trace_capacity: 5,
            ..SimConfig::default()
        });
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |_| {
                for _ in 0..50 {
                    cell.fetch_add(1);
                }
            }
        });
        assert_eq!(report.trace.len(), 5, "capped at capacity");
        assert_eq!(report.total_ops, 50, "execution itself unaffected");
    }

    #[test]
    fn tracing_disabled_by_default() {
        let sim = Simulation::new(SimConfig::default());
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |_| {
                cell.store(1);
            }
        });
        assert!(report.trace.is_empty());
    }

    #[test]
    fn per_process_stats_sum_to_totals() {
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            ..SimConfig::default()
        });
        let cell = Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let cell = Arc::clone(&cell);
            move |info| {
                for _ in 0..(info.pid as u64 + 1) * 10 {
                    cell.fetch_add(1);
                }
            }
        });
        assert_eq!(report.per_process.len(), 6);
        for (pid, p) in report.per_process.iter().enumerate() {
            assert_eq!(p.pid, pid);
            assert_eq!(p.processor, pid % 3);
            assert_eq!(p.ops, (pid as u64 + 1) * 10, "per-process op counts");
            assert_eq!(p.cache_hits + p.cache_misses, p.ops);
        }
        assert_eq!(
            report.per_process.iter().map(|p| p.ops).sum::<u64>(),
            report.total_ops
        );
        assert_eq!(
            report
                .per_process
                .iter()
                .map(|p| p.cache_misses)
                .sum::<u64>(),
            report.cache_misses
        );
    }

    #[test]
    fn process_info_is_consistent() {
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            ..SimConfig::default()
        });
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.run({
            let seen = Arc::clone(&seen);
            move |info| {
                seen.lock().unwrap().push(info);
            }
        });
        let mut infos = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
        infos.sort_by_key(|i| i.pid);
        assert_eq!(infos.len(), 6);
        for (pid, info) in infos.iter().enumerate() {
            assert_eq!(info.pid, pid);
            assert_eq!(info.processor, pid % 3);
            assert_eq!(info.num_processes, 6);
        }
    }
}
