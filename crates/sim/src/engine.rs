//! Backend dispatch: one enum in front of the serial token scheduler and
//! the frame-stepped engine, so [`crate::SimPlatform`] and
//! [`crate::Simulation`] are backend-agnostic.

use crate::config::SimConfig;
use crate::core::{MemOp, SimShared};
use crate::fault::FaultPlan;
use crate::frame::FrameShared;
use crate::report::SimReport;

/// The two execution backends behind a [`crate::Simulation`]. Both
/// produce byte-identical [`SimReport`]s for any configuration and fault
/// plan (test-enforced); they differ only in how the host computes the
/// run.
pub(crate) enum EngineShared {
    /// The serial token scheduler: one process at a time holds the
    /// execution token and applies its own entries under the core mutex.
    Token(SimShared),
    /// The frame-stepped engine: processes park entries; a central
    /// engine (plus `workers - 1` helper threads) commits them.
    Frames(FrameShared),
}

impl EngineShared {
    /// Builds the backend selected by `cfg.sim_workers` (falling back to
    /// the `MSQ_SIM_WORKERS` environment variable): `0` is the serial
    /// token backend, `n >= 1` the frame engine with `n` commit workers.
    pub fn build(cfg: SimConfig, plan: FaultPlan) -> EngineShared {
        match resolve_workers(&cfg) {
            0 => EngineShared::Token(SimShared::with_plan(cfg, plan)),
            n => EngineShared::Frames(FrameShared::new(cfg, plan, n)),
        }
    }

    pub fn config(&self) -> SimConfig {
        match self {
            EngineShared::Token(s) => s.config(),
            EngineShared::Frames(s) => s.config(),
        }
    }

    pub fn alloc_cell(&self, init: u64) -> u32 {
        match self {
            EngineShared::Token(s) => s.alloc_cell(init),
            EngineShared::Frames(s) => s.alloc_cell(init),
        }
    }

    pub fn peek(&self, cell: u32) -> u64 {
        match self {
            EngineShared::Token(s) => s.peek(cell),
            EngineShared::Frames(s) => s.peek(cell),
        }
    }

    pub fn poke(&self, cell: u32, value: u64) {
        match self {
            EngineShared::Token(s) => s.poke(cell, value),
            EngineShared::Frames(s) => s.poke(cell, value),
        }
    }

    pub fn mem_op(&self, pid: usize, cell: u32, op: MemOp) -> Result<u64, u64> {
        match self {
            EngineShared::Token(s) => s.mem_op(pid, cell, op),
            EngineShared::Frames(s) => s.mem_op(pid, cell, op),
        }
    }

    pub fn delay(&self, pid: usize, nanos: u64) {
        match self {
            EngineShared::Token(s) => s.delay(pid, nanos),
            EngineShared::Frames(s) => s.delay(pid, nanos),
        }
    }

    pub fn fault_point(&self, pid: usize, label: &'static str) {
        match self {
            EngineShared::Token(s) => s.fault_point(pid, label),
            EngineShared::Frames(s) => s.fault_point(pid, label),
        }
    }

    /// Returns the death-notice cell (allocating it on first use).
    pub fn death_board(&self) -> u32 {
        match self {
            EngineShared::Token(s) => s.death_board(),
            EngineShared::Frames(s) => s.death_board(),
        }
    }

    /// Records that `pid` absorbed killed process `victim`'s remaining
    /// share.
    pub fn mark_recovered(&self, pid: usize, victim: usize) {
        match self {
            EngineShared::Token(s) => s.mark_recovered(pid, victim),
            EngineShared::Frames(s) => s.mark_recovered(pid, victim),
        }
    }

    /// Records an enqueue-to-dequeue latency sample on behalf of `pid`.
    pub fn record_latency(&self, pid: usize, arrival_ns: u64) {
        match self {
            EngineShared::Token(s) => s.record_latency(pid, arrival_ns),
            EngineShared::Frames(s) => s.record_latency(pid, arrival_ns),
        }
    }

    /// Reads `pid`'s current virtual time (its processor's clock).
    pub fn now_ns(&self, pid: usize) -> u64 {
        match self {
            EngineShared::Token(s) => s.now_ns(pid),
            EngineShared::Frames(s) => s.now_ns(pid),
        }
    }

    /// Records that `pid` revoked dead process `victim`'s lock and
    /// repaired the torn invariant (outcome label `point`).
    pub fn mark_repaired(&self, pid: usize, victim: usize, point: &'static str) {
        match self {
            EngineShared::Token(s) => s.mark_repaired(pid, victim, point),
            EngineShared::Frames(s) => s.mark_repaired(pid, victim, point),
        }
    }

    pub fn finish(&self, pid: usize) {
        match self {
            EngineShared::Token(s) => s.finish(pid),
            EngineShared::Frames(s) => s.finish(pid),
        }
    }

    /// Drives the run to completion from the coordinator thread. For the
    /// token backend this seats the first token holder and waits; for the
    /// frame engine it runs the commit loop in place.
    pub fn run_to_completion(&self) {
        match self {
            EngineShared::Token(s) => {
                s.start();
                s.wait_all_done();
            }
            EngineShared::Frames(s) => s.drive(),
        }
    }

    pub fn snapshot(&self) -> SimReport {
        match self {
            EngineShared::Token(s) => s.snapshot(),
            EngineShared::Frames(s) => s.snapshot(),
        }
    }
}

/// Resolves the effective commit-worker count for `cfg`: the explicit
/// [`SimConfig::sim_workers`] if set, else `MSQ_SIM_WORKERS`, else `0`
/// (the serial token backend).
///
/// # Panics
///
/// Panics if `MSQ_SIM_WORKERS` is set but not a non-negative integer.
pub(crate) fn resolve_workers(cfg: &SimConfig) -> usize {
    match cfg.sim_workers {
        Some(n) => n.min(256),
        None => env_workers(),
    }
}

/// The worker count `MSQ_SIM_WORKERS` selects for configs that leave
/// [`SimConfig::sim_workers`] unset (`0` = serial token backend). Exposed
/// so sweep failure reports can name the backend a repro needs.
pub fn env_workers() -> usize {
    match std::env::var("MSQ_SIM_WORKERS") {
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .unwrap_or_else(|_| {
                panic!("MSQ_SIM_WORKERS must be a non-negative integer, got {raw:?}")
            })
            .min(256),
        Err(_) => 0,
    }
}

/// Human-readable backend label for `workers` commit workers, used in
/// sweep failure reports.
pub(crate) fn backend_label(workers: usize) -> String {
    if workers == 0 {
        "serial token backend".to_string()
    } else {
        format!("frame-stepped backend, {workers} workers")
    }
}
