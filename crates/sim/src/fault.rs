//! [`FaultPlan`]: seeded, deterministic fault injection for simulated runs.
//!
//! The paper's core robustness argument is that a *non-blocking* queue
//! keeps making global progress even "if a process is halted in the middle
//! of its operation", while a blocking queue stalls everyone. The fault
//! layer turns that claim into a testable event: a plan names a victim
//! process, a *trigger* (its N-th shared-memory operation, or the N-th hit
//! of a labelled [`msq_platform::Platform::fault_point`]), and an *action*
//! — stall for K virtual nanoseconds, preempt (rotate off the processor
//! mid-quantum), or die permanently.
//!
//! Plans are plain data resolved entirely inside the deterministic
//! scheduler, so a faulted run is exactly as reproducible as an unfaulted
//! one: same config + same plan → byte-identical virtual-time history. An
//! empty plan leaves the schedule untouched, so every existing seed-0
//! regression stays canonical.
//!
//! Death is detected by the run's oracle, not hidden: lock-free queues
//! must drain and linearize around the corpse, while lock-based baselines
//! are *expected* to block — the [`crate::SimConfig::watchdog_ns`]
//! virtual-time watchdog converts their permanent stall into a recorded
//! `blocked` verdict instead of a hung test.

/// When a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fires just before the victim's `n`-th shared-memory operation
    /// (0-based over loads, stores, RMWs and delays alike).
    Op(u64),
    /// Fires at the `occurrence`-th time (0-based) the victim passes the
    /// [`msq_platform::Platform::fault_point`] with this label.
    Label {
        /// The fault-point label to match (see DESIGN.md §11 taxonomy).
        label: &'static str,
        /// Which hit of that label fires the fault (0 = first).
        occurrence: u64,
    },
}

/// What the fault does to the victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deschedule the victim for this much virtual time; queue-mates (and
    /// other processors) keep running meanwhile.
    Stall {
        /// Stall length in virtual nanoseconds.
        duration_ns: u64,
    },
    /// Yank the victim off its processor immediately (mid-quantum), paying
    /// a context switch — the paper's "preempted at the worst moment".
    Preempt,
    /// Kill the victim permanently: its worker unwinds, its in-flight
    /// operation stays wherever the algorithm left it.
    Kill,
}

/// One scheduled fault: victim + trigger + action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The victim process id.
    pub pid: usize,
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What happens to the victim.
    pub action: FaultAction,
}

/// A deterministic schedule of faults for one simulated run.
///
/// Build with the chainable constructors and hand to
/// [`crate::Simulation::with_faults`]. Each spec fires at most once; specs
/// for the same process fire in the order their triggers are reached.
///
/// # Example
///
/// ```
/// use msq_sim::{FaultPlan, SimConfig, Simulation};
///
/// // Kill process 1 the first time it reaches the MS enqueue window.
/// let plan = FaultPlan::new().kill_at_label(1, "msq:enq:window", 0);
/// let sim = Simulation::with_faults(
///     SimConfig { processors: 2, ..SimConfig::default() },
///     plan,
/// );
/// # let _ = sim;
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub(crate) specs: Vec<FaultSpec>,
    /// Bitmask of watched pids (for the lock-free fast path); pids ≥ 64
    /// set the overflow bit and fall back to scanning `specs`.
    watched_mask: u64,
    watched_overflow: bool,
}

impl FaultPlan {
    /// An empty plan: injects nothing, perturbs nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary spec.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        if spec.pid < 64 {
            self.watched_mask |= 1 << spec.pid;
        } else {
            self.watched_overflow = true;
        }
        self.specs.push(spec);
        self
    }

    /// Stalls `pid` for `duration_ns` at its `op`-th shared-memory step.
    pub fn stall_at_op(self, pid: usize, op: u64, duration_ns: u64) -> Self {
        self.with(FaultSpec {
            pid,
            trigger: FaultTrigger::Op(op),
            action: FaultAction::Stall { duration_ns },
        })
    }

    /// Stalls `pid` for `duration_ns` at the `occurrence`-th hit of
    /// `label`.
    pub fn stall_at_label(
        self,
        pid: usize,
        label: &'static str,
        occurrence: u64,
        duration_ns: u64,
    ) -> Self {
        self.with(FaultSpec {
            pid,
            trigger: FaultTrigger::Label { label, occurrence },
            action: FaultAction::Stall { duration_ns },
        })
    }

    /// Preempts `pid` at the `occurrence`-th hit of `label`.
    pub fn preempt_at_label(self, pid: usize, label: &'static str, occurrence: u64) -> Self {
        self.with(FaultSpec {
            pid,
            trigger: FaultTrigger::Label { label, occurrence },
            action: FaultAction::Preempt,
        })
    }

    /// Kills `pid` permanently at its `op`-th shared-memory step.
    pub fn kill_at_op(self, pid: usize, op: u64) -> Self {
        self.with(FaultSpec {
            pid,
            trigger: FaultTrigger::Op(op),
            action: FaultAction::Kill,
        })
    }

    /// Kills `pid` permanently at the `occurrence`-th hit of `label`.
    pub fn kill_at_label(self, pid: usize, label: &'static str, occurrence: u64) -> Self {
        self.with(FaultSpec {
            pid,
            trigger: FaultTrigger::Label { label, occurrence },
            action: FaultAction::Kill,
        })
    }

    /// A preemption *storm*: preempt `pid` at every one of its first
    /// `count` hits of `label` — the multiprogrammed scheduler landing on
    /// the worst window over and over.
    pub fn preempt_storm(mut self, pid: usize, label: &'static str, count: u64) -> Self {
        for occurrence in 0..count {
            self = self.preempt_at_label(pid, label, occurrence);
        }
        self
    }

    /// True when the plan is empty (no perturbation at all).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// True when the plan schedules at least one [`FaultAction::Kill`].
    /// Harness code uses this to decide whether a post-run drain is safe
    /// on a blocking queue (a killed lock-holder leaves the lock held
    /// forever, so draining would spin natively).
    pub fn has_kills(&self) -> bool {
        self.specs
            .iter()
            .any(|s| matches!(s.action, FaultAction::Kill))
    }

    /// Number of faults scheduled.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Lock-free precheck: could this plan ever target `pid`? Used to keep
    /// unwatched processes on the exact unfaulted code path.
    pub(crate) fn watches(&self, pid: usize) -> bool {
        if pid < 64 {
            self.watched_mask & (1 << pid) != 0
        } else {
            self.watched_overflow
        }
    }

    /// True when some spec for `pid` uses a label trigger — only then does
    /// `fault_point` need to enter the scheduler at all.
    pub(crate) fn watches_labels(&self, pid: usize) -> bool {
        self.watches(pid)
            && self
                .specs
                .iter()
                .any(|s| s.pid == pid && matches!(s.trigger, FaultTrigger::Label { .. }))
    }
}

/// Marks the first unfired spec for `pid` whose trigger satisfies
/// `matches` as fired and returns its action. Both execution backends
/// resolve triggers through this one function, so fire-once bookkeeping
/// cannot diverge between them.
pub(crate) fn take_matching_fault(
    plan: &FaultPlan,
    fired: &mut [bool],
    pid: usize,
    matches: impl Fn(&FaultTrigger) -> bool,
) -> Option<FaultAction> {
    for (i, spec) in plan.specs.iter().enumerate() {
        if spec.pid == pid && !fired[i] && matches(&spec.trigger) {
            fired[i] = true;
            return Some(spec.action);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_watches_nobody() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        for pid in 0..70 {
            assert!(!plan.watches(pid));
            assert!(!plan.watches_labels(pid));
        }
    }

    #[test]
    fn watch_mask_tracks_targets() {
        let plan = FaultPlan::new()
            .kill_at_op(3, 10)
            .stall_at_label(5, "msq:enq:window", 0, 1_000);
        assert!(plan.watches(3));
        assert!(plan.watches(5));
        assert!(!plan.watches(0));
        assert!(!plan.watches_labels(3), "pid 3 only has an op trigger");
        assert!(plan.watches_labels(5));
    }

    #[test]
    fn high_pids_fall_back_to_overflow() {
        let plan = FaultPlan::new().kill_at_op(100, 0);
        assert!(plan.watches(100));
        assert!(plan.watches(99), "overflow is conservative");
        assert!(!plan.watches(1), "low pids still use the precise mask");
    }

    #[test]
    fn storm_expands_to_per_occurrence_specs() {
        let plan = FaultPlan::new().preempt_storm(2, "lock:held", 3);
        assert_eq!(plan.len(), 3);
        for (i, spec) in plan.specs.iter().enumerate() {
            assert_eq!(spec.pid, 2);
            assert_eq!(spec.action, FaultAction::Preempt);
            assert_eq!(
                spec.trigger,
                FaultTrigger::Label {
                    label: "lock:held",
                    occurrence: i as u64
                }
            );
        }
    }
}
