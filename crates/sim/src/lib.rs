//! A deterministic multiprocessor simulator for reproducing the paper's
//! SGI Challenge experiments on an arbitrary (even single-core) host.
//!
//! # Why a simulator
//!
//! Michael & Scott's evaluation ran on a dedicated 12-processor SGI
//! Challenge; their analysis attributes every result to a handful of
//! machine-level effects — cache misses on the contended `Head`/`Tail`
//! words, serialization of the enqueue/dequeue critical path, spin-wait
//! traffic, and (for Figures 4 and 5) preemption of a process that holds a
//! lock or is mid-operation. This crate models exactly those effects:
//!
//! * **Virtual time.** Each simulated processor has a nanosecond clock.
//!   A global scheduler always advances the runnable process on the
//!   least-advanced processor, so the interleaving of shared-memory
//!   operations is a legal sequentially-consistent history, identical on
//!   every run (no dependence on the host OS scheduler).
//! * **Coherence cost model.** Every cell tracks which processors hold it
//!   in cache. Reads by a sharer cost `t_hit_ns`; other reads cost
//!   `t_miss_ns` and join the sharer set. Writes and read-modify-writes by
//!   a non-exclusive owner cost a miss plus `t_inval_ns` per invalidated
//!   sharer; they leave the writer as the only sharer. RMWs add `t_rmw_ns`.
//! * **Multiprogramming.** Each processor round-robins
//!   `processes_per_processor` processes with quantum `quantum_ns`
//!   (default 10 ms, the paper's value) and a context-switch cost. A
//!   process that is preempted simply stops advancing — which is precisely
//!   how a blocking algorithm ends up stalling every other process.
//!
//! Algorithms do not know they are being simulated: [`SimPlatform`]
//! implements [`msq_platform::Platform`], and each simulated process runs
//! the ordinary Rust implementation of its algorithm on a dedicated worker
//! thread. Two execution backends produce the identical schedule:
//!
//! * **Serial token backend** (the default): only one process thread
//!   executes at a time — a token passes to the process chosen by the
//!   virtual-time rule — so the simulation is sequentialized and
//!   deterministic regardless of host parallelism.
//! * **Frame-stepped backend** (`MSQ_SIM_WORKERS=n` or
//!   [`SimConfig::sim_workers`]): process threads park their next
//!   shared-memory effect at a frame barrier; an engine commits effects
//!   in the serial backend's exact order, batching provably-independent
//!   commits (distinct cells, tied minimum clocks) across a worker pool.
//!   Every [`SimReport`] is byte-identical to the serial backend's — the
//!   `backend_equivalence` integration test enforces it.
//!
//! Seed sweeps ([`schedule_sweep`]) additionally parallelize across
//! *runs*: independent seeds dispatch onto `MSQ_SWEEP_LANES` host
//! threads (default: one per available core), with failures always
//! reported at the minimal failing seed index, exactly as the serial
//! sweep would.
//!
//! # Example
//!
//! ```
//! use msq_platform::{AtomicWord, Platform};
//! use msq_sim::{SimConfig, Simulation};
//! use std::sync::Arc;
//!
//! let sim = Simulation::new(SimConfig { processors: 4, ..SimConfig::default() });
//! let counter = Arc::new(sim.platform().alloc_cell(0));
//! let report = sim.run({
//!     let counter = Arc::clone(&counter);
//!     move |_proc| {
//!         for _ in 0..100 {
//!             counter.fetch_add(1);
//!         }
//!     }
//! });
//! assert_eq!(counter.load(), 400);
//! assert!(report.elapsed_ns > 0);
//! ```

#![warn(missing_docs)]

mod config;
mod core;
mod engine;
mod fault;
mod frame;
mod platform;
mod recovery;
mod report;
mod runner;
mod sweep;

pub use config::SimConfig;
pub use engine::env_workers;
pub use fault::{FaultAction, FaultPlan, FaultSpec, FaultTrigger};
pub use platform::{SimCell, SimPlatform};
pub use recovery::RecoveryPolicy;
pub use report::{
    BlockedKind, LatencySample, ProcessReport, RecoveryReport, RepairReport, SimReport, TraceEvent,
    TraceKind,
};
pub use runner::{ProcessInfo, Simulation};
pub use sweep::{schedule_sweep, schedule_sweep_with};
