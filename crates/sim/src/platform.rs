//! [`SimPlatform`] and [`SimCell`]: the `msq_platform::Platform`
//! implementation that routes every operation through the simulator.

use std::cell::Cell;
use std::sync::Arc;

use msq_platform::{AtomicWord, Platform};

use crate::core::MemOp;
use crate::engine::EngineShared;

thread_local! {
    /// The simulated process id bound to the current worker thread, or
    /// `usize::MAX` when the thread is the coordinator (setup/inspection).
    static CURRENT_PID: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Per-process counter feeding deterministic backoff-jitter seeds.
    static SEED_COUNTER: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn bind_current_process(pid: usize) {
    CURRENT_PID.with(|c| c.set(pid));
}

pub(crate) fn unbind_current_process() {
    CURRENT_PID.with(|c| c.set(usize::MAX));
}

fn current_pid() -> Option<usize> {
    CURRENT_PID.with(|c| {
        let v = c.get();
        (v != usize::MAX).then_some(v)
    })
}

/// Handle to a simulation's memory and clock, implementing
/// [`msq_platform::Platform`].
///
/// Cloning is cheap; clones refer to the same simulated machine. When used
/// from a simulated process (inside [`crate::Simulation::run`]) every
/// operation costs virtual time and participates in the deterministic
/// interleaving; when used from any other thread (queue construction before
/// the run, result inspection after it) operations apply directly and cost
/// nothing, mirroring the paper's untimed initialization.
#[derive(Clone)]
pub struct SimPlatform {
    shared: Arc<EngineShared>,
}

impl SimPlatform {
    pub(crate) fn new(shared: Arc<EngineShared>) -> Self {
        SimPlatform { shared }
    }

    /// The simulation's **death board**: a cell whose bit `pid` is set
    /// the instant the fault layer kills `pid` (watchdog retirements are
    /// *not* posted — a watchdog-flagged process is wedged, not dead,
    /// and nothing deterministic distinguishes the two from inside).
    ///
    /// The cell is allocated lazily on first call (so runs that never
    /// ask keep their cell ids, and therefore traces, unchanged) and is
    /// shared by all callers. Survivors implementing a recovery policy
    /// poll it with ordinary charged loads; the coherence model prices
    /// the polls but never hides the bits.
    pub fn death_board(&self) -> SimCell {
        SimCell {
            id: self.shared.death_board(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Records that the calling simulated process has fully absorbed the
    /// remaining work share of killed process `victim`, stamping a
    /// [`crate::RecoveryReport`] with the victim's death time and the
    /// caller's current virtual time. Free, like a fault point: the
    /// catch-up work itself was already charged op by op. No-op outside
    /// a simulated process.
    pub fn mark_recovered(&self, victim: usize) {
        if let Some(pid) = current_pid() {
            self.shared.mark_recovered(pid, victim);
        }
    }
}

impl std::fmt::Debug for SimPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimPlatform({} processors)",
            self.shared.config().processors
        )
    }
}

impl Platform for SimPlatform {
    type Cell = SimCell;

    fn alloc_cell(&self, init: u64) -> SimCell {
        SimCell {
            id: self.shared.alloc_cell(init),
            shared: Arc::clone(&self.shared),
        }
    }

    fn delay(&self, nanos: u64) {
        if let Some(pid) = current_pid() {
            self.shared.delay(pid, nanos);
        }
        // Outside the simulation, delay is free: setup time is untimed.
    }

    fn cpu_relax(&self) {
        if let Some(pid) = current_pid() {
            // A failed spin probe that does not touch memory: charge one
            // local-work unit.
            self.shared.delay(pid, 1);
        }
    }

    fn jitter_seed(&self) -> u64 {
        // Derived purely from the calling process's identity and its own
        // program order, so the seed sequence is identical on every run
        // regardless of how worker threads interleave on the host.
        let counter = SEED_COUNTER.with(|c| {
            let v = c.get();
            c.set(v + 1);
            v
        });
        let pid = current_pid().map_or(u64::MAX, |p| p as u64);
        // splitmix64-style finalizer for good bit spread.
        let mut z = pid
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(counter)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn affinity_hint(&self) -> usize {
        // The simulated process id: stable for the process's lifetime and
        // identical on every run, so sharded structures dispatch
        // deterministically. Setup/inspection threads (unbound) all map
        // to 0, which is fine — setup is untimed and single-threaded.
        current_pid().unwrap_or(0)
    }

    fn fault_point(&self, label: &'static str) {
        // Routes to the run's FaultPlan. The shared side prechecks the
        // plan lock-free, so unwatched processes (and every process of an
        // unfaulted run) take a few instructions and no scheduler
        // interaction — the canonical schedule is untouched.
        if let Some(pid) = current_pid() {
            self.shared.fault_point(pid, label);
        }
    }

    fn dead_peers(&self) -> u64 {
        // A charged load of the death board: consulting the board is an
        // ordinary shared-memory read, priced like any survivor poll.
        // The board cell is allocated lazily on first use; structures
        // that call this mid-run should touch `death_board()` during
        // untimed setup so cell ids (and traces) stay schedule-stable.
        // Outside a simulated process the read is direct and free.
        let cell = self.shared.death_board();
        match current_pid() {
            Some(pid) => self
                .shared
                .mem_op(pid, cell, MemOp::Load)
                .expect("load is infallible"),
            None => self.shared.peek(cell),
        }
    }

    fn mark_recovered(&self, victim: usize) {
        // Same stamp as the inherent method: generic code reaches it
        // through the `Platform` trait.
        SimPlatform::mark_recovered(self, victim);
    }

    fn mark_repaired(&self, victim: usize, point: &'static str) {
        // Free, like mark_recovered: the repair's memory traffic was
        // already charged op by op. No-op outside a simulated process.
        if let Some(pid) = current_pid() {
            self.shared.mark_repaired(pid, victim, point);
        }
    }

    fn now_ns(&self) -> u64 {
        // The calling process's virtual time. Free and token-keeping: a
        // clock read touches no shared memory. The coordinator (setup /
        // inspection) reads 0 — setup is untimed.
        match current_pid() {
            Some(pid) => self.shared.now_ns(pid),
            None => 0,
        }
    }

    fn record_latency(&self, arrival_ns: u64) {
        // Free, like mark_recovered: the dequeue that surfaced the item
        // was already charged. No-op outside a simulated process.
        if let Some(pid) = current_pid() {
            self.shared.record_latency(pid, arrival_ns);
        }
    }
}

/// A simulated shared-memory word.
///
/// Operations performed from a simulated process are charged virtual time
/// under the coherence cost model and are serialized by the scheduler;
/// operations from other threads apply immediately and free of charge.
pub struct SimCell {
    id: u32,
    shared: Arc<EngineShared>,
}

impl SimCell {
    fn op(&self, op: MemOp) -> Result<u64, u64> {
        match current_pid() {
            Some(pid) => self.shared.mem_op(pid, self.id, op),
            None => self.direct(op),
        }
    }

    /// Setup-mode operation: applied atomically (under the core lock) but
    /// with no cost and no cache effects.
    fn direct(&self, op: MemOp) -> Result<u64, u64> {
        let prev = self.shared.peek(self.id);
        match op {
            MemOp::Load => Ok(prev),
            MemOp::Store(v) => {
                self.shared.poke(self.id, v);
                Ok(prev)
            }
            MemOp::CompareExchange { current, new } => {
                if prev == current {
                    self.shared.poke(self.id, new);
                    Ok(prev)
                } else {
                    Err(prev)
                }
            }
            MemOp::Swap(v) => {
                self.shared.poke(self.id, v);
                Ok(prev)
            }
            MemOp::FetchAdd(d) => {
                self.shared.poke(self.id, prev.wrapping_add(d));
                Ok(prev)
            }
        }
    }
}

impl std::fmt::Debug for SimCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimCell(#{id})", id = self.id)
    }
}

impl AtomicWord for SimCell {
    fn load(&self) -> u64 {
        self.op(MemOp::Load).expect("load is infallible")
    }

    fn store(&self, value: u64) {
        let _ = self.op(MemOp::Store(value));
    }

    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.op(MemOp::CompareExchange { current, new })
    }

    fn swap(&self, value: u64) -> u64 {
        self.op(MemOp::Swap(value)).expect("swap is infallible")
    }

    fn fetch_add(&self, delta: u64) -> u64 {
        self.op(MemOp::FetchAdd(delta))
            .expect("fetch_add is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulation};

    #[test]
    fn setup_mode_operations_are_direct_and_free() {
        let sim = Simulation::new(SimConfig::default());
        let p = sim.platform();
        let c = p.alloc_cell(4);
        assert_eq!(c.load(), 4);
        c.store(6);
        assert_eq!(c.swap(8), 6);
        assert_eq!(c.compare_exchange(8, 9), Ok(8));
        assert_eq!(c.compare_exchange(1, 2), Err(9));
        assert_eq!(c.fetch_add(1), 9);
        assert_eq!(c.load(), 10);
        // None of that advanced any clock.
        let report = sim.run(|_| {});
        assert_eq!(report.elapsed_ns, 0);
    }

    #[test]
    fn latency_stamps_and_clock_reads_are_free() {
        let sim = Simulation::new(SimConfig::default());
        let p = sim.platform();
        assert_eq!(p.now_ns(), 0, "coordinator clock reads are zero");
        p.record_latency(5); // no-op outside a simulated process
        let report = sim.run({
            let p = p.clone();
            move |_| {
                let before = p.now_ns();
                p.delay(100);
                let after = p.now_ns();
                assert_eq!(after, before + 100);
                // Stamp then re-read: the stamp is free, so the clock
                // must not have moved — the host-side latency equals the
                // report's sample exactly.
                p.record_latency(before);
                assert_eq!(p.now_ns(), after);
            }
        });
        assert_eq!(report.latencies.len(), 1);
        assert_eq!(report.latencies[0].latency_ns(), 100);
        assert_eq!(report.total_ops, 0, "stamps and clock reads are free");
    }

    #[test]
    fn simulated_operations_cost_time() {
        let sim = Simulation::new(SimConfig::default());
        let c = std::sync::Arc::new(sim.platform().alloc_cell(0));
        let report = sim.run({
            let c = std::sync::Arc::clone(&c);
            move |_| {
                c.store(3);
            }
        });
        assert_eq!(c.load(), 3);
        assert!(report.elapsed_ns > 0);
        assert_eq!(report.total_ops, 1);
    }
}
