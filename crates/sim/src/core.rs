//! Scheduler core: virtual clocks, run queues, the coherence cost model,
//! and the token-passing protocol that sequentializes worker threads.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::config::SimConfig;
use crate::fault::{FaultAction, FaultPlan, FaultTrigger};

/// Panic payload used to unwind a worker whose process was killed by the
/// fault layer. The runner recognizes it and swallows the unwind instead
/// of treating it as a test failure.
pub(crate) struct ProcessKilled;

/// Identifies "no process" in the token slot.
pub(crate) const NOBODY: usize = usize::MAX;

/// SplitMix64: a full-period mixer used to derive per-processor schedule
/// perturbations from [`SimConfig::seed`].
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The kinds of shared-memory operation the cost model distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MemOp {
    Load,
    Store(u64),
    CompareExchange { current: u64, new: u64 },
    Swap(u64),
    FetchAdd(u64),
}

/// Result of a memory operation: the value returned to the caller plus
/// whether a CAS failed (for statistics).
pub(crate) struct MemResult {
    pub value: Result<u64, u64>,
    // Recorded in per-process stats by `apply`; kept on the result for
    // white-box tests of the cost model.
    #[cfg_attr(not(test), allow(dead_code))]
    pub cas_failed: bool,
}

/// Fixed 256-bit processor set: which processors hold a cell in cache.
/// Sized for the simulator's 256-processor ceiling (see
/// [`SimConfig::validate`]).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SharerSet([u64; 4]);

impl SharerSet {
    pub(crate) const EMPTY: SharerSet = SharerSet([0; 4]);

    fn only(cpu: usize) -> SharerSet {
        let mut s = SharerSet::EMPTY;
        s.insert(cpu);
        s
    }

    fn contains(&self, cpu: usize) -> bool {
        self.0[cpu >> 6] & (1u64 << (cpu & 63)) != 0
    }

    fn insert(&mut self, cpu: usize) {
        self.0[cpu >> 6] |= 1u64 << (cpu & 63);
    }

    /// Number of sharers other than `cpu`.
    fn others(&self, cpu: usize) -> u64 {
        let total: u32 = self.0.iter().map(|w| w.count_ones()).sum();
        u64::from(total) - u64::from(self.contains(cpu))
    }

    /// True when `cpu` is the sole sharer.
    fn is_exactly(&self, cpu: usize) -> bool {
        *self == SharerSet::only(cpu)
    }
}

pub(crate) struct CellState {
    pub(crate) value: u64,
    /// Which processors currently hold this cell in cache.
    pub(crate) sharers: SharerSet,
}

pub(crate) struct Processor {
    pub(crate) clock_ns: u64,
    /// Front is the currently scheduled process.
    pub(crate) run_queue: VecDeque<usize>,
    pub(crate) quantum_left_ns: u64,
    /// Deterministic xorshift state for quantum jitter.
    pub(crate) rng: u64,
    /// Quantum expiries charged on this processor. Kept per-processor so
    /// the frame backend's commit workers never contend on a global
    /// counter; the report sums them.
    pub(crate) preemptions: u64,
}

impl Processor {
    /// Next quantum length: the configured quantum ±25%, from a seeded
    /// xorshift so runs stay reproducible. Without jitter the workload's
    /// nearly-periodic op sequence phase-locks against the quantum and
    /// expiries systematically miss (or hit) critical sections — an
    /// artifact a real machine's noise does not have.
    pub(crate) fn next_quantum(&mut self, base: u64) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let half_range = base / 4;
        if half_range == 0 {
            return base.max(1);
        }
        base - half_range + self.rng % (2 * half_range)
    }
}

pub(crate) struct Process {
    pub(crate) cpu: usize,
    pub(crate) finished: bool,
    pub(crate) ops: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) cas_failures: u64,
    /// Scheduler entries (memory ops + delays), the clock for
    /// [`FaultTrigger::Op`]. Only advanced for fault-watched processes.
    pub(crate) steps: u64,
    /// Virtual time before which this process may not run (stall faults).
    /// Zero for unfaulted processes, keeping the canonical schedule exact.
    pub(crate) blocked_until_ns: u64,
    /// Processor clock when the process retired (finish or kill).
    pub(crate) finished_at_ns: u64,
    /// Per-label fault-point hit counts, for [`FaultTrigger::Label`].
    pub(crate) label_hits: Vec<(&'static str, u64)>,
}

pub(crate) struct Core {
    pub(crate) cfg: SimConfig,
    pub(crate) cells: Vec<CellState>,
    pub(crate) processors: Vec<Processor>,
    pub(crate) processes: Vec<Process>,
    /// The process holding the execution token, or [`NOBODY`].
    pub(crate) running: usize,
    pub(crate) live: usize,
    pub(crate) started: bool,
    pub(crate) trace: Vec<crate::report::TraceEvent>,
    /// One flag per [`FaultPlan`] spec: each fault fires at most once.
    pub(crate) fault_fired: Vec<bool>,
    /// Pids killed by the fault layer, in kill order.
    pub(crate) killed: Vec<usize>,
    /// Pids retired by the virtual-time watchdog (permanently blocked).
    pub(crate) blocked: Vec<usize>,
    /// Why each watchdog-retired pid was blocked (parallel to `blocked`).
    pub(crate) blocked_kinds: Vec<crate::report::BlockedKind>,
    pub(crate) stalls_injected: u64,
    pub(crate) preempts_injected: u64,
    /// The death-notice cell, lazily allocated by the first
    /// [`Core::death_board`] call: bit `pid` is set (directly, with no
    /// cost or cache effects) when the fault layer kills `pid`, so
    /// survivors can poll for deaths with an ordinary charged load.
    pub(crate) kill_board: Option<u32>,
    /// Completed recovery handoffs, in completion order.
    pub(crate) recoveries: Vec<crate::report::RecoveryReport>,
    /// Completed lock revocation + invariant repairs, in completion order.
    pub(crate) repairs: Vec<crate::report::RepairReport>,
    /// Enqueue-to-dequeue latency samples, in completion order.
    pub(crate) latencies: Vec<crate::report::LatencySample>,
}

/// Applies `op` to one cell on behalf of one process on processor `cpu`,
/// mutating only the three disjoint pieces it is handed. Both backends —
/// the serial token scheduler and the frame engine's parallel commit
/// workers — fund every shared-memory operation through this one function,
/// so the cost arithmetic and cache-state transitions cannot drift apart.
pub(crate) fn apply_parts(
    cfg: &SimConfig,
    state: &mut CellState,
    process: &mut Process,
    cpu: usize,
    op: MemOp,
) -> (MemResult, u64) {
    let mut cost = cfg.t_local_ns;

    let is_read_only = matches!(op, MemOp::Load);
    if is_read_only {
        if state.sharers.contains(cpu) {
            cost += cfg.t_hit_ns;
            process.cache_hits += 1;
        } else {
            cost += cfg.t_miss_ns;
            process.cache_misses += 1;
        }
        state.sharers.insert(cpu);
    } else {
        let others = state.sharers.others(cpu);
        if state.sharers.is_exactly(cpu) {
            cost += cfg.t_hit_ns;
            process.cache_hits += 1;
        } else {
            cost += cfg.t_miss_ns + cfg.t_inval_ns * others;
            process.cache_misses += 1;
        }
        state.sharers = SharerSet::only(cpu);
        if !matches!(op, MemOp::Store(_)) {
            cost += cfg.t_rmw_ns;
        }
    }

    let prev = state.value;
    let mut cas_failed = false;
    let value = match op {
        MemOp::Load => Ok(prev),
        MemOp::Store(v) => {
            state.value = v;
            Ok(prev)
        }
        MemOp::CompareExchange { current, new } => {
            if prev == current {
                state.value = new;
                Ok(prev)
            } else {
                cas_failed = true;
                Err(prev)
            }
        }
        MemOp::Swap(v) => {
            state.value = v;
            Ok(prev)
        }
        MemOp::FetchAdd(d) => {
            state.value = prev.wrapping_add(d);
            Ok(prev)
        }
    };
    process.ops += 1;
    if cas_failed {
        process.cas_failures += 1;
    }
    (MemResult { value, cas_failed }, cost)
}

/// Advances one processor's clock by `cost` and performs quantum
/// accounting, mutating nothing outside that processor. Shared by both
/// backends for the same reason as [`apply_parts`].
pub(crate) fn charge_parts(cfg: &SimConfig, processor: &mut Processor, pid: usize, cost: u64) {
    processor.clock_ns += cost;
    if processor.run_queue.len() > 1 {
        processor.quantum_left_ns = processor.quantum_left_ns.saturating_sub(cost);
        if processor.quantum_left_ns == 0 {
            let front = processor.run_queue.pop_front().expect("non-empty");
            debug_assert_eq!(front, pid);
            processor.run_queue.push_back(front);
            processor.clock_ns += cfg.ctx_switch_ns;
            processor.quantum_left_ns = processor.next_quantum(cfg.quantum_ns);
            processor.preemptions += 1;
        }
    }
}

impl Core {
    pub(crate) fn new(cfg: SimConfig, fault_slots: usize) -> Self {
        cfg.validate();
        let n = cfg.num_processes();
        let mut processors: Vec<Processor> = (0..cfg.processors)
            .map(|cpu| {
                // Seed 0 is the canonical schedule: zero clock phase and
                // the historical rng constant, byte-for-byte. Any other
                // seed perturbs both — the clock phase changes which
                // processor `pick_next` favours (the only jitter source
                // on dedicated runs, which never rotate quanta), and the
                // rng changes quantum jitter on multiprogrammed runs.
                let mix = if cfg.seed == 0 {
                    0
                } else {
                    splitmix64(cfg.seed ^ (cpu as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f))
                };
                let mut rng = 0x9e37_79b9_7f4a_7c15 ^ (cpu as u64 + 1) ^ mix;
                if rng == 0 {
                    // Xorshift's fixed point; any nonzero constant will do.
                    rng = 0x9e37_79b9_7f4a_7c15;
                }
                Processor {
                    clock_ns: mix % 64,
                    run_queue: VecDeque::new(),
                    quantum_left_ns: cfg.quantum_ns,
                    rng,
                    preemptions: 0,
                }
            })
            .collect();
        let processes: Vec<Process> = (0..n)
            .map(|pid| {
                let cpu = pid % cfg.processors;
                processors[cpu].run_queue.push_back(pid);
                Process {
                    cpu,
                    finished: false,
                    ops: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    cas_failures: 0,
                    steps: 0,
                    blocked_until_ns: 0,
                    finished_at_ns: 0,
                    label_hits: Vec::new(),
                }
            })
            .collect();
        Core {
            cfg,
            cells: Vec::new(),
            processors,
            processes,
            running: NOBODY,
            live: n,
            started: false,
            trace: Vec::new(),
            fault_fired: vec![false; fault_slots],
            killed: Vec::new(),
            blocked: Vec::new(),
            blocked_kinds: Vec::new(),
            stalls_injected: 0,
            preempts_injected: 0,
            kill_board: None,
            recoveries: Vec::new(),
            repairs: Vec::new(),
            latencies: Vec::new(),
        }
    }

    /// Returns the death-notice cell, allocating it on first use (lazily,
    /// so runs that never ask for it keep their cell ids — and therefore
    /// their traces — unchanged).
    pub(crate) fn death_board(&mut self) -> u32 {
        match self.kill_board {
            Some(cell) => cell,
            None => {
                let cell = self.alloc_cell(0);
                self.kill_board = Some(cell);
                cell
            }
        }
    }

    /// Posts `pid`'s death notice on the board (if one was requested).
    /// The bit is set directly — no cost, no cache effects — which is
    /// deterministic because both backends call this at the same commit
    /// point; the cache model only prices reads, it never hides values,
    /// so a survivor's next charged load of the board sees the bit.
    pub(crate) fn note_death(&mut self, pid: usize) {
        if let Some(cell) = self.kill_board {
            if pid < 64 {
                self.cells[cell as usize].value |= 1 << pid;
            }
        }
    }

    /// Records that `by` absorbed the remaining share of killed process
    /// `victim`, stamping the recovery with the victim's death time and
    /// `by`'s current virtual time.
    pub(crate) fn note_recovery(&mut self, victim: usize, by: usize) {
        let cpu = self.processes[by].cpu;
        self.recoveries.push(crate::report::RecoveryReport {
            victim,
            by,
            killed_at_ns: self.processes[victim].finished_at_ns,
            recovered_at_ns: self.processors[cpu].clock_ns,
        });
    }

    /// Records an enqueue-to-dequeue latency sample on behalf of consumer
    /// `pid`: the gap between an item's stamped arrival time and `pid`'s
    /// current virtual time.
    pub(crate) fn note_latency(&mut self, pid: usize, arrival_ns: u64) {
        let cpu = self.processes[pid].cpu;
        self.latencies.push(crate::report::LatencySample {
            pid,
            arrival_ns,
            completed_at_ns: self.processors[cpu].clock_ns,
        });
    }

    /// The calling process's current virtual time (its processor's clock).
    pub(crate) fn clock_of(&self, pid: usize) -> u64 {
        self.processors[self.processes[pid].cpu].clock_ns
    }

    /// Records that `by` revoked dead process `victim`'s lock (or seized
    /// its torn critical window) and restored the protected invariant,
    /// stamping the repair with the victim's death time, `by`'s current
    /// virtual time, and the repair-outcome label `point`.
    pub(crate) fn note_repair(&mut self, victim: usize, by: usize, point: &'static str) {
        let cpu = self.processes[by].cpu;
        self.repairs.push(crate::report::RepairReport {
            victim,
            by,
            point,
            killed_at_ns: self.processes[victim].finished_at_ns,
            repaired_at_ns: self.processors[cpu].clock_ns,
        });
    }

    pub(crate) fn alloc_cell(&mut self, init: u64) -> u32 {
        let id = self.cells.len();
        assert!(id < u32::MAX as usize, "simulated memory exhausted");
        self.cells.push(CellState {
            value: init,
            sharers: SharerSet::EMPTY,
        });
        id as u32
    }

    /// Applies `op` to cell `cell` on behalf of `pid`, returning the result
    /// and the virtual-time cost under the coherence model.
    pub(crate) fn apply(&mut self, pid: usize, cell: u32, op: MemOp) -> (MemResult, u64) {
        let cpu = self.processes[pid].cpu;
        let (result, cost) = apply_parts(
            &self.cfg,
            &mut self.cells[cell as usize],
            &mut self.processes[pid],
            cpu,
            op,
        );
        let cas_failed = result.cas_failed;
        if self.trace.len() < self.cfg.trace_capacity {
            self.trace.push(crate::report::TraceEvent {
                at_ns: self.processors[cpu].clock_ns,
                pid,
                processor: cpu,
                cell,
                kind: match op {
                    MemOp::Load => crate::report::TraceKind::Load,
                    MemOp::Store(_) => crate::report::TraceKind::Store,
                    MemOp::CompareExchange { .. } => crate::report::TraceKind::CompareExchange {
                        success: !cas_failed,
                    },
                    MemOp::Swap(_) => crate::report::TraceKind::Swap,
                    MemOp::FetchAdd(_) => crate::report::TraceKind::FetchAdd,
                },
            });
        }
        (result, cost)
    }

    /// Reads a cell without charging time (setup / post-run inspection).
    pub(crate) fn peek(&self, cell: u32) -> u64 {
        self.cells[cell as usize].value
    }

    /// Writes a cell without charging time (setup only).
    pub(crate) fn poke(&mut self, cell: u32, value: u64) {
        self.cells[cell as usize].value = value;
    }

    /// Advances `pid`'s processor clock by `cost` and performs quantum
    /// accounting (round-robin rotation with context-switch cost).
    pub(crate) fn charge(&mut self, pid: usize, cost: u64) {
        let cpu = self.processes[pid].cpu;
        charge_parts(&self.cfg, &mut self.processors[cpu], pid, cost);
    }

    /// Picks the next process to hold the token: the front of the run queue
    /// of the processor whose front becomes runnable earliest (ties broken
    /// by processor index). Returns [`NOBODY`] when everything has finished.
    ///
    /// A process stalled by a fault has `blocked_until_ns` in the future:
    /// it is rotated behind runnable queue-mates (a stalled process does
    /// not hold its processor), and if *every* candidate is stalled the
    /// chosen processor idles — its clock jumps to the stall's end. With
    /// no faults every `blocked_until_ns` is zero and this reduces exactly
    /// to the historical least-advanced-clock rule.
    pub(crate) fn pick_next(&mut self) -> usize {
        for cpu in 0..self.processors.len() {
            let clock = self.processors[cpu].clock_ns;
            let queue_len = self.processors[cpu].run_queue.len();
            if queue_len < 2 {
                continue;
            }
            let any_runnable = self.processors[cpu]
                .run_queue
                .iter()
                .any(|&p| self.processes[p].blocked_until_ns <= clock);
            if !any_runnable {
                continue;
            }
            for _ in 0..queue_len {
                let front = *self.processors[cpu].run_queue.front().expect("non-empty");
                if self.processes[front].blocked_until_ns <= clock {
                    break;
                }
                let f = self.processors[cpu]
                    .run_queue
                    .pop_front()
                    .expect("non-empty");
                self.processors[cpu].run_queue.push_back(f);
            }
        }
        let mut best: Option<(u64, usize)> = None;
        for (idx, processor) in self.processors.iter().enumerate() {
            let Some(&front) = processor.run_queue.front() else {
                continue;
            };
            let ready = processor
                .clock_ns
                .max(self.processes[front].blocked_until_ns);
            match best {
                Some((best_ready, _)) if best_ready <= ready => {}
                _ => best = Some((ready, idx)),
            }
        }
        match best {
            Some((ready, cpu)) => {
                // Idle the processor through the remainder of the stall.
                if self.processors[cpu].clock_ns < ready {
                    self.processors[cpu].clock_ns = ready;
                }
                *self.processors[cpu].run_queue.front().expect("non-empty")
            }
            None => NOBODY,
        }
    }

    /// Records `pid` as watchdog-retired, classifying the failure mode:
    /// a starved process with a dead peer was (to the watchdog's best
    /// knowledge) waiting on the dead holder's resource — the repairable
    /// case — while starvation with every peer alive is live contention.
    /// Both backends classify at the same commit point with the same
    /// rule, so the verdict is deterministic.
    pub(crate) fn note_blocked(&mut self, pid: usize) {
        let kind = if self.killed.is_empty() {
            crate::report::BlockedKind::LiveContention
        } else {
            crate::report::BlockedKind::DeadHolder
        };
        self.blocked.push(pid);
        self.blocked_kinds.push(kind);
    }

    pub(crate) fn remove_process(&mut self, pid: usize) {
        let cpu = self.processes[pid].cpu;
        self.processes[pid].finished = true;
        self.processes[pid].finished_at_ns = self.processors[cpu].clock_ns;
        self.processors[cpu].run_queue.retain(|&p| p != pid);
        // Reset the quantum for whoever runs next on this processor.
        let base = self.cfg.quantum_ns;
        self.processors[cpu].quantum_left_ns = self.processors[cpu].next_quantum(base);
        self.live -= 1;
    }

    /// Applies `op` with no cost, no cache effects, and no stats — the
    /// setup-mode semantics, used for post-mortem accesses from a killed
    /// process's unwind path (destructors must not deadlock on a token
    /// that will never come back).
    pub(crate) fn apply_direct(&mut self, cell: u32, op: MemOp) -> Result<u64, u64> {
        let prev = self.cells[cell as usize].value;
        match op {
            MemOp::Load => Ok(prev),
            MemOp::Store(v) | MemOp::Swap(v) => {
                self.cells[cell as usize].value = v;
                Ok(prev)
            }
            MemOp::CompareExchange { current, new } => {
                if prev == current {
                    self.cells[cell as usize].value = new;
                    Ok(prev)
                } else {
                    Err(prev)
                }
            }
            MemOp::FetchAdd(d) => {
                self.cells[cell as usize].value = prev.wrapping_add(d);
                Ok(prev)
            }
        }
    }

    /// Returns the 0-based index of this hit of `label` by `pid` and
    /// advances the per-process counter.
    pub(crate) fn next_label_hit(&mut self, pid: usize, label: &'static str) -> u64 {
        let hits = &mut self.processes[pid].label_hits;
        if let Some(entry) = hits.iter_mut().find(|(l, _)| *l == label) {
            let n = entry.1;
            entry.1 += 1;
            n
        } else {
            hits.push((label, 1));
            0
        }
    }

    /// Builds the final [`crate::report::SimReport`] from the core state.
    /// Both backends report through this one function, so the byte-identity
    /// contract reduces to "both backends leave the core in the same
    /// state".
    pub(crate) fn snapshot_report(&self) -> crate::report::SimReport {
        crate::report::SimReport {
            elapsed_ns: self
                .processors
                .iter()
                .map(|p| p.clock_ns)
                .max()
                .unwrap_or(0),
            per_processor_ns: self.processors.iter().map(|p| p.clock_ns).collect(),
            total_ops: self.processes.iter().map(|p| p.ops).sum(),
            cache_hits: self.processes.iter().map(|p| p.cache_hits).sum(),
            cache_misses: self.processes.iter().map(|p| p.cache_misses).sum(),
            cas_failures: self.processes.iter().map(|p| p.cas_failures).sum(),
            preemptions: self.processors.iter().map(|p| p.preemptions).sum(),
            per_process: self
                .processes
                .iter()
                .enumerate()
                .map(|(pid, p)| crate::report::ProcessReport {
                    pid,
                    processor: p.cpu,
                    ops: p.ops,
                    cache_hits: p.cache_hits,
                    cache_misses: p.cache_misses,
                    cas_failures: p.cas_failures,
                    finished_at_ns: p.finished_at_ns,
                })
                .collect(),
            trace: self.trace.clone(),
            killed: self.killed.clone(),
            blocked: self.blocked.clone(),
            blocked_kinds: self.blocked_kinds.clone(),
            stalls_injected: self.stalls_injected,
            preempts_injected: self.preempts_injected,
            recoveries: self.recoveries.clone(),
            repairs: self.repairs.clone(),
            latencies: self.latencies.clone(),
        }
    }
}

/// Shared scheduler state: the core under a mutex plus one condvar per
/// process (avoiding thundering-herd wakeups) and one for the coordinator.
pub(crate) struct SimShared {
    core: Mutex<Core>,
    /// The run's fault schedule (immutable; empty by default). Kept outside
    /// the mutex so `fault_point` can precheck without locking.
    plan: FaultPlan,
    process_cv: Vec<Condvar>,
    done_cv: Condvar,
}

impl SimShared {
    pub fn with_plan(cfg: SimConfig, plan: FaultPlan) -> Self {
        let n = cfg.num_processes();
        for spec in &plan.specs {
            assert!(
                spec.pid < n,
                "fault plan targets pid {} but the simulation has {n} processes",
                spec.pid
            );
        }
        SimShared {
            core: Mutex::new(Core::new(cfg, plan.specs.len())),
            plan,
            process_cv: (0..n).map(|_| Condvar::new()).collect(),
            done_cv: Condvar::new(),
        }
    }

    pub fn config(&self) -> SimConfig {
        self.core.lock().expect("sim lock").cfg
    }

    pub fn alloc_cell(&self, init: u64) -> u32 {
        self.core.lock().expect("sim lock").alloc_cell(init)
    }

    /// Returns the death-notice cell (allocating it on first use).
    pub fn death_board(&self) -> u32 {
        self.core.lock().expect("sim lock").death_board()
    }

    /// Records, on behalf of `pid`, that the remaining share of killed
    /// process `victim` has been fully absorbed. Like a fault point, the
    /// record itself is free: `pid` keeps the token and is charged
    /// nothing — the *work* of catching up was already charged op by op.
    pub fn mark_recovered(&self, pid: usize, victim: usize) {
        let mut core = self.wait_for_token(pid);
        if core.processes[pid].finished {
            return;
        }
        core.note_recovery(victim, pid);
    }

    /// Records, on behalf of `pid`, that dead process `victim`'s lock was
    /// revoked and the torn invariant repaired (outcome label `point`).
    /// Free, exactly like [`SimShared::mark_recovered`]: the repair's
    /// memory traffic was already charged op by op.
    pub fn mark_repaired(&self, pid: usize, victim: usize, point: &'static str) {
        let mut core = self.wait_for_token(pid);
        if core.processes[pid].finished {
            return;
        }
        core.note_repair(victim, pid, point);
    }

    /// Records an enqueue-to-dequeue latency sample on behalf of `pid`.
    /// Free, exactly like [`SimShared::mark_recovered`]: the dequeue that
    /// surfaced the item was already charged, and the stamp itself is
    /// pure observability.
    pub fn record_latency(&self, pid: usize, arrival_ns: u64) {
        let mut core = self.wait_for_token(pid);
        if core.processes[pid].finished {
            return;
        }
        core.note_latency(pid, arrival_ns);
    }

    /// Reads `pid`'s current virtual time (its processor's clock). Free
    /// and token-keeping: a clock read touches no shared memory, so it
    /// charges nothing and does not pass the token.
    pub fn now_ns(&self, pid: usize) -> u64 {
        let core = self.wait_for_token(pid);
        core.clock_of(pid)
    }

    /// Direct, cost-free access for the coordinator thread (setup before
    /// `run`, inspection after).
    pub fn peek(&self, cell: u32) -> u64 {
        self.core.lock().expect("sim lock").peek(cell)
    }

    pub fn poke(&self, cell: u32, value: u64) {
        self.core.lock().expect("sim lock").poke(cell, value)
    }

    /// Marks the simulation started and seats the first token holder.
    pub fn start(&self) {
        let mut core = self.core.lock().expect("sim lock");
        assert!(!core.started, "simulation already started");
        core.started = true;
        core.running = core.pick_next();
        let first = core.running;
        drop(core);
        if first != NOBODY {
            self.process_cv[first].notify_one();
        }
    }

    /// Executes one shared-memory operation on behalf of `pid`, charging
    /// virtual time and handing the token to the next process.
    ///
    /// May unwind instead of returning when the fault plan (or watchdog)
    /// kills `pid` at this step.
    pub fn mem_op(&self, pid: usize, cell: u32, op: MemOp) -> Result<u64, u64> {
        let mut core = self.wait_for_token(pid);
        if core.processes[pid].finished {
            // Post-mortem access from a killed process's unwind path.
            return core.apply_direct(cell, op);
        }
        core = self.resolve_step_faults(core, pid);
        let (result, cost) = core.apply(pid, cell, op);
        self.charge_and_pass(core, pid, cost);
        result.value
    }

    /// Charges `nanos` of pure delay (backoff / "other work") to `pid`.
    ///
    /// May unwind instead of returning when the fault plan (or watchdog)
    /// kills `pid` at this step.
    pub fn delay(&self, pid: usize, nanos: u64) {
        let core = self.wait_for_token(pid);
        if core.processes[pid].finished {
            return;
        }
        let core = self.resolve_step_faults(core, pid);
        self.charge_and_pass(core, pid, nanos);
    }

    /// Reports that `pid` reached the fault point `label`; fires any
    /// matching label-triggered faults. Free when the plan has no label
    /// faults for `pid` — no lock, no token, no virtual time.
    pub fn fault_point(&self, pid: usize, label: &'static str) {
        if !self.plan.watches_labels(pid) {
            return;
        }
        let mut core = self.wait_for_token(pid);
        if core.processes[pid].finished {
            return;
        }
        let hit = core.next_label_hit(pid, label);
        while let Some(action) = self.take_fault(&mut core, pid, |t| {
            matches!(t, FaultTrigger::Label { label: l, occurrence }
                     if *l == label && *occurrence == hit)
        }) {
            core = self.apply_fault(core, pid, action);
        }
        // The fault point itself is free: keep the token, charge nothing.
    }

    /// Retires `pid` from the simulation. No-op for a process the fault
    /// layer already retired (kill / watchdog).
    pub fn finish(&self, pid: usize) {
        let mut core = self.wait_for_token(pid);
        if core.processes[pid].finished {
            return;
        }
        core.remove_process(pid);
        core.running = core.pick_next();
        let next = core.running;
        let all_done = core.live == 0;
        drop(core);
        if next != NOBODY {
            self.process_cv[next].notify_one();
        }
        if all_done {
            self.done_cv.notify_all();
        }
    }

    /// Watchdog + op-count fault triggers, checked while `pid` holds the
    /// token at the top of a scheduler entry. Never returns if `pid` dies.
    fn resolve_step_faults<'a>(
        &'a self,
        mut core: std::sync::MutexGuard<'a, Core>,
        pid: usize,
    ) -> std::sync::MutexGuard<'a, Core> {
        let watchdog = core.cfg.watchdog_ns;
        if watchdog > 0 {
            let cpu = core.processes[pid].cpu;
            if core.processors[cpu].clock_ns >= watchdog {
                core.note_blocked(pid);
                self.kill_locked(core, pid);
            }
        }
        if !self.plan.watches(pid) {
            return core;
        }
        let step = core.processes[pid].steps;
        core.processes[pid].steps += 1;
        while let Some(action) = self.take_fault(
            &mut core,
            pid,
            |t| matches!(t, FaultTrigger::Op(n) if *n == step),
        ) {
            core = self.apply_fault(core, pid, action);
        }
        core
    }

    /// Marks the first unfired spec for `pid` whose trigger matches as
    /// fired and returns its action.
    fn take_fault(
        &self,
        core: &mut Core,
        pid: usize,
        matches: impl Fn(&FaultTrigger) -> bool,
    ) -> Option<FaultAction> {
        crate::fault::take_matching_fault(&self.plan, &mut core.fault_fired, pid, matches)
    }

    /// Applies a fired fault to `pid` (which holds the token). Kill never
    /// returns; stall and preempt yield the token and re-acquire it.
    fn apply_fault<'a>(
        &'a self,
        mut core: std::sync::MutexGuard<'a, Core>,
        pid: usize,
        action: FaultAction,
    ) -> std::sync::MutexGuard<'a, Core> {
        match action {
            FaultAction::Kill => {
                core.killed.push(pid);
                core.note_death(pid);
                self.kill_locked(core, pid)
            }
            FaultAction::Stall { duration_ns } => {
                core.stalls_injected += 1;
                let cpu = core.processes[pid].cpu;
                let until = core.processors[cpu].clock_ns.saturating_add(duration_ns);
                core.processes[pid].blocked_until_ns = until;
                self.yield_token(core, pid)
            }
            FaultAction::Preempt => {
                core.preempts_injected += 1;
                let cpu = core.processes[pid].cpu;
                let ctx = core.cfg.ctx_switch_ns;
                let base = core.cfg.quantum_ns;
                let processor = &mut core.processors[cpu];
                processor.preemptions += 1;
                if processor.run_queue.len() > 1 {
                    let front = processor.run_queue.pop_front().expect("non-empty");
                    debug_assert_eq!(front, pid);
                    processor.run_queue.push_back(front);
                }
                processor.clock_ns += ctx;
                processor.quantum_left_ns = processor.next_quantum(base);
                self.yield_token(core, pid)
            }
        }
    }

    /// Gives up the token (if anyone else should run) and blocks until the
    /// scheduler hands it back.
    fn yield_token<'a>(
        &'a self,
        mut core: std::sync::MutexGuard<'a, Core>,
        pid: usize,
    ) -> std::sync::MutexGuard<'a, Core> {
        let next = core.pick_next();
        core.running = next;
        if next == pid {
            return core;
        }
        drop(core);
        if next != NOBODY {
            self.process_cv[next].notify_one();
        }
        self.wait_for_token(pid)
    }

    /// Retires `pid` right now (fault kill or watchdog), hands the token
    /// on, and unwinds the worker with the [`ProcessKilled`] sentinel.
    fn kill_locked(&self, mut core: std::sync::MutexGuard<'_, Core>, pid: usize) -> ! {
        core.remove_process(pid);
        core.running = core.pick_next();
        let next = core.running;
        let all_done = core.live == 0;
        // Never unwind while holding the core mutex: that would poison the
        // whole simulation.
        drop(core);
        if next != NOBODY {
            self.process_cv[next].notify_one();
        }
        if all_done {
            self.done_cv.notify_all();
        }
        std::panic::resume_unwind(Box::new(ProcessKilled));
    }

    /// Blocks the coordinator until every process has finished.
    pub fn wait_all_done(&self) {
        let mut core = self.core.lock().expect("sim lock");
        while core.live > 0 {
            core = self.done_cv.wait(core).expect("sim lock");
        }
    }

    /// Collects final statistics (coordinator, after `wait_all_done`).
    pub fn snapshot(&self) -> crate::report::SimReport {
        self.core.lock().expect("sim lock").snapshot_report()
    }

    fn wait_for_token(&self, pid: usize) -> std::sync::MutexGuard<'_, Core> {
        let mut core = self.core.lock().expect("sim lock");
        // A finished (killed) process will never be handed the token again;
        // let it through so post-mortem accesses can take the direct path
        // instead of deadlocking.
        while (!core.started || core.running != pid) && !core.processes[pid].finished {
            core = self.process_cv[pid].wait(core).expect("sim lock");
        }
        core
    }

    fn charge_and_pass(&self, mut core: std::sync::MutexGuard<'_, Core>, pid: usize, cost: u64) {
        core.charge(pid, cost);
        let next = core.pick_next();
        core.running = next;
        if next != pid {
            drop(core);
            if next != NOBODY {
                self.process_cv[next].notify_one();
            }
        }
        // If next == pid the caller simply proceeds; no handshake needed.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cpu_cfg() -> SimConfig {
        SimConfig {
            processors: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn cost_model_distinguishes_hits_and_misses() {
        let mut core = Core::new(two_cpu_cfg(), 0);
        let cell = core.alloc_cell(0);
        // First read by pid 0 (cpu 0): miss.
        let (_, c1) = core.apply(0, cell, MemOp::Load);
        assert_eq!(c1, core.cfg.t_local_ns + core.cfg.t_miss_ns);
        // Second read: hit.
        let (_, c2) = core.apply(0, cell, MemOp::Load);
        assert_eq!(c2, core.cfg.t_local_ns + core.cfg.t_hit_ns);
        // Read by pid 1 (cpu 1): miss, both now share.
        let (_, c3) = core.apply(1, cell, MemOp::Load);
        assert_eq!(c3, core.cfg.t_local_ns + core.cfg.t_miss_ns);
        // Write by pid 0 invalidates cpu 1: miss + 1 invalidation.
        let (_, c4) = core.apply(0, cell, MemOp::Store(1));
        assert_eq!(
            c4,
            core.cfg.t_local_ns + core.cfg.t_miss_ns + core.cfg.t_inval_ns
        );
        // Exclusive re-write by pid 0: hit.
        let (_, c5) = core.apply(0, cell, MemOp::Store(2));
        assert_eq!(c5, core.cfg.t_local_ns + core.cfg.t_hit_ns);
    }

    #[test]
    fn rmw_carries_surcharge_even_on_cas_failure() {
        let mut core = Core::new(two_cpu_cfg(), 0);
        let cell = core.alloc_cell(5);
        let (r, cost) = core.apply(
            0,
            cell,
            MemOp::CompareExchange {
                current: 9,
                new: 10,
            },
        );
        assert!(r.cas_failed);
        assert_eq!(r.value, Err(5));
        assert!(cost >= core.cfg.t_rmw_ns);
        assert_eq!(core.peek(cell), 5);
    }

    #[test]
    fn memory_semantics_match_atomics() {
        let mut core = Core::new(two_cpu_cfg(), 0);
        let cell = core.alloc_cell(10);
        assert_eq!(core.apply(0, cell, MemOp::FetchAdd(5)).0.value, Ok(10));
        assert_eq!(core.peek(cell), 15);
        assert_eq!(core.apply(0, cell, MemOp::Swap(1)).0.value, Ok(15));
        assert_eq!(core.peek(cell), 1);
        assert_eq!(
            core.apply(0, cell, MemOp::CompareExchange { current: 1, new: 2 })
                .0
                .value,
            Ok(1)
        );
        assert_eq!(core.peek(cell), 2);
    }

    #[test]
    fn quantum_expiry_rotates_run_queue() {
        let cfg = SimConfig {
            processors: 1,
            processes_per_processor: 2,
            quantum_ns: 100,
            ctx_switch_ns: 7,
            ..SimConfig::default()
        };
        let mut core = Core::new(cfg, 0);
        assert_eq!(core.processors[0].run_queue.front(), Some(&0));
        core.charge(0, 100); // exactly exhausts the quantum
        assert_eq!(core.processors[0].run_queue.front(), Some(&1));
        assert_eq!(core.processors[0].clock_ns, 107);
        assert_eq!(core.processors[0].preemptions, 1);
    }

    #[test]
    fn dedicated_processor_never_preempts() {
        let cfg = SimConfig {
            processors: 1,
            processes_per_processor: 1,
            quantum_ns: 10,
            ..SimConfig::default()
        };
        let mut core = Core::new(cfg, 0);
        core.charge(0, 1_000_000);
        assert_eq!(core.processors[0].preemptions, 0);
        assert_eq!(core.processors[0].run_queue.front(), Some(&0));
    }

    #[test]
    fn pick_next_prefers_least_advanced_processor() {
        let mut core = Core::new(two_cpu_cfg(), 0);
        assert_eq!(core.pick_next(), 0, "tie broken by processor index");
        core.charge(0, 50);
        assert_eq!(core.pick_next(), 1);
        core.charge(1, 200);
        assert_eq!(core.pick_next(), 0);
    }

    #[test]
    fn finished_processes_are_skipped() {
        let mut core = Core::new(two_cpu_cfg(), 0);
        core.remove_process(0);
        assert_eq!(core.pick_next(), 1);
        core.remove_process(1);
        assert_eq!(core.pick_next(), NOBODY);
        assert_eq!(core.live, 0);
    }

    #[test]
    fn seed_zero_is_the_canonical_schedule() {
        let core = Core::new(two_cpu_cfg(), 0);
        for (cpu, p) in core.processors.iter().enumerate() {
            assert_eq!(p.clock_ns, 0, "seed 0 must not phase-shift clocks");
            assert_eq!(
                p.rng,
                0x9e37_79b9_7f4a_7c15 ^ (cpu as u64 + 1),
                "seed 0 must keep the historical rng"
            );
        }
    }

    #[test]
    fn nonzero_seeds_perturb_the_schedule_deterministically() {
        let cfg = SimConfig {
            seed: 7,
            ..two_cpu_cfg()
        };
        let a = Core::new(cfg, 0);
        let b = Core::new(cfg, 0);
        for (pa, pb) in a.processors.iter().zip(&b.processors) {
            assert_eq!(pa.clock_ns, pb.clock_ns, "same seed, same schedule");
            assert_eq!(pa.rng, pb.rng);
        }
        let canonical = Core::new(two_cpu_cfg(), 0);
        let differs = a
            .processors
            .iter()
            .zip(&canonical.processors)
            .any(|(pa, pc)| pa.clock_ns != pc.clock_ns || pa.rng != pc.rng);
        assert!(differs, "seed 7 must not collapse onto the canonical run");
        for p in &a.processors {
            assert!(p.clock_ns < 64, "phase offsets stay negligible");
            assert_ne!(p.rng, 0, "xorshift state must avoid its fixed point");
        }
    }

    #[test]
    fn processes_distribute_round_robin_over_processors() {
        let cfg = SimConfig {
            processors: 3,
            processes_per_processor: 2,
            ..SimConfig::default()
        };
        let core = Core::new(cfg, 0);
        assert_eq!(core.processes[0].cpu, 0);
        assert_eq!(core.processes[1].cpu, 1);
        assert_eq!(core.processes[2].cpu, 2);
        assert_eq!(core.processes[3].cpu, 0);
        assert_eq!(core.processors[0].run_queue.len(), 2);
    }
}
