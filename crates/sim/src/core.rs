//! Scheduler core: virtual clocks, run queues, the coherence cost model,
//! and the token-passing protocol that sequentializes worker threads.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::config::SimConfig;

/// Identifies "no process" in the token slot.
pub(crate) const NOBODY: usize = usize::MAX;

/// SplitMix64: a full-period mixer used to derive per-processor schedule
/// perturbations from [`SimConfig::seed`].
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The kinds of shared-memory operation the cost model distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MemOp {
    Load,
    Store(u64),
    CompareExchange { current: u64, new: u64 },
    Swap(u64),
    FetchAdd(u64),
}

/// Result of a memory operation: the value returned to the caller plus
/// whether a CAS failed (for statistics).
pub(crate) struct MemResult {
    pub value: Result<u64, u64>,
    // Recorded in per-process stats by `apply`; kept on the result for
    // white-box tests of the cost model.
    #[cfg_attr(not(test), allow(dead_code))]
    pub cas_failed: bool,
}

struct CellState {
    value: u64,
    /// Bitmask of processors currently holding this cell in cache.
    sharers: u64,
}

struct Processor {
    clock_ns: u64,
    /// Front is the currently scheduled process.
    run_queue: VecDeque<usize>,
    quantum_left_ns: u64,
    /// Deterministic xorshift state for quantum jitter.
    rng: u64,
}

impl Processor {
    /// Next quantum length: the configured quantum ±25%, from a seeded
    /// xorshift so runs stay reproducible. Without jitter the workload's
    /// nearly-periodic op sequence phase-locks against the quantum and
    /// expiries systematically miss (or hit) critical sections — an
    /// artifact a real machine's noise does not have.
    fn next_quantum(&mut self, base: u64) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let half_range = base / 4;
        if half_range == 0 {
            return base.max(1);
        }
        base - half_range + self.rng % (2 * half_range)
    }
}

struct Process {
    cpu: usize,
    finished: bool,
    ops: u64,
    cache_hits: u64,
    cache_misses: u64,
    cas_failures: u64,
}

pub(crate) struct Core {
    cfg: SimConfig,
    cells: Vec<CellState>,
    processors: Vec<Processor>,
    processes: Vec<Process>,
    /// The process holding the execution token, or [`NOBODY`].
    running: usize,
    live: usize,
    started: bool,
    preemptions: u64,
    trace: Vec<crate::report::TraceEvent>,
}

impl Core {
    fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let n = cfg.num_processes();
        let mut processors: Vec<Processor> = (0..cfg.processors)
            .map(|cpu| {
                // Seed 0 is the canonical schedule: zero clock phase and
                // the historical rng constant, byte-for-byte. Any other
                // seed perturbs both — the clock phase changes which
                // processor `pick_next` favours (the only jitter source
                // on dedicated runs, which never rotate quanta), and the
                // rng changes quantum jitter on multiprogrammed runs.
                let mix = if cfg.seed == 0 {
                    0
                } else {
                    splitmix64(cfg.seed ^ (cpu as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f))
                };
                let mut rng = 0x9e37_79b9_7f4a_7c15 ^ (cpu as u64 + 1) ^ mix;
                if rng == 0 {
                    // Xorshift's fixed point; any nonzero constant will do.
                    rng = 0x9e37_79b9_7f4a_7c15;
                }
                Processor {
                    clock_ns: mix % 64,
                    run_queue: VecDeque::new(),
                    quantum_left_ns: cfg.quantum_ns,
                    rng,
                }
            })
            .collect();
        let processes: Vec<Process> = (0..n)
            .map(|pid| {
                let cpu = pid % cfg.processors;
                processors[cpu].run_queue.push_back(pid);
                Process {
                    cpu,
                    finished: false,
                    ops: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    cas_failures: 0,
                }
            })
            .collect();
        Core {
            cfg,
            cells: Vec::new(),
            processors,
            processes,
            running: NOBODY,
            live: n,
            started: false,
            preemptions: 0,
            trace: Vec::new(),
        }
    }

    fn alloc_cell(&mut self, init: u64) -> u32 {
        let id = self.cells.len();
        assert!(id < u32::MAX as usize, "simulated memory exhausted");
        self.cells.push(CellState {
            value: init,
            sharers: 0,
        });
        id as u32
    }

    /// Applies `op` to cell `cell` on behalf of `pid`, returning the result
    /// and the virtual-time cost under the coherence model.
    fn apply(&mut self, pid: usize, cell: u32, op: MemOp) -> (MemResult, u64) {
        let cpu = self.processes[pid].cpu;
        let my_bit = 1u64 << cpu;
        let state = &mut self.cells[cell as usize];
        let mut cost = self.cfg.t_local_ns;

        let is_read_only = matches!(op, MemOp::Load);
        if is_read_only {
            if state.sharers & my_bit != 0 {
                cost += self.cfg.t_hit_ns;
                self.processes[pid].cache_hits += 1;
            } else {
                cost += self.cfg.t_miss_ns;
                self.processes[pid].cache_misses += 1;
            }
            state.sharers |= my_bit;
        } else {
            let others = (state.sharers & !my_bit).count_ones() as u64;
            if state.sharers == my_bit {
                cost += self.cfg.t_hit_ns;
                self.processes[pid].cache_hits += 1;
            } else {
                cost += self.cfg.t_miss_ns + self.cfg.t_inval_ns * others;
                self.processes[pid].cache_misses += 1;
            }
            state.sharers = my_bit;
            if !matches!(op, MemOp::Store(_)) {
                cost += self.cfg.t_rmw_ns;
            }
        }

        let prev = state.value;
        let mut cas_failed = false;
        let value = match op {
            MemOp::Load => Ok(prev),
            MemOp::Store(v) => {
                state.value = v;
                Ok(prev)
            }
            MemOp::CompareExchange { current, new } => {
                if prev == current {
                    state.value = new;
                    Ok(prev)
                } else {
                    cas_failed = true;
                    Err(prev)
                }
            }
            MemOp::Swap(v) => {
                state.value = v;
                Ok(prev)
            }
            MemOp::FetchAdd(d) => {
                state.value = prev.wrapping_add(d);
                Ok(prev)
            }
        };
        self.processes[pid].ops += 1;
        if cas_failed {
            self.processes[pid].cas_failures += 1;
        }
        if self.trace.len() < self.cfg.trace_capacity {
            self.trace.push(crate::report::TraceEvent {
                at_ns: self.processors[cpu].clock_ns,
                pid,
                processor: cpu,
                cell,
                kind: match op {
                    MemOp::Load => crate::report::TraceKind::Load,
                    MemOp::Store(_) => crate::report::TraceKind::Store,
                    MemOp::CompareExchange { .. } => crate::report::TraceKind::CompareExchange {
                        success: !cas_failed,
                    },
                    MemOp::Swap(_) => crate::report::TraceKind::Swap,
                    MemOp::FetchAdd(_) => crate::report::TraceKind::FetchAdd,
                },
            });
        }
        (MemResult { value, cas_failed }, cost)
    }

    /// Reads a cell without charging time (setup / post-run inspection).
    fn peek(&self, cell: u32) -> u64 {
        self.cells[cell as usize].value
    }

    /// Writes a cell without charging time (setup only).
    fn poke(&mut self, cell: u32, value: u64) {
        self.cells[cell as usize].value = value;
    }

    /// Advances `pid`'s processor clock by `cost` and performs quantum
    /// accounting (round-robin rotation with context-switch cost).
    fn charge(&mut self, pid: usize, cost: u64) {
        let cpu = self.processes[pid].cpu;
        let processor = &mut self.processors[cpu];
        processor.clock_ns += cost;
        if processor.run_queue.len() > 1 {
            processor.quantum_left_ns = processor.quantum_left_ns.saturating_sub(cost);
            if processor.quantum_left_ns == 0 {
                let front = processor.run_queue.pop_front().expect("non-empty");
                debug_assert_eq!(front, pid);
                processor.run_queue.push_back(front);
                processor.clock_ns += self.cfg.ctx_switch_ns;
                let base = self.cfg.quantum_ns;
                processor.quantum_left_ns = processor.next_quantum(base);
                self.preemptions += 1;
            }
        }
    }

    /// Picks the next process to hold the token: the front of the run queue
    /// of the least-advanced processor that still has work (ties broken by
    /// processor index). Returns [`NOBODY`] when everything has finished.
    fn pick_next(&self) -> usize {
        let mut best: Option<(u64, usize)> = None;
        for (idx, processor) in self.processors.iter().enumerate() {
            if processor.run_queue.is_empty() {
                continue;
            }
            match best {
                Some((clock, _)) if clock <= processor.clock_ns => {}
                _ => best = Some((processor.clock_ns, idx)),
            }
        }
        match best {
            Some((_, cpu)) => *self.processors[cpu].run_queue.front().expect("non-empty"),
            None => NOBODY,
        }
    }

    fn remove_process(&mut self, pid: usize) {
        let cpu = self.processes[pid].cpu;
        self.processes[pid].finished = true;
        self.processors[cpu].run_queue.retain(|&p| p != pid);
        // Reset the quantum for whoever runs next on this processor.
        let base = self.cfg.quantum_ns;
        self.processors[cpu].quantum_left_ns = self.processors[cpu].next_quantum(base);
        self.live -= 1;
    }
}

/// Shared scheduler state: the core under a mutex plus one condvar per
/// process (avoiding thundering-herd wakeups) and one for the coordinator.
pub(crate) struct SimShared {
    core: Mutex<Core>,
    process_cv: Vec<Condvar>,
    done_cv: Condvar,
}

impl SimShared {
    pub fn new(cfg: SimConfig) -> Self {
        let n = cfg.num_processes();
        SimShared {
            core: Mutex::new(Core::new(cfg)),
            process_cv: (0..n).map(|_| Condvar::new()).collect(),
            done_cv: Condvar::new(),
        }
    }

    pub fn config(&self) -> SimConfig {
        self.core.lock().expect("sim lock").cfg
    }

    pub fn alloc_cell(&self, init: u64) -> u32 {
        self.core.lock().expect("sim lock").alloc_cell(init)
    }

    /// Direct, cost-free access for the coordinator thread (setup before
    /// `run`, inspection after).
    pub fn peek(&self, cell: u32) -> u64 {
        self.core.lock().expect("sim lock").peek(cell)
    }

    pub fn poke(&self, cell: u32, value: u64) {
        self.core.lock().expect("sim lock").poke(cell, value)
    }

    /// Marks the simulation started and seats the first token holder.
    pub fn start(&self) {
        let mut core = self.core.lock().expect("sim lock");
        assert!(!core.started, "simulation already started");
        core.started = true;
        core.running = core.pick_next();
        let first = core.running;
        drop(core);
        if first != NOBODY {
            self.process_cv[first].notify_one();
        }
    }

    /// Executes one shared-memory operation on behalf of `pid`, charging
    /// virtual time and handing the token to the next process.
    pub fn mem_op(&self, pid: usize, cell: u32, op: MemOp) -> Result<u64, u64> {
        let mut core = self.wait_for_token(pid);
        let (result, cost) = core.apply(pid, cell, op);
        self.charge_and_pass(core, pid, cost);
        result.value
    }

    /// Charges `nanos` of pure delay (backoff / "other work") to `pid`.
    pub fn delay(&self, pid: usize, nanos: u64) {
        let core = self.wait_for_token(pid);
        self.charge_and_pass(core, pid, nanos);
    }

    /// Retires `pid` from the simulation.
    pub fn finish(&self, pid: usize) {
        let mut core = self.wait_for_token(pid);
        core.remove_process(pid);
        core.running = core.pick_next();
        let next = core.running;
        let all_done = core.live == 0;
        drop(core);
        if next != NOBODY {
            self.process_cv[next].notify_one();
        }
        if all_done {
            self.done_cv.notify_all();
        }
    }

    /// Blocks the coordinator until every process has finished.
    pub fn wait_all_done(&self) {
        let mut core = self.core.lock().expect("sim lock");
        while core.live > 0 {
            core = self.done_cv.wait(core).expect("sim lock");
        }
    }

    /// Collects final statistics (coordinator, after `wait_all_done`).
    pub fn snapshot(&self) -> crate::report::SimReport {
        let core = self.core.lock().expect("sim lock");
        crate::report::SimReport {
            elapsed_ns: core
                .processors
                .iter()
                .map(|p| p.clock_ns)
                .max()
                .unwrap_or(0),
            per_processor_ns: core.processors.iter().map(|p| p.clock_ns).collect(),
            total_ops: core.processes.iter().map(|p| p.ops).sum(),
            cache_hits: core.processes.iter().map(|p| p.cache_hits).sum(),
            cache_misses: core.processes.iter().map(|p| p.cache_misses).sum(),
            cas_failures: core.processes.iter().map(|p| p.cas_failures).sum(),
            preemptions: core.preemptions,
            per_process: core
                .processes
                .iter()
                .enumerate()
                .map(|(pid, p)| crate::report::ProcessReport {
                    pid,
                    processor: p.cpu,
                    ops: p.ops,
                    cache_hits: p.cache_hits,
                    cache_misses: p.cache_misses,
                    cas_failures: p.cas_failures,
                })
                .collect(),
            trace: core.trace.clone(),
        }
    }

    fn wait_for_token(&self, pid: usize) -> std::sync::MutexGuard<'_, Core> {
        let mut core = self.core.lock().expect("sim lock");
        while !core.started || core.running != pid {
            core = self.process_cv[pid].wait(core).expect("sim lock");
        }
        core
    }

    fn charge_and_pass(&self, mut core: std::sync::MutexGuard<'_, Core>, pid: usize, cost: u64) {
        core.charge(pid, cost);
        let next = core.pick_next();
        core.running = next;
        if next != pid {
            drop(core);
            if next != NOBODY {
                self.process_cv[next].notify_one();
            }
        }
        // If next == pid the caller simply proceeds; no handshake needed.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cpu_cfg() -> SimConfig {
        SimConfig {
            processors: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn cost_model_distinguishes_hits_and_misses() {
        let mut core = Core::new(two_cpu_cfg());
        let cell = core.alloc_cell(0);
        // First read by pid 0 (cpu 0): miss.
        let (_, c1) = core.apply(0, cell, MemOp::Load);
        assert_eq!(c1, core.cfg.t_local_ns + core.cfg.t_miss_ns);
        // Second read: hit.
        let (_, c2) = core.apply(0, cell, MemOp::Load);
        assert_eq!(c2, core.cfg.t_local_ns + core.cfg.t_hit_ns);
        // Read by pid 1 (cpu 1): miss, both now share.
        let (_, c3) = core.apply(1, cell, MemOp::Load);
        assert_eq!(c3, core.cfg.t_local_ns + core.cfg.t_miss_ns);
        // Write by pid 0 invalidates cpu 1: miss + 1 invalidation.
        let (_, c4) = core.apply(0, cell, MemOp::Store(1));
        assert_eq!(
            c4,
            core.cfg.t_local_ns + core.cfg.t_miss_ns + core.cfg.t_inval_ns
        );
        // Exclusive re-write by pid 0: hit.
        let (_, c5) = core.apply(0, cell, MemOp::Store(2));
        assert_eq!(c5, core.cfg.t_local_ns + core.cfg.t_hit_ns);
    }

    #[test]
    fn rmw_carries_surcharge_even_on_cas_failure() {
        let mut core = Core::new(two_cpu_cfg());
        let cell = core.alloc_cell(5);
        let (r, cost) = core.apply(
            0,
            cell,
            MemOp::CompareExchange {
                current: 9,
                new: 10,
            },
        );
        assert!(r.cas_failed);
        assert_eq!(r.value, Err(5));
        assert!(cost >= core.cfg.t_rmw_ns);
        assert_eq!(core.peek(cell), 5);
    }

    #[test]
    fn memory_semantics_match_atomics() {
        let mut core = Core::new(two_cpu_cfg());
        let cell = core.alloc_cell(10);
        assert_eq!(core.apply(0, cell, MemOp::FetchAdd(5)).0.value, Ok(10));
        assert_eq!(core.peek(cell), 15);
        assert_eq!(core.apply(0, cell, MemOp::Swap(1)).0.value, Ok(15));
        assert_eq!(core.peek(cell), 1);
        assert_eq!(
            core.apply(0, cell, MemOp::CompareExchange { current: 1, new: 2 })
                .0
                .value,
            Ok(1)
        );
        assert_eq!(core.peek(cell), 2);
    }

    #[test]
    fn quantum_expiry_rotates_run_queue() {
        let cfg = SimConfig {
            processors: 1,
            processes_per_processor: 2,
            quantum_ns: 100,
            ctx_switch_ns: 7,
            ..SimConfig::default()
        };
        let mut core = Core::new(cfg);
        assert_eq!(core.processors[0].run_queue.front(), Some(&0));
        core.charge(0, 100); // exactly exhausts the quantum
        assert_eq!(core.processors[0].run_queue.front(), Some(&1));
        assert_eq!(core.processors[0].clock_ns, 107);
        assert_eq!(core.preemptions, 1);
    }

    #[test]
    fn dedicated_processor_never_preempts() {
        let cfg = SimConfig {
            processors: 1,
            processes_per_processor: 1,
            quantum_ns: 10,
            ..SimConfig::default()
        };
        let mut core = Core::new(cfg);
        core.charge(0, 1_000_000);
        assert_eq!(core.preemptions, 0);
        assert_eq!(core.processors[0].run_queue.front(), Some(&0));
    }

    #[test]
    fn pick_next_prefers_least_advanced_processor() {
        let mut core = Core::new(two_cpu_cfg());
        assert_eq!(core.pick_next(), 0, "tie broken by processor index");
        core.charge(0, 50);
        assert_eq!(core.pick_next(), 1);
        core.charge(1, 200);
        assert_eq!(core.pick_next(), 0);
    }

    #[test]
    fn finished_processes_are_skipped() {
        let mut core = Core::new(two_cpu_cfg());
        core.remove_process(0);
        assert_eq!(core.pick_next(), 1);
        core.remove_process(1);
        assert_eq!(core.pick_next(), NOBODY);
        assert_eq!(core.live, 0);
    }

    #[test]
    fn seed_zero_is_the_canonical_schedule() {
        let core = Core::new(two_cpu_cfg());
        for (cpu, p) in core.processors.iter().enumerate() {
            assert_eq!(p.clock_ns, 0, "seed 0 must not phase-shift clocks");
            assert_eq!(
                p.rng,
                0x9e37_79b9_7f4a_7c15 ^ (cpu as u64 + 1),
                "seed 0 must keep the historical rng"
            );
        }
    }

    #[test]
    fn nonzero_seeds_perturb_the_schedule_deterministically() {
        let cfg = SimConfig {
            seed: 7,
            ..two_cpu_cfg()
        };
        let a = Core::new(cfg);
        let b = Core::new(cfg);
        for (pa, pb) in a.processors.iter().zip(&b.processors) {
            assert_eq!(pa.clock_ns, pb.clock_ns, "same seed, same schedule");
            assert_eq!(pa.rng, pb.rng);
        }
        let canonical = Core::new(two_cpu_cfg());
        let differs = a
            .processors
            .iter()
            .zip(&canonical.processors)
            .any(|(pa, pc)| pa.clock_ns != pc.clock_ns || pa.rng != pc.rng);
        assert!(differs, "seed 7 must not collapse onto the canonical run");
        for p in &a.processors {
            assert!(p.clock_ns < 64, "phase offsets stay negligible");
            assert_ne!(p.rng, 0, "xorshift state must avoid its fixed point");
        }
    }

    #[test]
    fn processes_distribute_round_robin_over_processors() {
        let cfg = SimConfig {
            processors: 3,
            processes_per_processor: 2,
            ..SimConfig::default()
        };
        let core = Core::new(cfg);
        assert_eq!(core.processes[0].cpu, 0);
        assert_eq!(core.processes[1].cpu, 1);
        assert_eq!(core.processes[2].cpu, 2);
        assert_eq!(core.processes[3].cpu, 0);
        assert_eq!(core.processors[0].run_queue.len(), 2);
    }
}
