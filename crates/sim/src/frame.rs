//! The frame-stepped execution backend.
//!
//! The serial backend hands an execution token from process to process;
//! whichever process holds the token applies its own scheduler entry
//! under the core mutex. This backend inverts that: every process thread
//! *parks* its next scheduler entry (memory op, delay, fault point, or
//! finish) into a per-process slot and blocks; a single engine loop —
//! run on the coordinator thread by [`crate::Simulation::run`] — commits
//! parked entries against the same [`Core`] in the same order the serial
//! scheduler would, posting each result back to its process.
//!
//! Centralizing commits buys two things:
//!
//! 1. **Frame rounds.** On an unfaulted, untraced run every processor's
//!    front entry whose ready time equals the global minimum `m` is
//!    committed this frame: serial order commits exactly those entries,
//!    in ascending processor index, and each costs ≥ 1 ns, so none of
//!    them can re-enter before the round drains (DESIGN.md §12 has the
//!    full argument). Tied entries touching different cells commute, so
//!    the engine buckets them into per-cell commit groups and the commit
//!    workers claim groups off an atomic cursor, applying
//!    [`apply_parts`]/[`charge_parts`] to disjoint slices of the core.
//!    The frame barrier (all groups committed, all workers checked in)
//!    is the only point where effects become visible, so the commit
//!    order — and therefore every [`crate::SimReport`] — is
//!    byte-identical to the serial backend regardless of worker count.
//! 2. **A sequential fallback that is a transliteration, not a
//!    re-derivation.** Faulted, watchdogged, traced, or zero-cost runs
//!    are driven one entry at a time through the exact serial logic
//!    (same [`Core::pick_next`], same fault resolution, same charge), so
//!    the determinism contract holds trivially there.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::config::SimConfig;
use crate::core::{
    apply_parts, charge_parts, CellState, Core, MemOp, Process, ProcessKilled, Processor, NOBODY,
};
use crate::fault::{take_matching_fault, FaultAction, FaultPlan, FaultTrigger};

/// One parked scheduler entry.
#[derive(Clone, Copy, Debug)]
enum Entry {
    /// A shared-memory operation against one cell.
    Mem { cell: u32, op: MemOp },
    /// A pure virtual-time delay.
    Delay(u64),
    /// A labelled fault point (parked only when the plan watches labels
    /// for this process).
    Label(&'static str),
    /// A recovery record: the parking process absorbed the remaining
    /// share of the named killed victim. Zero-cost, like a label.
    Recovered(usize),
    /// A repair record: the parking process revoked the named dead
    /// victim's lock and restored the invariant (outcome label carried
    /// alongside). Zero-cost, like a label.
    Repaired {
        /// The dead process whose torn state was repaired.
        victim: usize,
        /// The repair-outcome label.
        point: &'static str,
    },
    /// A latency sample: the parking process consumed an item stamped
    /// with this arrival time. Zero-cost, like a label.
    Stamp {
        /// The consumed item's virtual arrival time.
        arrival_ns: u64,
    },
    /// A virtual-clock read. Zero-cost and token-keeping: the clock value
    /// is posted back as the entry's result.
    Now,
    /// Process retirement.
    Finish,
}

/// What the engine posts back to a parked process.
#[derive(Clone, Copy, Debug)]
enum EntryResult {
    /// A memory operation's value (CAS failure carried in `Err`).
    Value(Result<u64, u64>),
    /// A delay, fault point, or finish completed.
    Done,
    /// The fault layer (or watchdog) retired this process mid-entry; the
    /// process thread unwinds with [`ProcessKilled`].
    Killed,
}

/// Per-process parking slot.
#[derive(Default)]
struct Slot {
    entry: Option<Entry>,
    /// The entry's once-per-entry resolution (watchdog check, step/label
    /// counter advance) already ran; a stall or preempt returned the
    /// entry to the parked state without committing it.
    step_resolved: bool,
    /// The step ordinal (op entries) or label-hit ordinal (label
    /// entries) fixed at first resolution, so re-picks after a stall or
    /// preempt keep matching the same fault triggers.
    step_index: u64,
    result: Option<EntryResult>,
}

/// Everything the engine mutates, under one mutex: the scheduler core
/// plus the parking board.
struct FrameCore {
    core: Core,
    slots: Vec<Slot>,
}

/// Outcome of a single-entry commit attempt.
enum Commit {
    /// Entry committed (or its process retired); pick freshly next loop.
    Done,
    /// A stall or preempt returned the entry to the parked state; pick
    /// freshly (the fault just changed what `pick_next` sees).
    Yielded,
    /// A label entry fully resolved: the process keeps the figurative
    /// token (serial `fault_point` charges nothing and does not
    /// re-pick), so its next entry must commit before anyone else runs.
    Sticky,
}

/// One item of a frame round: processor `cpu`'s front process `pid`
/// committing `entry`.
#[derive(Clone, Copy)]
struct RoundItem {
    pid: usize,
    cpu: usize,
    entry: Entry,
}

/// The work one frame round hands to the commit workers: raw pointers
/// into the [`FrameCore`] (valid because the engine holds the state
/// mutex for the round's whole lifetime, so nothing reallocates or
/// aliases them) plus the commit groups.
///
/// Disjointness: each group owns one cell (or is a lone delay), and each
/// [`RoundItem`] appears in exactly one group and names a distinct
/// (pid, cpu) pair — a processor has one front — so no two workers ever
/// form references to the same element.
struct RoundWork {
    cfg: SimConfig,
    cells: *mut CellState,
    processes: *mut Process,
    processors: *mut Processor,
    slots: *mut Slot,
    groups: Vec<Vec<RoundItem>>,
}

impl RoundWork {
    fn empty() -> RoundWork {
        RoundWork {
            cfg: SimConfig::default(),
            cells: std::ptr::null_mut(),
            processes: std::ptr::null_mut(),
            processors: std::ptr::null_mut(),
            slots: std::ptr::null_mut(),
            groups: Vec::new(),
        }
    }

    /// Commits one group sequentially in processor-index order — the
    /// serial commit order for tied entries on the same cell.
    ///
    /// # Safety
    ///
    /// Caller must hold the round's exclusivity guarantees: the engine
    /// keeps the state mutex locked for the round's lifetime, and
    /// `group` is disjoint from every other group being committed.
    unsafe fn commit_group(&self, group: &[RoundItem]) {
        for item in group {
            let process = &mut *self.processes.add(item.pid);
            let processor = &mut *self.processors.add(item.cpu);
            let slot = &mut *self.slots.add(item.pid);
            match item.entry {
                Entry::Mem { cell, op } => {
                    let state = &mut *self.cells.add(cell as usize);
                    let (result, cost) = apply_parts(&self.cfg, state, process, item.cpu, op);
                    charge_parts(&self.cfg, processor, item.pid, cost);
                    slot.result = Some(EntryResult::Value(result.value));
                }
                Entry::Delay(nanos) => {
                    charge_parts(&self.cfg, processor, item.pid, nanos);
                    slot.result = Some(EntryResult::Done);
                }
                Entry::Label(_)
                | Entry::Recovered(_)
                | Entry::Repaired { .. }
                | Entry::Stamp { .. }
                | Entry::Now
                | Entry::Finish => {
                    unreachable!("zero-cost entries never enter a frame round")
                }
            }
        }
    }
}

/// Worker-pool round control: the engine bumps `generation` to publish a
/// round, helpers claim groups off `cursor`, and the engine waits at the
/// frame barrier until every helper has checked back in.
struct RoundCtl {
    generation: u64,
    shutdown: bool,
    /// Helpers still committing the current generation.
    remaining: usize,
}

struct PoolShared {
    ctl: Mutex<RoundCtl>,
    start_cv: Condvar,
    done_cv: Condvar,
    /// The atomic cursor workers claim commit-group indices from.
    cursor: AtomicUsize,
    /// The published round. Written by the engine strictly before the
    /// generation bump and read by helpers strictly after observing it
    /// (and quiesced again before the barrier releases), so the control
    /// mutex provides the happens-before edges.
    work: UnsafeCell<RoundWork>,
}

// Safety: `work` is only written while no helper is inside a round
// (between barriers) and only read between a generation bump and the
// matching check-in; both transitions synchronize through `ctl`. The raw
// pointers inside target disjoint indices per the RoundWork contract.
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn spawn(helpers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            ctl: Mutex::new(RoundCtl {
                generation: 0,
                shutdown: false,
                remaining: 0,
            }),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            work: UnsafeCell::new(RoundWork::empty()),
        });
        let handles = (0..helpers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sim-frame-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn frame worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Runs one frame round: helpers and the calling engine thread claim
    /// groups off the cursor; returns only after every helper has
    /// checked in — the frame barrier.
    fn run_round(&self, work: RoundWork) {
        let helpers = self.handles.len();
        self.shared.cursor.store(0, Ordering::Relaxed);
        // Safety: no helper is in a round (the previous barrier completed
        // before the previous `run_round` returned), so the engine is the
        // sole accessor of `work` right now.
        unsafe { *self.shared.work.get() = work };
        {
            let mut ctl = self.shared.ctl.lock().expect("pool lock");
            ctl.remaining = helpers;
            ctl.generation += 1;
            self.shared.start_cv.notify_all();
        }
        // The engine participates too: claim groups alongside helpers.
        // Safety: between the generation bump and the barrier, `work` is
        // read-only for everyone.
        let work = unsafe { &*self.shared.work.get() };
        loop {
            let group = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if group >= work.groups.len() {
                break;
            }
            unsafe { work.commit_group(&work.groups[group]) };
        }
        let mut ctl = self.shared.ctl.lock().expect("pool lock");
        while ctl.remaining > 0 {
            ctl = self.shared.done_cv.wait(ctl).expect("pool lock");
        }
    }

    fn shutdown(mut self) {
        {
            let mut ctl = self.shared.ctl.lock().expect("pool lock");
            ctl.shutdown = true;
            self.shared.start_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_generation = 0u64;
    loop {
        {
            let mut ctl = shared.ctl.lock().expect("pool lock");
            while ctl.generation == seen_generation && !ctl.shutdown {
                ctl = shared.start_cv.wait(ctl).expect("pool lock");
            }
            if ctl.shutdown {
                return;
            }
            seen_generation = ctl.generation;
        }
        // Safety: the engine published `work` before the generation bump
        // we just observed under the lock, and will not touch it again
        // until after our check-in below.
        let work = unsafe { &*shared.work.get() };
        loop {
            let group = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if group >= work.groups.len() {
                break;
            }
            unsafe { work.commit_group(&work.groups[group]) };
        }
        let mut ctl = shared.ctl.lock().expect("pool lock");
        ctl.remaining -= 1;
        if ctl.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// Shared state of a frame-stepped simulation: the core + parking board
/// under one mutex, a condvar the engine sleeps on while waiting for
/// parks, and one result condvar per process.
pub(crate) struct FrameShared {
    state: Mutex<FrameCore>,
    /// The run's fault schedule (immutable; empty by default). Kept
    /// outside the mutex so `fault_point` can precheck without locking.
    plan: FaultPlan,
    park_cv: Condvar,
    result_cv: Vec<Condvar>,
    /// Total commit workers (engine thread + pool helpers) for frame
    /// rounds.
    workers: usize,
}

impl FrameShared {
    pub fn new(cfg: SimConfig, plan: FaultPlan, workers: usize) -> Self {
        let n = cfg.num_processes();
        for spec in &plan.specs {
            assert!(
                spec.pid < n,
                "fault plan targets pid {} but the simulation has {n} processes",
                spec.pid
            );
        }
        let fault_slots = plan.specs.len();
        FrameShared {
            state: Mutex::new(FrameCore {
                core: Core::new(cfg, fault_slots),
                slots: (0..n).map(|_| Slot::default()).collect(),
            }),
            plan,
            park_cv: Condvar::new(),
            result_cv: (0..n).map(|_| Condvar::new()).collect(),
            workers: workers.clamp(1, 256),
        }
    }

    pub fn config(&self) -> SimConfig {
        self.state.lock().expect("sim lock").core.cfg
    }

    pub fn alloc_cell(&self, init: u64) -> u32 {
        self.state.lock().expect("sim lock").core.alloc_cell(init)
    }

    /// Returns the death-notice cell (allocating it on first use).
    pub fn death_board(&self) -> u32 {
        self.state.lock().expect("sim lock").core.death_board()
    }

    pub fn peek(&self, cell: u32) -> u64 {
        self.state.lock().expect("sim lock").core.peek(cell)
    }

    pub fn poke(&self, cell: u32, value: u64) {
        self.state.lock().expect("sim lock").core.poke(cell, value);
    }

    pub fn snapshot(&self) -> crate::report::SimReport {
        self.state.lock().expect("sim lock").core.snapshot_report()
    }

    // --- Process-side entry points (mirror `SimShared`'s surface). ---

    pub fn mem_op(&self, pid: usize, cell: u32, op: MemOp) -> Result<u64, u64> {
        let mut guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            // Post-mortem access from a killed process's unwind path.
            return guard.core.apply_direct(cell, op);
        }
        match self.park_locked(guard, pid, Entry::Mem { cell, op }) {
            EntryResult::Value(v) => v,
            EntryResult::Killed => std::panic::resume_unwind(Box::new(ProcessKilled)),
            EntryResult::Done => unreachable!("memory entries produce values"),
        }
    }

    pub fn delay(&self, pid: usize, nanos: u64) {
        let guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            return;
        }
        match self.park_locked(guard, pid, Entry::Delay(nanos)) {
            EntryResult::Done => {}
            EntryResult::Killed => std::panic::resume_unwind(Box::new(ProcessKilled)),
            EntryResult::Value(_) => unreachable!("delays produce no value"),
        }
    }

    pub fn fault_point(&self, pid: usize, label: &'static str) {
        if !self.plan.watches_labels(pid) {
            return;
        }
        let guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            return;
        }
        match self.park_locked(guard, pid, Entry::Label(label)) {
            EntryResult::Done => {}
            EntryResult::Killed => std::panic::resume_unwind(Box::new(ProcessKilled)),
            EntryResult::Value(_) => unreachable!("fault points produce no value"),
        }
    }

    /// Records, on behalf of `pid`, that killed process `victim`'s
    /// remaining share has been fully absorbed. Zero-cost, like a fault
    /// point: the engine stamps the recovery and `pid` keeps the token.
    pub fn mark_recovered(&self, pid: usize, victim: usize) {
        let guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            return;
        }
        match self.park_locked(guard, pid, Entry::Recovered(victim)) {
            EntryResult::Done => {}
            EntryResult::Killed => std::panic::resume_unwind(Box::new(ProcessKilled)),
            EntryResult::Value(_) => unreachable!("recovery records produce no value"),
        }
    }

    /// Records, on behalf of `pid`, that dead process `victim`'s lock was
    /// revoked and the torn invariant repaired (outcome label `point`).
    /// Zero-cost and token-keeping, exactly like
    /// [`FrameShared::mark_recovered`].
    pub fn mark_repaired(&self, pid: usize, victim: usize, point: &'static str) {
        let guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            return;
        }
        match self.park_locked(guard, pid, Entry::Repaired { victim, point }) {
            EntryResult::Done => {}
            EntryResult::Killed => std::panic::resume_unwind(Box::new(ProcessKilled)),
            EntryResult::Value(_) => unreachable!("repair records produce no value"),
        }
    }

    /// Records an enqueue-to-dequeue latency sample on behalf of `pid`.
    /// Zero-cost and token-keeping, exactly like
    /// [`FrameShared::mark_recovered`].
    pub fn record_latency(&self, pid: usize, arrival_ns: u64) {
        let guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            return;
        }
        match self.park_locked(guard, pid, Entry::Stamp { arrival_ns }) {
            EntryResult::Done => {}
            EntryResult::Killed => std::panic::resume_unwind(Box::new(ProcessKilled)),
            EntryResult::Value(_) => unreachable!("latency stamps produce no value"),
        }
    }

    /// Reads `pid`'s current virtual time. Zero-cost and token-keeping;
    /// a finished (killed) process reads its clock directly, mirroring
    /// the serial backend's let-finished-pids-through rule.
    pub fn now_ns(&self, pid: usize) -> u64 {
        let guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            return guard.core.clock_of(pid);
        }
        match self.park_locked(guard, pid, Entry::Now) {
            EntryResult::Value(v) => v.expect("clock reads are infallible"),
            EntryResult::Killed => std::panic::resume_unwind(Box::new(ProcessKilled)),
            EntryResult::Done => unreachable!("clock reads produce a value"),
        }
    }

    pub fn finish(&self, pid: usize) {
        let guard = self.state.lock().expect("sim lock");
        if guard.core.processes[pid].finished {
            return;
        }
        match self.park_locked(guard, pid, Entry::Finish) {
            EntryResult::Done => {}
            // Finish entries resolve no faults — the serial backend's
            // `finish` never consults the plan either.
            other => unreachable!("finish entries complete with Done, got {other:?}"),
        }
    }

    /// Parks `entry` for `pid`, wakes the engine, and blocks until the
    /// engine posts the entry's result.
    fn park_locked(
        &self,
        mut guard: MutexGuard<'_, FrameCore>,
        pid: usize,
        entry: Entry,
    ) -> EntryResult {
        let slot = &mut guard.slots[pid];
        debug_assert!(slot.entry.is_none(), "process {pid} double-parked");
        debug_assert!(slot.result.is_none());
        slot.entry = Some(entry);
        slot.step_resolved = false;
        slot.step_index = 0;
        self.park_cv.notify_one();
        loop {
            if let Some(result) = guard.slots[pid].result.take() {
                guard.slots[pid].entry = None;
                return result;
            }
            guard = self.result_cv[pid].wait(guard).expect("sim lock");
        }
    }

    // --- The engine (runs on the coordinator thread). ---

    /// Drives the simulation to completion: commits parked entries in
    /// the serial schedule order (frame rounds where sound, single
    /// steps elsewhere) until every process has retired.
    pub fn drive(&self) {
        // Frame rounds are only attempted when the whole run is known
        // to be free of per-entry side conditions: no faults (label
        // entries, step counting, stalls that bend `pick_next`), no
        // watchdog, no trace (trace order is global), and a nonzero
        // floor cost per memory entry (a zero-cost commit could legally
        // re-enter before its round-mates — DESIGN.md §12).
        let cfg = self.config();
        let sequential = !self.plan.is_empty()
            || cfg.watchdog_ns > 0
            || cfg.trace_capacity > 0
            || cfg.t_local_ns == 0;
        let pool = (!sequential && self.workers > 1).then(|| Pool::spawn(self.workers - 1));

        let mut sticky: Option<usize> = None;
        let mut guard = self.state.lock().expect("sim lock");
        loop {
            if guard.core.live == 0 {
                break;
            }
            if !sequential && sticky.is_none() {
                let (g, round) = self.try_frame_round(guard, pool.as_ref());
                guard = g;
                if let Some(round) = round {
                    for item in &round {
                        self.result_cv[item.pid].notify_one();
                    }
                    continue;
                }
            }
            let pid = match sticky.take() {
                Some(pid) => pid,
                None => guard.core.pick_next(),
            };
            if pid == NOBODY {
                break;
            }
            guard = self.wait_parked(guard, pid);
            match self.commit_one(&mut guard, pid) {
                Commit::Sticky => sticky = Some(pid),
                Commit::Done | Commit::Yielded => {}
            }
        }
        drop(guard);
        if let Some(pool) = pool {
            pool.shutdown();
        }
    }

    /// Attempts one frame round. If at least two processors' fronts are
    /// tied at the minimum clock and every tied entry is committable in
    /// parallel (memory op, or delay with nonzero cost), commits them
    /// all — grouped by cell — and returns the round's items so the
    /// engine can wake their processes. Returns `None` when the round
    /// must degrade to a single serial step (a lone tied front, a
    /// finish, or a zero-cost delay).
    fn try_frame_round<'a>(
        &'a self,
        mut guard: MutexGuard<'a, FrameCore>,
        pool: Option<&Pool>,
    ) -> (MutexGuard<'a, FrameCore>, Option<Vec<RoundItem>>) {
        // Unfaulted runs never set `blocked_until_ns`, so readiness is
        // the processor clock and `pick_next`'s stall handling is a
        // no-op: the tied set below is exactly the serial pick order's
        // next |tied| commits, in ascending cpu, provided every entry
        // costs ≥ 1 (each commit pushes its processor's clock past `m`,
        // so no committed front can be re-picked before the others).
        let Some(m) = guard
            .core
            .processors
            .iter()
            .filter(|p| !p.run_queue.is_empty())
            .map(|p| p.clock_ns)
            .min()
        else {
            return (guard, None);
        };
        let tied: Vec<(usize, usize)> = guard
            .core
            .processors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.clock_ns == m && !p.run_queue.is_empty())
            .map(|(cpu, p)| (cpu, *p.run_queue.front().expect("non-empty")))
            .collect();
        if tied.len() < 2 {
            return (guard, None);
        }
        // Every tied front must be parked before the round can be
        // classified. Host parking order is nondeterministic; the
        // classification (and everything after it) is not.
        loop {
            let all_parked = tied.iter().all(|&(_, pid)| {
                let slot = &guard.slots[pid];
                slot.entry.is_some() && slot.result.is_none()
            });
            if all_parked {
                break;
            }
            guard = self.park_cv.wait(guard).expect("sim lock");
        }
        let mut items = Vec::with_capacity(tied.len());
        for &(cpu, pid) in &tied {
            let entry = guard.slots[pid].entry.expect("parked above");
            match entry {
                Entry::Mem { .. } => {}
                Entry::Delay(nanos) if nanos > 0 => {}
                // A zero-cost entry (finish, delay 0) would leave its
                // processor tied at `m`, letting the process's next
                // entry precede round-mates in serial order: degrade to
                // a single step.
                _ => return (guard, None),
            }
            items.push(RoundItem { pid, cpu, entry });
        }
        // Bucket by cell: same-cell entries do not commute and must
        // commit in cpu order; distinct cells commute and parallelize.
        // `items` is already in ascending cpu order, and the map
        // preserves first-seen order, so grouping is deterministic.
        let mut groups: Vec<Vec<RoundItem>> = Vec::with_capacity(items.len());
        let mut cell_group: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for item in &items {
            match item.entry {
                Entry::Mem { cell, .. } => match cell_group.entry(cell) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        groups[*e.get()].push(*item);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(groups.len());
                        groups.push(vec![*item]);
                    }
                },
                _ => groups.push(vec![*item]),
            }
        }
        let fc = &mut *guard;
        let work = RoundWork {
            cfg: fc.core.cfg,
            cells: fc.core.cells.as_mut_ptr(),
            processes: fc.core.processes.as_mut_ptr(),
            processors: fc.core.processors.as_mut_ptr(),
            slots: fc.slots.as_mut_ptr(),
            groups,
        };
        match pool {
            // Safety (both arms): the engine holds the state mutex
            // across the whole round — every process thread that could
            // touch the core is parked — and the commit groups index
            // disjoint state, so the raw-pointer writes race with
            // nothing. `run_round` does not return until the barrier.
            Some(pool) => pool.run_round(work),
            None => {
                for group in &work.groups {
                    unsafe { work.commit_group(group) };
                }
            }
        }
        (guard, Some(items))
    }

    /// Blocks (releasing the state mutex) until `pid` has parked its
    /// next entry.
    fn wait_parked<'a>(
        &'a self,
        mut guard: MutexGuard<'a, FrameCore>,
        pid: usize,
    ) -> MutexGuard<'a, FrameCore> {
        loop {
            let slot = &guard.slots[pid];
            if slot.entry.is_some() && slot.result.is_none() {
                return guard;
            }
            guard = self.park_cv.wait(guard).expect("sim lock");
        }
    }

    /// Commits `pid`'s parked entry through the full serial logic:
    /// watchdog, fault triggers, cost model, scheduling side effects.
    fn commit_one(&self, guard: &mut MutexGuard<'_, FrameCore>, pid: usize) -> Commit {
        let fc = &mut **guard;
        let entry = fc.slots[pid].entry.expect("entry parked");
        match entry {
            Entry::Finish => {
                fc.core.remove_process(pid);
                self.post(fc, pid, EntryResult::Done);
                Commit::Done
            }
            Entry::Mem { .. } | Entry::Delay(_) => {
                // Once-per-entry resolution — the serial backend's
                // `resolve_step_faults`, split so a stall/preempt
                // re-pick does not double-check the watchdog or
                // double-advance the step counter.
                if !fc.slots[pid].step_resolved {
                    let watchdog = fc.core.cfg.watchdog_ns;
                    if watchdog > 0 {
                        let cpu = fc.core.processes[pid].cpu;
                        if fc.core.processors[cpu].clock_ns >= watchdog {
                            fc.core.note_blocked(pid);
                            return self.kill_parked(fc, pid);
                        }
                    }
                    fc.slots[pid].step_resolved = true;
                    if self.plan.watches(pid) {
                        fc.slots[pid].step_index = fc.core.processes[pid].steps;
                        fc.core.processes[pid].steps += 1;
                    }
                }
                // One fault per pick: after a stall/preempt the engine
                // re-picks and re-enters here, which takes the next
                // matching fault — the serial backend's
                // yield-inside-the-while-loop, unrolled.
                if self.plan.watches(pid) {
                    let step = fc.slots[pid].step_index;
                    if let Some(action) = take_matching_fault(
                        &self.plan,
                        &mut fc.core.fault_fired,
                        pid,
                        |t| matches!(t, FaultTrigger::Op(n) if *n == step),
                    ) {
                        return self.apply_parked_fault(fc, pid, action);
                    }
                }
                match entry {
                    Entry::Mem { cell, op } => {
                        let (result, cost) = fc.core.apply(pid, cell, op);
                        fc.core.charge(pid, cost);
                        self.post(fc, pid, EntryResult::Value(result.value));
                    }
                    Entry::Delay(nanos) => {
                        fc.core.charge(pid, nanos);
                        self.post(fc, pid, EntryResult::Done);
                    }
                    _ => unreachable!(),
                }
                Commit::Done
            }
            Entry::Label(label) => {
                if !fc.slots[pid].step_resolved {
                    fc.slots[pid].step_index = fc.core.next_label_hit(pid, label);
                    fc.slots[pid].step_resolved = true;
                }
                let hit = fc.slots[pid].step_index;
                if let Some(action) =
                    take_matching_fault(&self.plan, &mut fc.core.fault_fired, pid, |t| {
                        matches!(t, FaultTrigger::Label { label: l, occurrence }
                                 if *l == label && *occurrence == hit)
                    })
                {
                    return self.apply_parked_fault(fc, pid, action);
                }
                // The fault point itself is free: no charge, and the
                // process keeps the token (serial `fault_point` returns
                // without re-picking).
                self.post(fc, pid, EntryResult::Done);
                Commit::Sticky
            }
            Entry::Recovered(victim) => {
                // Free and token-keeping, exactly like the serial
                // `mark_recovered`: the catch-up work was already
                // charged op by op.
                fc.core.note_recovery(victim, pid);
                self.post(fc, pid, EntryResult::Done);
                Commit::Sticky
            }
            Entry::Repaired { victim, point } => {
                // Free and token-keeping, exactly like the serial
                // `mark_repaired`: the repair's memory traffic was
                // already charged op by op.
                fc.core.note_repair(victim, pid, point);
                self.post(fc, pid, EntryResult::Done);
                Commit::Sticky
            }
            Entry::Stamp { arrival_ns } => {
                // Free and token-keeping, exactly like the serial
                // `record_latency`: the dequeue that surfaced the item
                // was already charged.
                fc.core.note_latency(pid, arrival_ns);
                self.post(fc, pid, EntryResult::Done);
                Commit::Sticky
            }
            Entry::Now => {
                // Free and token-keeping, exactly like the serial
                // `now_ns`: a clock read touches no shared memory.
                let now = fc.core.clock_of(pid);
                self.post(fc, pid, EntryResult::Value(Ok(now)));
                Commit::Sticky
            }
        }
    }

    /// Applies one fired fault to `pid` — the engine-side mirror of the
    /// serial `apply_fault`. Stall and preempt leave the entry parked
    /// for a later re-pick; kill retires the process.
    fn apply_parked_fault(&self, fc: &mut FrameCore, pid: usize, action: FaultAction) -> Commit {
        match action {
            FaultAction::Kill => {
                fc.core.killed.push(pid);
                fc.core.note_death(pid);
                self.kill_parked(fc, pid)
            }
            FaultAction::Stall { duration_ns } => {
                fc.core.stalls_injected += 1;
                let cpu = fc.core.processes[pid].cpu;
                let until = fc.core.processors[cpu].clock_ns.saturating_add(duration_ns);
                fc.core.processes[pid].blocked_until_ns = until;
                Commit::Yielded
            }
            FaultAction::Preempt => {
                fc.core.preempts_injected += 1;
                let cpu = fc.core.processes[pid].cpu;
                let ctx = fc.core.cfg.ctx_switch_ns;
                let base = fc.core.cfg.quantum_ns;
                let processor = &mut fc.core.processors[cpu];
                processor.preemptions += 1;
                if processor.run_queue.len() > 1 {
                    let front = processor.run_queue.pop_front().expect("non-empty");
                    debug_assert_eq!(front, pid);
                    processor.run_queue.push_back(front);
                }
                processor.clock_ns += ctx;
                processor.quantum_left_ns = processor.next_quantum(base);
                Commit::Yielded
            }
        }
    }

    /// Retires `pid` right now (fault kill or watchdog) and posts the
    /// kill; the victim's thread unwinds when it reads the result.
    fn kill_parked(&self, fc: &mut FrameCore, pid: usize) -> Commit {
        fc.core.remove_process(pid);
        self.post(fc, pid, EntryResult::Killed);
        Commit::Done
    }

    fn post(&self, fc: &mut FrameCore, pid: usize, result: EntryResult) {
        fc.slots[pid].result = Some(result);
        self.result_cv[pid].notify_one();
    }
}
