//! Statistics produced by a simulation run.

/// What a traced operation did (see [`TraceEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Atomic load.
    Load,
    /// Atomic store.
    Store,
    /// Compare-and-swap; the flag records whether it succeeded.
    CompareExchange {
        /// Whether the CAS installed its new value.
        success: bool,
    },
    /// Atomic swap (`fetch_and_store`).
    Swap,
    /// Atomic fetch-and-add.
    FetchAdd,
}

/// One recorded shared-memory operation (when
/// [`crate::SimConfig::trace_capacity`] is non-zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the operation took effect (the issuing
    /// processor's clock *before* the operation's cost).
    pub at_ns: u64,
    /// The process that issued it.
    pub pid: usize,
    /// The processor it ran on.
    pub processor: usize,
    /// The cell id (allocation order).
    pub cell: u32,
    /// Operation kind and outcome.
    pub kind: TraceKind,
}

/// Per-process statistics within a [`SimReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessReport {
    /// The process id.
    pub pid: usize,
    /// The processor the process ran on.
    pub processor: usize,
    /// Shared-memory operations executed.
    pub ops: u64,
    /// Operations that hit in the processor's cache.
    pub cache_hits: u64,
    /// Operations that missed.
    pub cache_misses: u64,
    /// Failed `compare_exchange` operations.
    pub cas_failures: u64,
    /// Processor clock when the process retired — by finishing its body,
    /// by a kill fault, or by the watchdog. The maximum over surviving
    /// processes is the run's completion latency under faults.
    pub finished_at_ns: u64,
}

/// One completed recovery handoff: a survivor absorbed the remaining
/// work share of a process the fault plan killed (see
/// [`crate::SimPlatform::mark_recovered`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The killed process whose share was absorbed.
    pub victim: usize,
    /// The survivor that absorbed it.
    pub by: usize,
    /// The victim's processor clock at the kill.
    pub killed_at_ns: u64,
    /// The survivor's processor clock when it declared the share
    /// absorbed.
    pub recovered_at_ns: u64,
}

impl RecoveryReport {
    /// Virtual time from the kill to the survivor absorbing the victim's
    /// share — the run's **time-to-recover** for this victim.
    pub fn time_to_recover_ns(&self) -> u64 {
        self.recovered_at_ns.saturating_sub(self.killed_at_ns)
    }
}

/// One completed lock revocation + invariant repair: a waiter found the
/// lock (or critical window) held by a dead process, seized it, and
/// restored the structure's invariant (see
/// [`crate::SimPlatform::mark_repaired`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairReport {
    /// The dead process whose torn state was repaired.
    pub victim: usize,
    /// The survivor that performed the repair.
    pub by: usize,
    /// What the repair decided, as a static label — e.g.
    /// `"single-lock:repair:enq-completed"` when the victim's half-done
    /// enqueue was finished on its behalf, or `...:enq-discarded` when it
    /// was rolled back.
    pub point: &'static str,
    /// The victim's processor clock at the kill.
    pub killed_at_ns: u64,
    /// The repairer's processor clock when the invariant was restored.
    pub repaired_at_ns: u64,
}

impl RepairReport {
    /// Virtual time from the kill to the invariant being restored — the
    /// run's **time-to-repair** for this victim.
    pub fn time_to_repair_ns(&self) -> u64 {
        self.repaired_at_ns.saturating_sub(self.killed_at_ns)
    }
}

/// One enqueue-to-dequeue latency sample: a consumer observed an item
/// whose arrival (enqueue-schedule) time was stamped into its value, and
/// recorded the gap to its own current virtual time (see
/// [`crate::SimPlatform`]'s `record_latency`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySample {
    /// The process that consumed the item (and recorded the sample).
    pub pid: usize,
    /// The item's virtual arrival time, as stamped by its producer.
    pub arrival_ns: u64,
    /// The consumer's processor clock when it recorded the sample.
    pub completed_at_ns: u64,
}

impl LatencySample {
    /// Virtual enqueue-to-dequeue latency of this item (saturating: an
    /// item consumed "before" its scheduled arrival — possible when a
    /// producer ran ahead of its open-loop schedule — reads as zero).
    pub fn latency_ns(&self) -> u64 {
        self.completed_at_ns.saturating_sub(self.arrival_ns)
    }
}

/// Why the virtual-time watchdog judged a process permanently blocked
/// (parallel to [`SimReport::blocked`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockedKind {
    /// The process starved while at least one peer lay dead — the
    /// signature of waiting on a resource whose holder was killed. This
    /// is the *repairable* failure mode: a revocable lock would have
    /// seized the dead holder's lock instead of spinning forever.
    DeadHolder,
    /// The process starved with every peer still alive: genuine
    /// contention or livelock, not a crashed holder — revocation would
    /// not have helped.
    LiveContention,
}

/// Aggregate results of one [`crate::Simulation::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Virtual elapsed time: the maximum processor clock at completion.
    pub elapsed_ns: u64,
    /// Final clock of each simulated processor.
    pub per_processor_ns: Vec<u64>,
    /// Total shared-memory operations executed.
    pub total_ops: u64,
    /// Operations that hit in the issuing processor's cache.
    pub cache_hits: u64,
    /// Operations that missed (including invalidating writes).
    pub cache_misses: u64,
    /// `compare_exchange` operations that failed.
    pub cas_failures: u64,
    /// Quantum-expiry preemptions across all processors.
    pub preemptions: u64,
    /// Per-process breakdowns (indexed by pid).
    pub per_process: Vec<ProcessReport>,
    /// The first [`crate::SimConfig::trace_capacity`] operations, in
    /// virtual-time order (empty when tracing is disabled).
    pub trace: Vec<TraceEvent>,
    /// Pids killed by the fault plan, in kill order (empty unfaulted).
    pub killed: Vec<usize>,
    /// Pids the virtual-time watchdog judged permanently blocked. For a
    /// lock-based queue whose lock holder died, this is the *expected*
    /// outcome; for a non-blocking queue it is a progress-failure finding.
    pub blocked: Vec<usize>,
    /// Why each watchdog-flagged pid was blocked, parallel to
    /// [`SimReport::blocked`] (same length, same order).
    pub blocked_kinds: Vec<BlockedKind>,
    /// Stall faults injected by the plan.
    pub stalls_injected: u64,
    /// Preemption faults injected by the plan (also counted in
    /// [`SimReport::preemptions`]).
    pub preempts_injected: u64,
    /// Completed recovery handoffs, in completion order (empty unless
    /// the run's processes called
    /// [`crate::SimPlatform::mark_recovered`]).
    pub recoveries: Vec<RecoveryReport>,
    /// Completed lock revocation + invariant repairs, in completion order
    /// (empty unless the run's processes called
    /// [`crate::SimPlatform::mark_repaired`]).
    pub repairs: Vec<RepairReport>,
    /// Enqueue-to-dequeue latency samples, in completion order (empty
    /// unless the run's processes recorded them via the platform's
    /// `record_latency`).
    pub latencies: Vec<LatencySample>,
}

impl SimReport {
    /// Fraction of memory operations that missed, in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let touched = self.cache_hits + self.cache_misses;
        if touched == 0 {
            0.0
        } else {
            self.cache_misses as f64 / touched as f64
        }
    }

    /// Virtual elapsed time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }

    /// Latest retirement time among processes that completed normally
    /// (excluding killed and watchdog-blocked pids): the run's maximum
    /// completion latency under faults.
    pub fn max_completion_ns(&self) -> u64 {
        self.per_process
            .iter()
            .filter(|p| !self.killed.contains(&p.pid) && !self.blocked.contains(&p.pid))
            .map(|p| p.finished_at_ns)
            .max()
            .unwrap_or(0)
    }

    /// True when every process other than the deliberately killed ones
    /// retired normally — no survivor tripped the watchdog. This is the
    /// paper's non-blocking progress property under a fault plan.
    pub fn survivors_completed(&self) -> bool {
        self.blocked.is_empty()
    }

    /// The slowest recovery's [`RecoveryReport::time_to_recover_ns`], or
    /// `None` when no recovery was recorded.
    pub fn time_to_recover_ns(&self) -> Option<u64> {
        self.recoveries
            .iter()
            .map(RecoveryReport::time_to_recover_ns)
            .max()
    }

    /// The slowest repair's [`RepairReport::time_to_repair_ns`], or
    /// `None` when no repair was recorded.
    pub fn time_to_repair_ns(&self) -> Option<u64> {
        self.repairs
            .iter()
            .map(RepairReport::time_to_repair_ns)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(hits: u64, misses: u64) -> SimReport {
        SimReport {
            elapsed_ns: 1_500_000_000,
            per_processor_ns: vec![1_500_000_000],
            total_ops: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            cas_failures: 0,
            preemptions: 0,
            per_process: Vec::new(),
            trace: Vec::new(),
            killed: Vec::new(),
            blocked: Vec::new(),
            blocked_kinds: Vec::new(),
            stalls_injected: 0,
            preempts_injected: 0,
            recoveries: Vec::new(),
            repairs: Vec::new(),
            latencies: Vec::new(),
        }
    }

    #[test]
    fn miss_rate_is_fraction() {
        assert_eq!(report(3, 1).miss_rate(), 0.25);
        assert_eq!(report(0, 0).miss_rate(), 0.0);
        assert_eq!(report(0, 5).miss_rate(), 1.0);
    }

    #[test]
    fn elapsed_secs_converts() {
        assert!((report(1, 0).elapsed_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn time_to_recover_takes_the_slowest_handoff() {
        let mut r = report(1, 0);
        assert_eq!(r.time_to_recover_ns(), None);
        r.recoveries.push(RecoveryReport {
            victim: 0,
            by: 1,
            killed_at_ns: 100,
            recovered_at_ns: 400,
        });
        r.recoveries.push(RecoveryReport {
            victim: 2,
            by: 1,
            killed_at_ns: 50,
            recovered_at_ns: 950,
        });
        assert_eq!(r.time_to_recover_ns(), Some(900));
        assert_eq!(r.recoveries[0].time_to_recover_ns(), 300);
    }

    #[test]
    fn latency_sample_saturates_on_early_consumption() {
        let on_time = LatencySample {
            pid: 1,
            arrival_ns: 100,
            completed_at_ns: 350,
        };
        assert_eq!(on_time.latency_ns(), 250);
        let early = LatencySample {
            pid: 1,
            arrival_ns: 400,
            completed_at_ns: 350,
        };
        assert_eq!(early.latency_ns(), 0);
    }

    #[test]
    fn time_to_repair_takes_the_slowest_repair() {
        let mut r = report(1, 0);
        assert_eq!(r.time_to_repair_ns(), None);
        r.repairs.push(RepairReport {
            victim: 0,
            by: 1,
            point: "single-lock:repair:enq-completed",
            killed_at_ns: 100,
            repaired_at_ns: 350,
        });
        r.repairs.push(RepairReport {
            victim: 2,
            by: 1,
            point: "two-lock:repair:deq-rolled-back",
            killed_at_ns: 200,
            repaired_at_ns: 900,
        });
        assert_eq!(r.time_to_repair_ns(), Some(700));
        assert_eq!(r.repairs[0].time_to_repair_ns(), 250);
    }
}
