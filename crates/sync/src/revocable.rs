//! [`RevocableLock`]: a spin lock whose holder can be declared dead and
//! dispossessed.
//!
//! The paper's blocking queues wedge forever when a lock holder dies
//! (DESIGN.md §11): the lock word stays set and every waiter spins until
//! the watchdog retires it. A revocable lock closes that hole by
//! recording *who* holds the lock inside the lock word itself. A waiter
//! that has spun past a bounded probe budget consults
//! [`Platform::dead_peers`] — the simulator's death board, or the empty
//! set natively — and, if the recorded holder is provably dead, CASes
//! the word from `held(dead)` to `repairing(self)`. The successful
//! revoker enters the critical section knowing the invariant may be
//! torn mid-operation; it runs the owning structure's repair routine
//! before doing anything else (see the `Repairable*` queue variants in
//! `msq-baselines`/`msq-core`).
//!
//! Safety of the `held(dead) → repairing(self)` transition:
//!
//! * The holder id is written *atomically with* the acquisition (one
//!   CAS installs both), so the word never names a stale holder.
//! * Death notices are monotonic — a dead process never runs again —
//!   so a waiter that observes `held(p)` with `p` on the death board
//!   knows `p` died inside the critical section and cannot race the
//!   revocation.
//! * Competing revokers CAS against the same observed word; exactly one
//!   wins, and the losers re-observe `repairing(winner)` and go back to
//!   spinning (the winner is alive and will unlock).
//! * A revoker that *itself* dies mid-repair leaves
//!   `repairing(dead)` — which names a dead holder and is revocable by
//!   the same rule, so repair responsibility cannot be lost.

use msq_platform::{AtomicWord, Backoff, BackoffConfig, Platform};

/// Lock-word state tags (upper byte; the low 56 bits carry the holder
/// id). `FREE` is the whole word, so an unlocked lock is all-zeros —
/// the same resting state as every other lock in this crate.
const FREE: u64 = 0;
const HELD_TAG: u64 = 1 << 56;
const REPAIRING_TAG: u64 = 2 << 56;
const ID_MASK: u64 = (1 << 56) - 1;

/// How a [`RevocableLock::lock`] call obtained the lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquired {
    /// The lock was taken from the free state: the protected invariant
    /// is intact.
    Clean,
    /// The lock was *revoked* from the named dead holder: the caller
    /// must repair the protected structure before relying on its
    /// invariant (the victim died somewhere inside the critical
    /// section).
    Repairing {
        /// The dead process the lock was seized from.
        victim: usize,
    },
}

/// A mutual-exclusion spin lock that records its holder's identity and
/// lets waiters revoke it from a provably dead holder.
///
/// The holder id is [`Platform::affinity_hint`] — the simulated process
/// id under `msq-sim`, a stable per-thread token natively. Revocation
/// consults [`Platform::dead_peers`], which natively reports nobody
/// dead: on real hardware this lock degrades to a plain CAS spin lock
/// with an inert holder field.
pub struct RevocableLock<P: Platform> {
    word: P::Cell,
    backoff: BackoffConfig,
    /// Failed spin probes between consultations of the death board.
    probe_budget: u32,
}

impl<P: Platform> RevocableLock<P> {
    /// Failed probes a waiter tolerates before suspecting the holder.
    /// Small enough that a dead holder is detected within a handful of
    /// cache misses, large enough that the death board is not hammered
    /// on ordinary contention.
    pub const DEFAULT_PROBE_BUDGET: u32 = 8;

    /// Creates an unlocked lock with default backoff and probe budget.
    pub fn new(platform: &P) -> Self {
        Self::with_backoff(platform, BackoffConfig::DEFAULT)
    }

    /// Creates an unlocked lock with explicit backoff parameters.
    pub fn with_backoff(platform: &P, backoff: BackoffConfig) -> Self {
        RevocableLock {
            word: platform.alloc_cell(FREE),
            backoff,
            probe_budget: Self::DEFAULT_PROBE_BUDGET,
        }
    }

    /// Acquires the lock, spinning until it is free — or until its
    /// recorded holder is found dead, in which case the lock is seized
    /// and [`Acquired::Repairing`] names the victim whose torn critical
    /// section the caller must repair.
    pub fn lock(&self, platform: &P) -> Acquired {
        let me = HELD_TAG | (platform.affinity_hint() as u64 & ID_MASK);
        let mut backoff = Backoff::new(self.backoff);
        let mut probes = 0u32;
        loop {
            let observed = self.word.load();
            if observed == FREE {
                if self.word.cas(FREE, me) {
                    return Acquired::Clean;
                }
                backoff.spin(platform);
                continue;
            }
            probes += 1;
            if probes >= self.probe_budget {
                probes = 0;
                let holder = (observed & ID_MASK) as usize;
                if holder < 64 && platform.dead_peers() & (1 << holder) != 0 {
                    // The holder (or a failed repairer) died inside the
                    // critical section. Seize the lock; on success the
                    // caller owns both the lock and the repair duty.
                    if self.word.cas(observed, REPAIRING_TAG | (me & ID_MASK)) {
                        return Acquired::Repairing { victim: holder };
                    }
                    // Lost the revocation race (or the word moved on);
                    // re-observe without burning backoff.
                    continue;
                }
            }
            backoff.spin(platform);
        }
    }

    /// Releases the lock (valid from both the held and the repairing
    /// state — a completed repair releases like any critical section).
    pub fn unlock(&self, _platform: &P) {
        self.word.store(FREE);
    }

    /// Attempts a clean acquisition without spinning; `true` on
    /// success. Never revokes.
    pub fn try_lock(&self, platform: &P) -> bool {
        let me = HELD_TAG | (platform.affinity_hint() as u64 & ID_MASK);
        self.word.cas(FREE, me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use msq_sim::{FaultPlan, SimConfig, Simulation};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn excludes_like_a_plain_spin_lock_natively() {
        let platform = NativePlatform::new();
        let lock = Arc::new(RevocableLock::new(&platform));
        let counter = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let in_cs = Arc::clone(&in_cs);
            handles.push(std::thread::spawn(move || {
                let platform = NativePlatform::new();
                for _ in 0..2_000 {
                    assert_eq!(
                        lock.lock(&platform),
                        Acquired::Clean,
                        "nobody dies natively"
                    );
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst); // non-atomic RMW on purpose
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    lock.unlock(&platform);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8_000);
    }

    #[test]
    fn try_lock_succeeds_only_when_free() {
        let p = NativePlatform::new();
        let lock = RevocableLock::new(&p);
        assert!(lock.try_lock(&p));
        assert!(!lock.try_lock(&p));
        lock.unlock(&p);
        assert!(lock.try_lock(&p));
    }

    /// The headline property: a holder killed inside its critical
    /// section is detected via the death board, its lock revoked, and
    /// the revoker — not the watchdog — ends the stall. The repair
    /// stamp lands in the report.
    #[test]
    fn dead_holders_lock_is_revoked_by_a_waiter() {
        let sim = Simulation::with_faults(
            SimConfig {
                processors: 3,
                watchdog_ns: 400_000_000,
                ..SimConfig::default()
            },
            FaultPlan::new().kill_at_label(0, "revocable:test:cs", 0),
        );
        let platform = sim.platform();
        // Untimed setup: fix the death board's cell id before the run.
        let _ = platform.death_board();
        let lock = Arc::new(RevocableLock::new(&platform));
        let shared = Arc::new(platform.alloc_cell(0));
        let revocations = Arc::new(std::sync::Mutex::new(Vec::new()));
        let report = sim.run({
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            let revocations = Arc::clone(&revocations);
            move |info| {
                for _ in 0..10u64 {
                    match lock.lock(&platform) {
                        Acquired::Clean => {}
                        Acquired::Repairing { victim } => {
                            revocations.lock().unwrap().push((info.pid, victim));
                            platform.mark_repaired(victim, "revocable:test:repaired");
                        }
                    }
                    let v = shared.load();
                    platform.fault_point("revocable:test:cs");
                    shared.store(v + 1);
                    lock.unlock(&platform);
                }
            }
        });
        assert_eq!(report.killed, vec![0], "the in-lock kill fired");
        assert!(
            report.blocked.is_empty(),
            "revocation must beat the watchdog: {:?}",
            report.blocked
        );
        let revocations = revocations.lock().unwrap();
        assert_eq!(
            revocations.len(),
            1,
            "exactly one waiter wins the revocation: {revocations:?}"
        );
        assert_eq!(revocations[0].1, 0, "the victim is the dead holder");
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.repairs[0].victim, 0);
        assert_eq!(report.repairs[0].point, "revocable:test:repaired");
        assert!(report.repairs[0].time_to_repair_ns() > 0);
        // The victim died between its load and store: its increment is
        // lost, every survivor increment landed.
        assert_eq!(shared.load(), 2 * 10, "both survivors ran all 10 CSes");
    }

    /// Without a death, the revocation path is never taken and the lock
    /// behaves exactly like a spin lock under simulated contention.
    #[test]
    fn no_death_means_no_revocation_under_simulation() {
        let sim = Simulation::new(SimConfig {
            processors: 3,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let _ = platform.death_board();
        let lock = Arc::new(RevocableLock::new(&platform));
        let shared = Arc::new(platform.alloc_cell(0));
        sim.run({
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            move |_| {
                for _ in 0..50 {
                    assert_eq!(lock.lock(&platform), Acquired::Clean);
                    let v = shared.load();
                    shared.store(v + 1);
                    lock.unlock(&platform);
                }
            }
        });
        assert_eq!(shared.load(), 3 * 50, "mutual exclusion held");
    }
}
