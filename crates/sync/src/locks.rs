//! Lock implementations.

use msq_platform::{AtomicWord, Backoff, BackoffConfig, Platform};

/// A mutual-exclusion spin lock over a [`Platform`].
///
/// `lock`/`unlock` take the platform so delays (backoff) are charged to the
/// calling simulated process. These are *raw* locks: the caller is
/// responsible for pairing `lock` with `unlock` (the queue algorithms use
/// them in strict bracketed fashion, exactly like the paper's pseudo-code).
pub trait RawLock<P: Platform>: Send + Sync {
    /// Acquires the lock, spinning until available.
    fn lock(&self, platform: &P);

    /// Releases the lock.
    ///
    /// Calling `unlock` on a lock the caller does not hold is a logic error
    /// (not memory-unsafe for these word-based locks, but it breaks mutual
    /// exclusion).
    fn unlock(&self, platform: &P);

    /// Attempts to acquire without spinning; `true` on success.
    fn try_lock(&self, platform: &P) -> bool;
}

/// Plain `test_and_set` spin lock with bounded exponential backoff.
///
/// Every acquisition attempt is a read-modify-write, so under contention
/// the lock word ping-pongs between caches — the behaviour that makes bare
/// TAS locks scale poorly and motivates [`TtasLock`].
pub struct TasLock<P: Platform> {
    word: P::Cell,
    backoff: BackoffConfig,
}

impl<P: Platform> TasLock<P> {
    /// Creates an unlocked lock with default backoff.
    pub fn new(platform: &P) -> Self {
        Self::with_backoff(platform, BackoffConfig::DEFAULT)
    }

    /// Creates an unlocked lock with explicit backoff parameters.
    pub fn with_backoff(platform: &P, backoff: BackoffConfig) -> Self {
        TasLock {
            word: platform.alloc_cell(0),
            backoff,
        }
    }
}

impl<P: Platform> RawLock<P> for TasLock<P> {
    fn lock(&self, platform: &P) {
        let mut backoff = Backoff::new(self.backoff);
        while self.word.test_and_set() {
            backoff.spin(platform);
        }
    }

    fn unlock(&self, _platform: &P) {
        self.word.store(0);
    }

    fn try_lock(&self, _platform: &P) -> bool {
        !self.word.test_and_set()
    }
}

/// Test-and-`test_and_set` lock with bounded exponential backoff — the
/// lock the paper uses for both lock-based queue algorithms.
///
/// Waiters spin on an ordinary read (which stays in their cache until the
/// holder's release invalidates it) and only attempt the atomic
/// `test_and_set` when the lock looks free.
pub struct TtasLock<P: Platform> {
    word: P::Cell,
    backoff: BackoffConfig,
}

impl<P: Platform> TtasLock<P> {
    /// Creates an unlocked lock with default backoff.
    pub fn new(platform: &P) -> Self {
        Self::with_backoff(platform, BackoffConfig::DEFAULT)
    }

    /// Creates an unlocked lock with explicit backoff parameters (the
    /// backoff ablation benches pass [`BackoffConfig::DISABLED`]).
    pub fn with_backoff(platform: &P, backoff: BackoffConfig) -> Self {
        TtasLock {
            word: platform.alloc_cell(0),
            backoff,
        }
    }
}

impl<P: Platform> RawLock<P> for TtasLock<P> {
    fn lock(&self, platform: &P) {
        let mut backoff = Backoff::new(self.backoff);
        loop {
            // Wait until the lock at least looks free (read-only spin).
            while self.word.load() != 0 {
                backoff.spin(platform);
            }
            if !self.word.test_and_set() {
                return;
            }
            backoff.spin(platform);
        }
    }

    fn unlock(&self, _platform: &P) {
        self.word.store(0);
    }

    fn try_lock(&self, _platform: &P) -> bool {
        self.word.load() == 0 && !self.word.test_and_set()
    }
}

/// FIFO ticket lock built on `fetch_and_increment` (extension; not used by
/// the paper's experiments but handy for ablations: fairness at the price
/// of preemption-sensitivity even worse than TTAS).
pub struct TicketLock<P: Platform> {
    next_ticket: P::Cell,
    now_serving: P::Cell,
    backoff: BackoffConfig,
}

impl<P: Platform> TicketLock<P> {
    /// Creates an unlocked lock with default backoff.
    pub fn new(platform: &P) -> Self {
        Self::with_backoff(platform, BackoffConfig::DEFAULT)
    }

    /// Creates an unlocked lock with explicit backoff parameters.
    pub fn with_backoff(platform: &P, backoff: BackoffConfig) -> Self {
        TicketLock {
            next_ticket: platform.alloc_cell(0),
            now_serving: platform.alloc_cell(0),
            backoff,
        }
    }
}

impl<P: Platform> RawLock<P> for TicketLock<P> {
    fn lock(&self, platform: &P) {
        let my_ticket = self.next_ticket.fetch_add(1);
        let mut backoff = Backoff::new(self.backoff);
        while self.now_serving.load() != my_ticket {
            backoff.spin(platform);
        }
    }

    fn unlock(&self, _platform: &P) {
        self.now_serving.fetch_add(1);
    }

    fn try_lock(&self, _platform: &P) -> bool {
        let serving = self.now_serving.load();
        // Claim the next ticket only if it would be served immediately.
        self.next_ticket.cas(serving, serving.wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn exercise_mutual_exclusion<L, F>(make: F)
    where
        L: RawLock<NativePlatform> + 'static,
        F: FnOnce(&NativePlatform) -> L,
    {
        let platform = NativePlatform::new();
        let lock = Arc::new(make(&platform));
        let counter = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let in_cs = Arc::clone(&in_cs);
            handles.push(std::thread::spawn(move || {
                let platform = NativePlatform::new();
                for _ in 0..2_000 {
                    lock.lock(&platform);
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst); // non-atomic RMW on purpose
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    lock.unlock(&platform);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8_000);
    }

    #[test]
    fn tas_lock_excludes() {
        exercise_mutual_exclusion(TasLock::new);
    }

    #[test]
    fn ttas_lock_excludes() {
        exercise_mutual_exclusion(TtasLock::new);
    }

    #[test]
    fn ticket_lock_excludes() {
        exercise_mutual_exclusion(TicketLock::new);
    }

    #[test]
    fn try_lock_succeeds_only_when_free() {
        let p = NativePlatform::new();
        let tas = TasLock::new(&p);
        assert!(tas.try_lock(&p));
        assert!(!tas.try_lock(&p));
        tas.unlock(&p);
        assert!(tas.try_lock(&p));

        let ttas = TtasLock::new(&p);
        assert!(ttas.try_lock(&p));
        assert!(!ttas.try_lock(&p));
        ttas.unlock(&p);
        assert!(ttas.try_lock(&p));

        let ticket = TicketLock::new(&p);
        assert!(ticket.try_lock(&p));
        assert!(!ticket.try_lock(&p));
        ticket.unlock(&p);
        assert!(ticket.try_lock(&p));
    }

    #[test]
    fn ticket_lock_is_fifo_under_simulation() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 4,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let lock = Arc::new(TicketLock::new(&platform));
        let order = Arc::new(platform.alloc_cell(0));
        let grants = Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.run({
            let grants = Arc::clone(&grants);
            move |info| {
                for _ in 0..5 {
                    lock.lock(&platform);
                    let seq = order.fetch_add(1);
                    grants.lock().unwrap().push((seq, info.pid));
                    lock.unlock(&platform);
                }
            }
        });
        let mut grants = Arc::try_unwrap(grants).unwrap().into_inner().unwrap();
        grants.sort_unstable();
        assert_eq!(grants.len(), 20);
        // Every process got all 5 of its acquisitions.
        for pid in 0..4 {
            assert_eq!(grants.iter().filter(|&&(_, p)| p == pid).count(), 5);
        }
    }

    #[test]
    fn locks_work_under_simulated_contention() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 3,
            processes_per_processor: 2,
            quantum_ns: 50_000,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let lock = Arc::new(TtasLock::new(&platform));
        let shared = Arc::new(platform.alloc_cell(0));
        let report = sim.run({
            let shared = Arc::clone(&shared);
            let lock = Arc::clone(&lock);
            let platform = platform.clone();
            move |_| {
                for _ in 0..50 {
                    lock.lock(&platform);
                    // Non-atomic read-modify-write under the lock.
                    let v = shared.load();
                    shared.store(v + 1);
                    lock.unlock(&platform);
                }
            }
        });
        assert_eq!(shared.load(), 6 * 50, "mutual exclusion under preemption");
        assert!(report.preemptions > 0 || report.elapsed_ns > 0);
    }
}
