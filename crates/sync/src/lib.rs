//! Spin locks for the lock-based queue algorithms.
//!
//! The paper's lock-based contenders (the single-lock queue and the new
//! two-lock queue) use "test-and-test_and_set locks with bounded
//! exponential backoff"; this crate provides that lock ([`TtasLock`]),
//! plus a plain [`TasLock`] (the machines-with-only-`test_and_set`
//! motivation for the two-lock algorithm) and a [`TicketLock`] (FIFO
//! extension, useful in the ablation benches). All are expressed over
//! [`msq_platform::Platform`] so they run natively and under simulation.
//!
//! # Example
//!
//! ```
//! use msq_platform::NativePlatform;
//! use msq_sync::{RawLock, TtasLock};
//!
//! let platform = NativePlatform::new();
//! let lock = TtasLock::new(&platform);
//! lock.lock(&platform);
//! // ... critical section ...
//! lock.unlock(&platform);
//! ```

#![warn(missing_docs)]

mod locks;
mod qlocks;
mod revocable;

pub use locks::{RawLock, TasLock, TicketLock, TtasLock};
pub use qlocks::{ClhLock, ClhToken, McsLock, TokenLock};
pub use revocable::{Acquired, RevocableLock};
