//! Queue-based spin locks: MCS and CLH.
//!
//! The paper's reference [12] is Mellor-Crummey & Scott's "Algorithms for
//! Scalable Synchronization on Shared-Memory Multiprocessors" — the MCS
//! lock. Queue locks hand the lock off in FIFO order and spin on a
//! *local* flag, so under contention each release causes exactly one
//! remote invalidation instead of a stampede. They are included here as
//! the natural lock-substrate ablation: fair and scalable on a dedicated
//! machine, but *maximally* preemption-sensitive (a preempted waiter
//! stalls everyone behind it in the queue, not just itself).
//!
//! Unlike [`crate::RawLock`], queue locks carry per-acquisition state, so
//! they implement [`TokenLock`]: `lock` returns a token that `unlock`
//! consumes. Queue nodes come from a fixed pool sized at construction.

use msq_arena::NodeArena;
use msq_platform::{AtomicWord, Backoff, BackoffConfig, Platform, NULL_INDEX};

/// A mutual-exclusion lock whose acquisitions carry a token.
pub trait TokenLock<P: Platform>: Send + Sync {
    /// Proof of acquisition, consumed by [`TokenLock::unlock`].
    type Token: Copy + Send;

    /// Acquires the lock, spinning (locally) until granted.
    fn lock(&self, platform: &P) -> Self::Token;

    /// Releases the lock.
    ///
    /// `token` must come from the matching `lock` call on this lock;
    /// passing any other token is a logic error that breaks mutual
    /// exclusion.
    fn unlock(&self, platform: &P, token: Self::Token);
}

/// Encoding of "no node" in the tail word (`0`); node `i` is stored as
/// `i + 1` so the initial all-zeros cell reads as empty.
fn pack(node: u32) -> u64 {
    u64::from(node) + 1
}

fn unpack(raw: u64) -> Option<u32> {
    raw.checked_sub(1).map(|v| v as u32)
}

/// The MCS queue lock.
///
/// Waiters enqueue themselves with an ABA-immune `fetch_and_store` on the
/// tail and spin on their own node's flag; the releaser writes exactly
/// that flag.
///
/// # Example
///
/// ```
/// use msq_platform::NativePlatform;
/// use msq_sync::{McsLock, TokenLock};
///
/// let platform = NativePlatform::new();
/// let lock = McsLock::new(&platform, 8);
/// let token = lock.lock(&platform);
/// // ... critical section ...
/// lock.unlock(&platform, token);
/// ```
pub struct McsLock<P: Platform> {
    tail: P::Cell,
    /// Node pool: `value` is the spin flag (1 = wait), `next` the
    /// successor link.
    nodes: NodeArena<P>,
    backoff: BackoffConfig,
}

impl<P: Platform> McsLock<P> {
    /// Creates an MCS lock able to serve `max_waiters` simultaneous
    /// acquirers (a pool of that many queue nodes).
    ///
    /// # Panics
    ///
    /// Panics if `max_waiters` is 0.
    pub fn new(platform: &P, max_waiters: u32) -> Self {
        Self::with_backoff(platform, max_waiters, BackoffConfig::DEFAULT)
    }

    /// As [`McsLock::new`] with explicit spin-wait backoff.
    ///
    /// Real MCS spins on a local cache line with no backoff at all; a
    /// short bounded backoff is semantically identical (the flag is
    /// re-read until clear) and keeps simulated waits cheap.
    ///
    /// # Panics
    ///
    /// Panics if `max_waiters` is 0.
    pub fn with_backoff(platform: &P, max_waiters: u32, backoff: BackoffConfig) -> Self {
        McsLock {
            tail: platform.alloc_cell(0),
            nodes: NodeArena::new(platform, max_waiters),
            backoff,
        }
    }
}

impl<P: Platform> TokenLock<P> for McsLock<P> {
    type Token = u32;

    fn lock(&self, platform: &P) -> u32 {
        let me = self
            .nodes
            .alloc()
            .expect("MCS node pool exhausted: more concurrent lockers than max_waiters");
        self.nodes.set_value(me, 1); // I will wait
        self.nodes.set_next(me, NULL_INDEX);
        let prev = unpack(self.tail.swap(pack(me)));
        if let Some(prev) = prev {
            // Link behind the previous tail, then spin on OUR flag.
            self.nodes.set_next(prev, me);
            let mut backoff = Backoff::new(self.backoff);
            while self.nodes.value(me) != 0 {
                backoff.spin(platform);
            }
        }
        me
    }

    fn unlock(&self, platform: &P, me: u32) {
        let mut next = self.nodes.next(me);
        if next.is_null() {
            // Appear to be last: try to swing the tail back to empty.
            if self.tail.cas(pack(me), 0) {
                self.nodes.free(me);
                return;
            }
            // A successor is between its swap and its link store; wait for
            // the link (the same brief window as Mellor-Crummey's queue).
            let mut backoff = Backoff::new(self.backoff);
            loop {
                next = self.nodes.next(me);
                if !next.is_null() {
                    break;
                }
                backoff.spin(platform);
            }
        }
        // Hand the lock to the successor by clearing its flag.
        self.nodes.set_value(next.index(), 0);
        self.nodes.free(me);
    }
}

impl<P: Platform> std::fmt::Debug for McsLock<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "McsLock(max_waiters={})", self.nodes.capacity())
    }
}

/// The CLH queue lock.
///
/// Each waiter spins on its *predecessor's* node; release is a single
/// local store. The token records both nodes: the releaser clears its own
/// flag and recycles the predecessor's node (the classic CLH node-handoff,
/// expressed with the arena instead of pointer swapping).
///
/// # Example
///
/// ```
/// use msq_platform::NativePlatform;
/// use msq_sync::{ClhLock, TokenLock};
///
/// let platform = NativePlatform::new();
/// let lock = ClhLock::new(&platform, 8);
/// let token = lock.lock(&platform);
/// lock.unlock(&platform, token);
/// ```
pub struct ClhLock<P: Platform> {
    tail: P::Cell,
    nodes: NodeArena<P>,
    backoff: BackoffConfig,
}

/// Acquisition token for [`ClhLock`].
#[derive(Clone, Copy, Debug)]
pub struct ClhToken {
    me: u32,
    predecessor: u32,
}

impl<P: Platform> ClhLock<P> {
    /// Creates a CLH lock able to serve `max_waiters` simultaneous
    /// acquirers.
    ///
    /// # Panics
    ///
    /// Panics if `max_waiters` is 0.
    pub fn new(platform: &P, max_waiters: u32) -> Self {
        Self::with_backoff(platform, max_waiters, BackoffConfig::DEFAULT)
    }

    /// As [`ClhLock::new`] with explicit spin-wait backoff.
    ///
    /// # Panics
    ///
    /// Panics if `max_waiters` is 0.
    pub fn with_backoff(platform: &P, max_waiters: u32, backoff: BackoffConfig) -> Self {
        // One extra node: the released dummy the first acquirer spins on.
        let nodes = NodeArena::new(platform, max_waiters.checked_add(1).expect("overflow"));
        let dummy = nodes.alloc().expect("fresh arena");
        nodes.set_value(dummy, 0); // released
        ClhLock {
            tail: platform.alloc_cell(pack(dummy)),
            nodes,
            backoff,
        }
    }
}

impl<P: Platform> TokenLock<P> for ClhLock<P> {
    type Token = ClhToken;

    fn lock(&self, platform: &P) -> ClhToken {
        let me = self
            .nodes
            .alloc()
            .expect("CLH node pool exhausted: more concurrent lockers than max_waiters");
        self.nodes.set_value(me, 1); // pending
        let predecessor = unpack(self.tail.swap(pack(me))).expect("CLH tail always holds a node");
        let mut backoff = Backoff::new(self.backoff);
        while self.nodes.value(predecessor) != 0 {
            backoff.spin(platform);
        }
        ClhToken { me, predecessor }
    }

    fn unlock(&self, _platform: &P, token: ClhToken) {
        // Release our node; the successor (if any) is spinning on it. The
        // predecessor's node is quiescent now — recycle it.
        self.nodes.set_value(token.me, 0);
        self.nodes.free(token.predecessor);
    }
}

impl<P: Platform> std::fmt::Debug for ClhLock<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ClhLock(max_waiters={})", self.nodes.capacity() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msq_platform::NativePlatform;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn exercise_exclusion<L, F>(make: F)
    where
        L: TokenLock<NativePlatform> + 'static,
        F: FnOnce(&NativePlatform) -> L,
    {
        let platform = NativePlatform::new();
        let lock = Arc::new(make(&platform));
        let counter = Arc::new(AtomicU64::new(0));
        let in_cs = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let in_cs = Arc::clone(&in_cs);
            handles.push(std::thread::spawn(move || {
                let platform = NativePlatform::new();
                for _ in 0..2_000 {
                    let token = lock.lock(&platform);
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    lock.unlock(&platform, token);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8_000);
    }

    #[test]
    fn mcs_lock_excludes() {
        exercise_exclusion(|p| McsLock::new(p, 8));
    }

    #[test]
    fn clh_lock_excludes() {
        exercise_exclusion(|p| ClhLock::new(p, 8));
    }

    #[test]
    fn mcs_uncontended_cycle_recycles_nodes() {
        let platform = NativePlatform::new();
        let lock = McsLock::new(&platform, 1); // a single node suffices
        for _ in 0..1_000 {
            let token = lock.lock(&platform);
            lock.unlock(&platform, token);
        }
    }

    #[test]
    fn clh_uncontended_cycle_recycles_nodes() {
        let platform = NativePlatform::new();
        let lock = ClhLock::new(&platform, 1);
        for _ in 0..1_000 {
            let token = lock.lock(&platform);
            lock.unlock(&platform, token);
        }
    }

    #[test]
    fn queue_locks_are_fifo_under_simulation() {
        use msq_sim::{SimConfig, Simulation};
        // With 4 simulated processors repeatedly competing, grants must
        // rotate fairly: no process may starve (acquire counts equal).
        let sim = Simulation::new(SimConfig {
            processors: 4,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let lock = Arc::new(McsLock::new(&platform, 8));
        let shared = Arc::new(platform.alloc_cell(0));
        sim.run({
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            let platform = platform.clone();
            move |_| {
                for _ in 0..50 {
                    let token = lock.lock(&platform);
                    let v = shared.load();
                    shared.store(v + 1);
                    lock.unlock(&platform, token);
                }
            }
        });
        assert_eq!(shared.load(), 200);
    }

    #[test]
    fn clh_works_under_simulated_preemption() {
        use msq_sim::{SimConfig, Simulation};
        let sim = Simulation::new(SimConfig {
            processors: 2,
            processes_per_processor: 2,
            quantum_ns: 50_000,
            ..SimConfig::default()
        });
        let platform = sim.platform();
        let lock = Arc::new(ClhLock::new(&platform, 8));
        let shared = Arc::new(platform.alloc_cell(0));
        sim.run({
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            let platform = platform.clone();
            move |_| {
                for _ in 0..25 {
                    let token = lock.lock(&platform);
                    let v = shared.load();
                    shared.store(v + 1);
                    lock.unlock(&platform, token);
                }
            }
        });
        assert_eq!(shared.load(), 100);
    }
}
