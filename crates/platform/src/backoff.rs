//! Bounded exponential backoff.
//!
//! The paper uses test-and-test_and_set locks "with bounded exponential
//! backoff" for the lock-based algorithms and "backoff where appropriate in
//! the non-lock-based algorithms", noting that performance was not sensitive
//! to the exact parameters.
//!
//! Delays are **jittered** (uniform in `[base/2, 3*base/2)`), as real
//! backoff implementations are: without jitter, two processes with
//! identical deterministic schedules can phase-lock — e.g. a spinner whose
//! exponential waits land exactly when a fast competitor holds the lock,
//! starving forever. The jitter source is a per-instance xorshift seeded
//! from a global sequence, so simulator runs remain fully reproducible
//! (the seed order is fixed by the simulator's deterministic scheduling).

use crate::word::Platform;

/// Parameters for [`Backoff`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First delay, in nanoseconds. `0` disables backoff entirely (used by
    /// the ablation benchmarks).
    pub min_ns: u64,
    /// Upper bound on a single delay, in nanoseconds.
    pub max_ns: u64,
}

impl BackoffConfig {
    /// The defaults used throughout the reproduction: 100 ns doubling up to
    /// 50 µs. (Well under the 10 ms scheduling quantum, so backoff never
    /// masquerades as a context switch.)
    pub const DEFAULT: BackoffConfig = BackoffConfig {
        min_ns: 100,
        max_ns: 50_000,
    };

    /// Backoff disabled: every [`Backoff::spin`] is a bare `cpu_relax`.
    pub const DISABLED: BackoffConfig = BackoffConfig {
        min_ns: 0,
        max_ns: 0,
    };

    /// Whether this configuration performs any delaying at all.
    pub fn is_disabled(&self) -> bool {
        self.min_ns == 0
    }
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig::DEFAULT
    }
}

/// Per-operation bounded exponential backoff state.
///
/// Create one `Backoff` at the top of a retry loop and call
/// [`Backoff::spin`] after each failed attempt.
///
/// # Example
///
/// ```
/// use msq_platform::{Backoff, BackoffConfig, NativePlatform};
///
/// let p = NativePlatform::new();
/// let mut backoff = Backoff::new(BackoffConfig::DEFAULT);
/// for _attempt in 0..3 {
///     // ... failed CAS ...
///     backoff.spin(&p);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Backoff {
    config: BackoffConfig,
    current_ns: u64,
    /// Xorshift state for jitter; seeded lazily from the platform so
    /// simulated runs stay deterministic (0 = not yet seeded).
    rng: u64,
}

impl Backoff {
    /// Creates backoff state starting at `config.min_ns`.
    pub fn new(config: BackoffConfig) -> Self {
        Backoff {
            config,
            current_ns: config.min_ns,
            rng: 0,
        }
    }

    /// Delays for roughly the current interval — jittered uniformly in
    /// `[base/2, 3*base/2)` — and doubles the base (up to the bound).
    pub fn spin<P: Platform>(&mut self, platform: &P) {
        if self.config.is_disabled() {
            platform.cpu_relax();
            return;
        }
        if self.rng == 0 {
            self.rng = platform.jitter_seed() | 1;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let base = self.current_ns;
        let jittered = base / 2 + self.rng % base.max(1);
        platform.delay(jittered);
        self.current_ns = (base * 2).min(self.config.max_ns);
    }

    /// The *base* delay the next [`Backoff::spin`] jitters around, in
    /// nanoseconds (the actual delay is uniform in `[base/2, 3*base/2)`).
    pub fn next_delay_ns(&self) -> u64 {
        if self.config.is_disabled() {
            0
        } else {
            self.current_ns
        }
    }

    /// Resets the interval to the configured minimum (after a success).
    pub fn reset(&mut self) {
        self.current_ns = self.config.min_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NativePlatform;

    #[test]
    fn doubles_until_bound() {
        let p = NativePlatform::new();
        let mut b = Backoff::new(BackoffConfig {
            min_ns: 100,
            max_ns: 400,
        });
        assert_eq!(b.next_delay_ns(), 100);
        b.spin(&p);
        assert_eq!(b.next_delay_ns(), 200);
        b.spin(&p);
        assert_eq!(b.next_delay_ns(), 400);
        b.spin(&p);
        assert_eq!(b.next_delay_ns(), 400, "bounded at max");
    }

    #[test]
    fn reset_returns_to_min() {
        let p = NativePlatform::new();
        let mut b = Backoff::new(BackoffConfig {
            min_ns: 100,
            max_ns: 800,
        });
        b.spin(&p);
        b.spin(&p);
        b.reset();
        assert_eq!(b.next_delay_ns(), 100);
    }

    #[test]
    fn disabled_backoff_never_delays() {
        let p = NativePlatform::new();
        let mut b = Backoff::new(BackoffConfig::DISABLED);
        assert_eq!(b.next_delay_ns(), 0);
        b.spin(&p);
        assert_eq!(b.next_delay_ns(), 0);
    }

    #[test]
    fn default_config_is_default() {
        assert_eq!(BackoffConfig::default(), BackoffConfig::DEFAULT);
        assert!(!BackoffConfig::DEFAULT.is_disabled());
        assert!(BackoffConfig::DISABLED.is_disabled());
    }
}
