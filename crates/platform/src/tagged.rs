//! Counted ("tagged") pointers packed into a single 64-bit word.
//!
//! The paper's ABA defence associates a modification counter with every
//! pointer and requires the pair to be read and CASed together. It names two
//! ways to do that: a double-word CAS, or "use array indices instead of
//! pointers, so that they may share a single word with a counter". This
//! module implements the second option: a [`Tagged`] word packs a 32-bit
//! node index (into a `msq_arena::NodeArena`) with a 32-bit modification
//! counter, so plain single-word CAS on an [`crate::AtomicWord`] updates
//! both atomically.

use core::fmt;

/// The index value that plays the role of a NULL pointer.
///
/// Arenas therefore hold at most `u32::MAX - 1` nodes, far beyond any
/// configuration in the experiments.
pub const NULL_INDEX: u32 = u32::MAX;

/// A `{index: u32, tag: u32}` pair packed into one word.
///
/// `tag` is the modification counter from the paper; every successful CAS
/// that installs a new value stores `tag + 1` (wrapping), making an ABA
/// sequence visible to any in-flight reader that still holds the old word.
///
/// # Example
///
/// ```
/// use msq_platform::{Tagged, NULL_INDEX};
///
/// let t = Tagged::new(42, 7);
/// assert_eq!(t.index(), 42);
/// assert_eq!(t.tag(), 7);
/// let bumped = t.with_index(NULL_INDEX);
/// assert_eq!(bumped.tag(), 8);
/// assert!(bumped.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tagged(u64);

impl Tagged {
    /// A null pointer with tag 0; the conventional initial value.
    pub const NULL: Tagged = Tagged::new(NULL_INDEX, 0);

    /// Packs `index` and `tag` into a tagged word.
    #[inline]
    pub const fn new(index: u32, tag: u32) -> Self {
        Tagged(((tag as u64) << 32) | index as u64)
    }

    /// Reinterprets a raw word previously produced by [`Tagged::raw`].
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Tagged(raw)
    }

    /// The raw packed word, suitable for storing in an [`crate::AtomicWord`].
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The node index (or [`NULL_INDEX`]).
    #[inline]
    pub const fn index(self) -> u32 {
        self.0 as u32
    }

    /// The modification counter.
    #[inline]
    pub const fn tag(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Whether this word encodes NULL.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.index() == NULL_INDEX
    }

    /// A new word pointing at `index` with this word's counter incremented —
    /// the `<ptr, count+1>` idiom from every CAS in Figure 1.
    #[inline]
    pub const fn with_index(self, index: u32) -> Self {
        Tagged::new(index, self.tag().wrapping_add(1))
    }

    /// A null word with this word's counter incremented.
    #[inline]
    pub const fn nulled(self) -> Self {
        self.with_index(NULL_INDEX)
    }
}

impl Default for Tagged {
    fn default() -> Self {
        Tagged::NULL
    }
}

impl fmt::Debug for Tagged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Tagged(NULL, tag={})", self.tag())
        } else {
            write!(f, "Tagged({}, tag={})", self.index(), self.tag())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index_and_tag() {
        for &(i, t) in &[
            (0u32, 0u32),
            (1, 1),
            (42, 7),
            (u32::MAX - 1, u32::MAX),
            (NULL_INDEX, 3),
        ] {
            let w = Tagged::new(i, t);
            assert_eq!(w.index(), i);
            assert_eq!(w.tag(), t);
            assert_eq!(Tagged::from_raw(w.raw()), w);
        }
    }

    #[test]
    fn null_is_null() {
        assert!(Tagged::NULL.is_null());
        assert!(!Tagged::new(0, 0).is_null());
        assert_eq!(Tagged::default(), Tagged::NULL);
    }

    #[test]
    fn with_index_bumps_tag() {
        let w = Tagged::new(5, 9);
        let n = w.with_index(6);
        assert_eq!(n.index(), 6);
        assert_eq!(n.tag(), 10);
    }

    #[test]
    fn tag_wraps() {
        let w = Tagged::new(5, u32::MAX);
        assert_eq!(w.with_index(5).tag(), 0);
    }

    #[test]
    fn nulled_bumps_tag_and_clears_index() {
        let w = Tagged::new(5, 1);
        let n = w.nulled();
        assert!(n.is_null());
        assert_eq!(n.tag(), 2);
    }

    #[test]
    fn distinct_tags_compare_unequal() {
        // The whole point of the counter: same index, different history.
        assert_ne!(Tagged::new(3, 1), Tagged::new(3, 2));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Tagged::NULL).is_empty());
        assert!(format!("{:?}", Tagged::new(1, 2)).contains('1'));
    }
}
