//! The native execution platform: real atomics, real time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;

use crate::word::{AtomicWord, Platform};

/// A cache-line-padded `AtomicU64`.
///
/// Padding keeps logically independent hot words (`Head`, `Tail`, lock
/// words, arena slots) on separate cache lines, as the hand-optimized C in
/// the paper's experiments did by layout.
pub struct NativeCell(CachePadded<AtomicU64>);

impl NativeCell {
    /// Creates a cell holding `init`.
    pub fn new(init: u64) -> Self {
        NativeCell(CachePadded::new(AtomicU64::new(init)))
    }
}

impl std::fmt::Debug for NativeCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeCell({})", self.load())
    }
}

impl AtomicWord for NativeCell {
    #[inline]
    fn load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    #[inline]
    fn store(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst)
    }

    #[inline]
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    #[inline]
    fn swap(&self, value: u64) -> u64 {
        self.0.swap(value, Ordering::SeqCst)
    }

    #[inline]
    fn fetch_add(&self, delta: u64) -> u64 {
        self.0.fetch_add(delta, Ordering::SeqCst)
    }
}

/// The platform that runs algorithms on OS threads and hardware atomics.
///
/// [`Platform::delay`] spins on the monotonic clock (it must not yield or
/// sleep: the paper's "other work" and backoff are busy loops, and on a
/// multiprogrammed host a sleep would hand the scheduler exactly the
/// opportunity the experiment is trying to measure).
#[derive(Clone, Copy, Debug, Default)]
pub struct NativePlatform;

impl NativePlatform {
    /// Creates the (stateless) native platform.
    pub fn new() -> Self {
        NativePlatform
    }
}

impl Platform for NativePlatform {
    type Cell = NativeCell;

    fn alloc_cell(&self, init: u64) -> NativeCell {
        NativeCell::new(init)
    }

    fn delay(&self, nanos: u64) {
        let deadline = Instant::now() + Duration::from_nanos(nanos);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn cpu_relax(&self) {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_store_round_trip() {
        let c = NativeCell::new(3);
        assert_eq!(c.load(), 3);
        c.store(9);
        assert_eq!(c.load(), 9);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let c = NativeCell::new(1);
        assert_eq!(c.compare_exchange(1, 2), Ok(1));
        assert_eq!(c.compare_exchange(1, 3), Err(2));
        assert_eq!(c.load(), 2);
    }

    #[test]
    fn swap_returns_previous() {
        let c = NativeCell::new(5);
        assert_eq!(c.swap(6), 5);
        assert_eq!(c.load(), 6);
    }

    #[test]
    fn fetch_add_and_sub() {
        let c = NativeCell::new(10);
        assert_eq!(c.fetch_add(5), 10);
        assert_eq!(c.fetch_sub(3), 15);
        assert_eq!(c.load(), 12);
    }

    #[test]
    fn test_and_set_reports_prior_state() {
        let c = NativeCell::new(0);
        assert!(!c.test_and_set());
        assert!(c.test_and_set());
        c.store(0);
        assert!(!c.test_and_set());
    }

    #[test]
    fn delay_advances_wall_clock() {
        let p = NativePlatform::new();
        let start = Instant::now();
        p.delay(2_000_000); // 2 ms
        assert!(start.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn cells_are_shareable_across_threads() {
        let p = NativePlatform::new();
        let c = Arc::new(p.alloc_cell(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.fetch_add(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(), 4000);
    }

    #[test]
    fn concurrent_cas_loses_exactly_once_per_conflict() {
        // Two threads CAS-increment; total must equal attempts succeeded.
        let c = Arc::new(NativeCell::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < 500 {
                    let v = c.load();
                    if c.cas(v, v + 1) {
                        done += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(), 1000);
    }
}
