//! The [`AtomicWord`] operation set and the [`Platform`] factory trait.

/// A single 64-bit shared-memory word supporting the atomic primitives used
/// by every algorithm in the reproduction.
///
/// The operation set mirrors what Michael & Scott emulated with
/// `load_linked`/`store_conditional` on the SGI Challenge:
/// `compare_and_swap` (for the non-blocking queues), `fetch_and_store`
/// a.k.a. swap (for Mellor-Crummey's queue), `fetch_and_add` (ticket locks,
/// Valois reference counts), and `test_and_set` (simple spin locks).
///
/// All operations are sequentially consistent. The paper reasons about an
/// SC machine, and the simulator executes one operation at a time in virtual
/// time order, so SC is both faithful and the only sensible contract here.
/// (The idiomatic heap-allocated queues in `msq-core` use weaker orderings;
/// they do not go through this trait.)
pub trait AtomicWord: Send + Sync + 'static {
    /// Atomically reads the word.
    fn load(&self) -> u64;

    /// Atomically writes the word.
    fn store(&self, value: u64);

    /// Atomic compare-and-swap: if the word equals `current`, replace it
    /// with `new`.
    ///
    /// # Errors
    ///
    /// Returns `Ok(current)` on success and `Err(actual)` with the observed
    /// value on failure, matching `AtomicU64::compare_exchange`.
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64>;

    /// Atomic `fetch_and_store`: writes `value`, returns the previous value.
    fn swap(&self, value: u64) -> u64;

    /// Atomic `fetch_and_add` (wrapping), returning the previous value.
    fn fetch_add(&self, delta: u64) -> u64;

    /// Atomic `fetch_and_sub` (wrapping), returning the previous value.
    fn fetch_sub(&self, delta: u64) -> u64 {
        self.fetch_add(delta.wrapping_neg())
    }

    /// `test_and_set`: atomically sets the word to 1 and reports whether it
    /// was already non-zero (i.e. `true` means the "lock" was already held).
    fn test_and_set(&self) -> bool {
        self.swap(1) != 0
    }

    /// Boolean-flavoured CAS for call sites that do not need the witness.
    fn cas(&self, current: u64, new: u64) -> bool {
        self.compare_exchange(current, new).is_ok()
    }
}

/// Factory for shared cells plus the execution-environment services the
/// algorithms need (pure delay for backoff / "other work", and a spin hint).
///
/// Implementations: [`crate::NativePlatform`] (real atomics, wall-clock
/// delays) and `msq_sim::SimPlatform` (simulated memory, virtual-time
/// delays).
///
/// Platforms are cheap handles (`Clone`): data structures store one so
/// their internal retry loops can issue backoff delays.
pub trait Platform: Clone + Send + Sync + Sized + 'static {
    /// The shared-cell type produced by this platform.
    type Cell: AtomicWord;

    /// Allocates a new shared cell holding `init`.
    ///
    /// Allocation is a *setup-time* operation: the experiments pre-allocate
    /// every node before timing starts, so implementations do not charge
    /// simulated time for it.
    fn alloc_cell(&self, init: u64) -> Self::Cell;

    /// Burns `nanos` nanoseconds without touching shared memory.
    ///
    /// Used for bounded exponential backoff and for the workload's ~6 µs
    /// "other work" loop. On the native platform this spins on the
    /// monotonic clock; in the simulator it advances the calling process's
    /// virtual clock.
    fn delay(&self, nanos: u64);

    /// A single spin-wait pause (native: `std::hint::spin_loop`; simulated:
    /// a small fixed virtual-time charge).
    fn cpu_relax(&self);

    /// A seed for randomized backoff jitter.
    ///
    /// The default draws from a global atomic sequence, which is fine
    /// natively. The simulator overrides this with a value derived from
    /// the calling *process's own* program order, because a global
    /// sequence observed from concurrently-running worker threads would
    /// make simulated runs irreproducible.
    fn jitter_seed(&self) -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0x243f_6a88_85a3_08d3);
        SEQ.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
    }

    /// A small stable integer identifying the calling execution context,
    /// used by sharded structures to pick a home shard (`hint % shards`).
    ///
    /// Contract: the hint must be stable for the lifetime of the calling
    /// thread/process and should differ between concurrently-running
    /// contexts so they spread across shards. It carries no ordering or
    /// uniqueness guarantee beyond that.
    ///
    /// The default hands each OS thread the next value of a global
    /// counter on first use. The simulator overrides this with the
    /// simulated process id, which keeps shard assignment deterministic
    /// across runs regardless of host-thread scheduling.
    fn affinity_hint(&self) -> usize {
        affinity_hint_default()
    }

    /// Marks a labelled *fault point*: a spot inside an algorithm where a
    /// scheduler-induced fault (stall, preemption, death) is interesting —
    /// typically the window between an operation's linearization step and
    /// the cleanup that follows it, or the body of a critical section.
    ///
    /// The contract is "may not return": a fault plan can stall the caller
    /// for virtual time, preempt it, or kill its process outright (by
    /// unwinding). Algorithms therefore must be in a *legal shared state*
    /// at every fault point — exactly the states the paper reasons about
    /// when it argues non-blocking progress.
    ///
    /// The default (and the native platform's behaviour) is a no-op, so
    /// fault points cost nothing outside the simulator. `msq_sim`'s
    /// platform routes them to the active `FaultPlan`, if any.
    fn fault_point(&self, label: &'static str) {
        let _ = label;
    }

    /// A bitmask of peer execution contexts known to be *dead* (bit `p` set
    /// means context `p` died and will never run again).
    ///
    /// Revocable locks consult this before seizing a lock from an
    /// unresponsive holder: revocation is only sound when the holder is
    /// provably dead, never merely slow. Natively there is no death notice
    /// — threads either run or the whole process is gone — so the default
    /// reports *nobody dead*, which makes revocation unreachable and the
    /// revocable lock behave exactly like a plain spin lock. The simulator
    /// overrides this with a (charged) read of its death board.
    fn dead_peers(&self) -> u64 {
        0
    }

    /// Records that the caller revoked a dead peer's lock and repaired the
    /// structure it protected, restoring the invariant torn at fault point
    /// `point`.
    ///
    /// Mirrors the recovery handoff (`mark_recovered`): purely an
    /// observability stamp, free of shared-memory traffic. The default is a
    /// no-op; the simulator stamps a `RepairReport` into its `SimReport`.
    fn mark_repaired(&self, victim: usize, point: &'static str) {
        let _ = (victim, point);
    }

    /// Records that the caller absorbed dead peer `victim`'s remaining
    /// work share (the restart-and-catch-up recovery handoff).
    ///
    /// Purely an observability stamp, free of shared-memory traffic, like
    /// [`Platform::mark_repaired`]. The default is a no-op — natively
    /// nobody is ever reported dead ([`Platform::dead_peers`]), so the
    /// handoff is unreachable — while the simulator stamps a
    /// `RecoveryReport` into its `SimReport`.
    fn mark_recovered(&self, victim: usize) {
        let _ = victim;
    }

    /// The caller's current time in nanoseconds, on whatever clock the
    /// platform runs: virtual time for the simulator, monotonic wall
    /// clock (measured from a process-wide epoch) natively. Open-loop
    /// workloads use it to pace arrival schedules and to timestamp
    /// enqueue-to-dequeue latency; the two uses only need the clock to be
    /// consistent within one run, never across platforms.
    fn now_ns(&self) -> u64 {
        native_epoch_ns()
    }

    /// Records one enqueue-to-dequeue latency sample: the caller consumed
    /// an item whose producer stamped it with `arrival_ns` (on this
    /// platform's [`Platform::now_ns`] clock).
    ///
    /// Purely an observability stamp, free of shared-memory traffic. The
    /// default is a no-op — native harnesses collect samples host-side —
    /// while the simulator appends a `LatencySample` to its `SimReport`
    /// so virtual-time percentiles survive into the report.
    fn record_latency(&self, arrival_ns: u64) {
        let _ = arrival_ns;
    }
}

/// Nanoseconds since a process-wide monotonic epoch (fixed at first use),
/// the default [`Platform::now_ns`] clock.
fn native_epoch_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn affinity_hint_default() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT_TOKEN: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TOKEN: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    TOKEN.with(|token| {
        if token.get() == usize::MAX {
            token.set(NEXT_TOKEN.fetch_add(1, Ordering::Relaxed));
        }
        token.get()
    })
}
