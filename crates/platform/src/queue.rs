//! Common interfaces for the word-valued concurrent data structures used in
//! the experiments.

use core::fmt;

/// Error returned when a bounded structure (arena-backed queue, ring) cannot
/// accept another element. Carries the rejected value back to the caller.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct QueueFull(pub u64);

impl fmt::Debug for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueueFull({})", self.0)
    }
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue storage exhausted; value {} not enqueued", self.0)
    }
}

impl std::error::Error for QueueFull {}

/// Error returned when a bounded structure runs out of storage part-way
/// through a batch operation.
///
/// `pushed` values from the front of the batch **were** enqueued (the
/// batch prefix is in the queue, in order); the unconsumed suffix is
/// `&values[pushed..]`, which the caller may retry once space frees up.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct BatchFull {
    /// How many values from the front of the batch were enqueued before
    /// storage ran out.
    pub pushed: usize,
}

impl fmt::Debug for BatchFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BatchFull(pushed={})", self.pushed)
    }
}

impl fmt::Display for BatchFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue storage exhausted after {} values; batch suffix not enqueued",
            self.pushed
        )
    }
}

impl std::error::Error for BatchFull {}

/// A multi-producer multi-consumer FIFO queue of `u64` values.
///
/// All six algorithms in the paper's evaluation implement this trait
/// (generic over [`crate::Platform`]), which is what lets the harness drive
/// them interchangeably on native threads and in the simulator.
///
/// Implementations must be linearizable FIFO queues **except** where a
/// baseline is documented otherwise (Lamport's ring is single-producer /
/// single-consumer; callers uphold that restriction).
pub trait ConcurrentWordQueue: Send + Sync {
    /// Adds `value` at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if the queue's node storage is exhausted (the
    /// arenas in this reproduction are fixed-capacity, like the paper's
    /// pre-allocated free lists).
    fn enqueue(&self, value: u64) -> Result<(), QueueFull>;

    /// Removes and returns the value at the head, or `None` if the queue is
    /// observed empty.
    fn dequeue(&self) -> Option<u64>;

    /// Adds every value in `values` at the tail, preserving slice order.
    ///
    /// The default implementation is a per-operation loop, so the paper's
    /// six algorithms satisfy the batch API without modification; batching
    /// implementations (the segment queue) override it to publish a whole
    /// pre-filled segment with a single link CAS.
    ///
    /// # Errors
    ///
    /// Returns [`BatchFull`] if storage runs out mid-batch. The error's
    /// `pushed` field counts how many values from the front of the slice
    /// were enqueued; the unconsumed suffix `&values[pushed..]` was not,
    /// and may be retried.
    fn enqueue_batch(&self, values: &[u64]) -> Result<(), BatchFull> {
        for (pushed, &value) in values.iter().enumerate() {
            if self.enqueue(value).is_err() {
                return Err(BatchFull { pushed });
            }
        }
        Ok(())
    }

    /// Removes up to `max` values from the head, appending them to `out`
    /// in dequeue order. Returns how many values were taken; fewer than
    /// `max` (possibly zero) means the queue was observed empty.
    ///
    /// The default implementation is a per-operation loop; batching
    /// implementations override it to claim a run of slots with one
    /// contended atomic and drain the run locally.
    fn dequeue_batch(&self, out: &mut Vec<u64>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.dequeue() {
                Some(value) => {
                    out.push(value);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// A short stable identifier used in reports (e.g. `"ms-nonblocking"`).
    fn name(&self) -> &'static str;

    /// Whether the implementation is non-blocking in the paper's sense: a
    /// stalled process cannot prevent others from completing operations.
    fn is_nonblocking(&self) -> bool;
}

/// A last-in first-out stack of `u64` values (Treiber's algorithm backs the
/// paper's free list and is exposed as a structure in its own right).
pub trait ConcurrentStack: Send + Sync {
    /// Pushes `value`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if node storage is exhausted.
    fn push(&self, value: u64) -> Result<(), QueueFull>;

    /// Pops the most recently pushed value, or `None` if empty.
    fn pop(&self) -> Option<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_displays_value() {
        let e = QueueFull(17);
        assert!(e.to_string().contains("17"));
        assert!(format!("{e:?}").contains("17"));
    }

    #[test]
    fn queue_full_is_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(QueueFull(0));
    }
}
