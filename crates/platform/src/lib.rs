//! Platform abstraction for the Michael–Scott queue reproduction.
//!
//! The algorithms from Michael & Scott's 1996 paper (and every baseline it
//! compares against) are expressed over a small set of single-word atomic
//! primitives: `load`, `store`, `compare_and_swap`, `swap` (fetch-and-store),
//! `fetch_and_add`, and `test_and_set`. The paper emulated all of these with
//! MIPS R4000 `load_linked`/`store_conditional`; this crate captures the same
//! operation set behind the [`AtomicWord`] trait so that a single algorithm
//! body can run either
//!
//! * natively, on real [`std::sync::atomic::AtomicU64`]s and OS threads
//!   ([`NativePlatform`]), or
//! * inside the deterministic multiprocessor simulator from the `msq-sim`
//!   crate, where every shared-memory access is charged virtual time from a
//!   cache-coherence cost model.
//!
//! The [`Platform`] trait is the factory and clock: it allocates cells and
//! models pure delay (backoff, the workload's "other work" spin).
//!
//! # Example
//!
//! ```
//! use msq_platform::{AtomicWord, NativePlatform, Platform};
//!
//! let platform = NativePlatform::new();
//! let cell = platform.alloc_cell(7);
//! assert_eq!(cell.load(), 7);
//! assert_eq!(cell.compare_exchange(7, 9), Ok(7));
//! assert_eq!(cell.load(), 9);
//! ```

#![warn(missing_docs)]

mod backoff;
mod native;
mod queue;
mod tagged;
mod word;

pub use backoff::{Backoff, BackoffConfig};
pub use native::{NativeCell, NativePlatform};
pub use queue::{BatchFull, ConcurrentStack, ConcurrentWordQueue, QueueFull};
pub use tagged::{Tagged, NULL_INDEX};
pub use word::{AtomicWord, Platform};
