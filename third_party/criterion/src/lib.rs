//! Vendored minimal stand-in for the parts of `criterion` this workspace
//! uses, so `cargo bench` works without network access to a registry.
//!
//! Each benchmark calibrates an iteration count targeting ~20ms per
//! sample, records `sample_size` samples, and prints the median ns/iter.
//! When the `BENCH_JSON` environment variable names a file, every result
//! is appended there as one JSON object per line
//! (`{"group":..,"bench":..,"median_ns":..,"samples":..}`), which the
//! repo's committed benchmark artifacts are generated from. Statistical
//! analysis, plots, and CLI filtering are intentionally not implemented;
//! command-line arguments (e.g. `--bench` from cargo) are ignored.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs one benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.0, &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher);
        eprintln!("  {id}: {:.1} ns/iter", bencher.median_ns);
        write_json_line(&self.name, id, bencher.median_ns, self.sample_size);
    }
}

/// Identifier combining a function name and a parameter, rendered as
/// `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timing loop handle handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median ns per iteration across samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ~20ms (capped so pathologically slow bodies still finish).
        let target = Duration::from_millis(20);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            if elapsed < target / 4 {
                iters = iters.saturating_mul(4);
            } else {
                iters = iters.saturating_mul(2);
            }
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples_ns[samples_ns.len() / 2];
    }
}

fn write_json_line(group: &str, bench: &str, median_ns: f64, samples: usize) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"samples\":{}}}\n",
        escape(group),
        escape(bench),
        median_ns,
        samples
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Declares a benchmark group: a function invoking each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `fn main()` running the listed groups. Cargo's extra CLI
/// arguments (e.g. `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut captured = 0.0;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            captured = b.median_ns;
        });
        group.finish();
        assert!(captured > 0.0);
    }

    #[test]
    fn benchmark_id_formats_as_slash_pair() {
        assert_eq!(BenchmarkId::new("alg", 4).0, "alg/4");
    }

    #[test]
    fn macros_expand_and_run() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("macro");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("cell", 1), &1u64, |b, &x| {
                b.iter(|| x + 1);
            });
            g.finish();
        }
        criterion_group!(smoke_group, target);
        let mut c = Criterion::default();
        smoke_group(&mut c);
    }
}
