//! Vendored minimal stand-in for the parts of `proptest` this workspace
//! uses, so the build works without network access to a registry.
//!
//! A property test here is a deterministic loop: a per-test xorshift RNG
//! (seeded from the test name, so failures reproduce run-to-run) drives
//! [`Strategy`] sampling for each case, and the `prop_assert*` macros
//! report failures with the offending values. Shrinking is intentionally
//! not implemented — failures print the raw case instead.
//!
//! Supported surface: `proptest!` (with optional `#![proptest_config]`),
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/
//! `prop_assume!`, [`Just`], [`any`], `.prop_map`, integer range
//! strategies, `prop::collection::vec`, and `prop::option::of`.

#![warn(missing_docs)]

use std::marker::PhantomData;

// --- RNG --------------------------------------------------------------------

/// Deterministic per-test random number generator (xorshift64*).
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name via FNV-1a so every test gets a distinct,
    /// stable stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(hash | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

// --- errors and config ------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; another case is drawn.
    Reject,
    /// The case failed an assertion; the test panics with this message.
    Fail(String),
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// --- strategies -------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces (a clone of) the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Uniformly one of several boxed strategies (see `prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs an alternative");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

/// Helper the `prop_oneof!` macro uses to erase strategy types.
pub trait IntoBoxedStrategy: Strategy + Sized + 'static {
    /// Boxes the strategy.
    fn boxed_strategy(self) -> Box<dyn Strategy<Value = Self::Value>> {
        Box::new(self)
    }
}

impl<S: Strategy + Sized + 'static> IntoBoxedStrategy for S {}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Container and combinator strategies, re-exported as `prop::...` to
/// match the real crate's paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A `Vec` whose length is drawn from `size` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.0.sample(rng))
                } else {
                    None
                }
            }
        }

        /// `Some` of `inner` half the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

// --- runner -----------------------------------------------------------------

/// Drives one `proptest!`-generated test: draws cases until `config.cases`
/// pass, panicking on the first failure. Not part of the public API shape
/// of the real crate; used by the macro expansion only.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::for_test(name);
    let mut executed = 0_u32;
    let mut attempts = 0_u32;
    let max_attempts = config.cases.saturating_mul(10).max(100);
    while executed < config.cases && attempts < max_attempts {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest '{name}' failed (case {attempts}): {message}")
            }
        }
    }
    assert!(
        executed > 0,
        "proptest '{name}': every case was rejected by prop_assume!"
    );
}

// --- macros -----------------------------------------------------------------

/// Defines property tests; see the real crate for the full grammar. The
/// subset supported: an optional `#![proptest_config(expr)]` header and
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; ) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_proptest(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                let body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                body()
            });
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Uniformly picks one of the listed strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $($crate::IntoBoxedStrategy::boxed_strategy($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_ne! failed: both sides are {:?}",
                left
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The conventional glob import, mirroring the real crate.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20) {
            prop_assert!((10..20).contains(&v));
        }

        #[test]
        fn maps_apply(v in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 10);
        }

        #[test]
        fn oneof_and_collections(
            items in prop::collection::vec(prop_oneof![Just(1u64), 5u64..8], 0..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(items.len() < 10);
            for item in &items {
                prop_assert!(*item == 1 || (5..8).contains(item));
            }
            prop_assume!(flag || items.len() < 100);
        }

        #[test]
        fn options_cover_both_variants(opt in prop::option::of(0u64..3)) {
            if let Some(v) = opt {
                prop_assert!(v < 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "prop_assert_eq! failed")]
    fn failures_panic_with_values() {
        proptest! {
            fn inner(v in 0u64..4) {
                prop_assert_eq!(v, 100);
            }
        }
        inner();
    }
}
