//! Vendored minimal stand-in for the parts of `crossbeam-epoch` this
//! workspace uses, so the build works without network access to a registry.
//!
//! This is a *working* epoch-based reclamation scheme, not a leaky mock:
//! the classic three-epoch design. Threads pin the global epoch while they
//! hold [`Shared`] references; destruction of an unlinked node is deferred
//! until the global epoch has advanced twice past the epoch in which it was
//! retired, which can only happen after every thread that might still hold
//! a reference has unpinned. The API subset matches the real crate for the
//! call sites in this repository (`EpochMsQueue`, `HerlihyQueue`):
//! [`Atomic`], [`Owned`], [`Shared`], [`Guard`], [`pin`], [`unprotected`],
//! `compare_exchange` with an error carrying back `new`, and
//! [`Guard::defer_destroy`].

#![warn(missing_docs)]

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Memory orderings are re-exported so call sites can keep using
/// `std::sync::atomic::Ordering` values unchanged.
pub use std::sync::atomic::Ordering as MemOrdering;

// --- global epoch state -----------------------------------------------------

/// Maximum threads that may simultaneously participate in the epoch scheme.
const MAX_PARTICIPANTS: usize = 512;

/// Deferred destructions accumulated locally before attempting a collect.
const COLLECT_THRESHOLD: usize = 64;

static GLOBAL_EPOCH: AtomicUsize = AtomicUsize::new(2);

struct ParticipantSlot {
    /// 0 = slot free, 1 = owned by a live thread.
    owner: AtomicUsize,
    /// 0 = not pinned; otherwise `(epoch << 1) | 1`.
    state: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_PARTICIPANT: ParticipantSlot = ParticipantSlot {
    owner: AtomicUsize::new(0),
    state: AtomicUsize::new(0),
};

static PARTICIPANTS: [ParticipantSlot; MAX_PARTICIPANTS] = [EMPTY_PARTICIPANT; MAX_PARTICIPANTS];
static PARTICIPANT_HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

struct Deferred {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
    /// Global epoch observed at retirement; safe to destroy once the
    /// global epoch is at least `epoch + 2`.
    epoch: usize,
}

// Deferred items are unlinked and owned by the collector until dropped.
unsafe impl Send for Deferred {}

/// Garbage from exited threads, adopted by later collections.
static ORPHANS: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());

struct LocalEpoch {
    slot: usize,
    pin_count: usize,
    garbage: Vec<Deferred>,
    defers_since_collect: usize,
}

impl LocalEpoch {
    fn register() -> LocalEpoch {
        for (i, slot) in PARTICIPANTS.iter().enumerate() {
            if slot.owner.load(Ordering::Relaxed) == 0
                && slot
                    .owner
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                PARTICIPANT_HIGH_WATER.fetch_max(i + 1, Ordering::AcqRel);
                return LocalEpoch {
                    slot: i,
                    pin_count: 0,
                    garbage: Vec::new(),
                    defers_since_collect: 0,
                };
            }
        }
        panic!("epoch participant capacity ({MAX_PARTICIPANTS}) exhausted");
    }
}

impl Drop for LocalEpoch {
    fn drop(&mut self) {
        // Thread exit: orphan any garbage (adopted by later collections)
        // and release the participant slot.
        if !self.garbage.is_empty() {
            let mut orphans = ORPHANS.lock().expect("orphan list");
            orphans.append(&mut self.garbage);
        }
        PARTICIPANTS[self.slot].state.store(0, Ordering::SeqCst);
        PARTICIPANTS[self.slot].owner.store(0, Ordering::Release);
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalEpoch>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut LocalEpoch) -> R) -> R {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        f(local.get_or_insert_with(LocalEpoch::register))
    })
}

/// Advances the global epoch if every pinned participant has caught up with
/// it, then destroys any garbage two epochs stale.
fn try_collect(garbage: &mut Vec<Deferred>) {
    let epoch = GLOBAL_EPOCH.load(Ordering::SeqCst);
    let limit = PARTICIPANT_HIGH_WATER.load(Ordering::Acquire);
    let all_current = PARTICIPANTS[..limit].iter().all(|slot| {
        let state = slot.state.load(Ordering::SeqCst);
        state == 0 || (state >> 1) == epoch
    });
    if all_current {
        let _ = GLOBAL_EPOCH.compare_exchange(
            epoch,
            epoch.wrapping_add(1),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }
    {
        let mut orphans = ORPHANS.lock().expect("orphan list");
        garbage.append(&mut orphans);
    }
    let now = GLOBAL_EPOCH.load(Ordering::SeqCst);
    garbage.retain(|item| {
        if now.wrapping_sub(item.epoch) >= 2 {
            // Safety: unlinked at retirement and every thread pinned at
            // `item.epoch` (or earlier) has since unpinned — the epoch
            // cannot have advanced twice otherwise.
            unsafe { (item.drop_fn)(item.ptr) };
            false
        } else {
            true
        }
    });
}

// --- pointer types ----------------------------------------------------------

/// An owned, heap-allocated value not yet (or no longer) shared.
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Heap-allocates `value`.
    pub fn new(value: T) -> Owned<T> {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Converts into a [`Shared`] tied to `guard`'s lifetime, transferring
    /// ownership to the shared structure.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: `ptr` is a live Box allocation owned by self.
        unsafe { &*self.ptr }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: `ptr` is a live Box allocation owned exclusively by self.
        unsafe { &mut *self.ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // Safety: ownership was never transferred (those paths `forget`).
        drop(unsafe { Box::from_raw(self.ptr) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Owned({:?})", &**self)
    }
}

/// A pointer to shared memory, valid while its [`Guard`] lives.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr == other.ptr
    }
}

impl<T> Eq for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Shared<'g, T> {
        Shared {
            ptr: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether this pointer is null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and point to a live value reachable
    /// under the pin that produced it.
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*self.ptr }
    }

    /// Takes back ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access (e.g. inside `Drop`) and the
    /// pointer must be non-null and never again dereferenced elsewhere.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned { ptr: self.ptr }
    }

    /// The raw pointer value.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }
}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

/// Types that can be installed into an [`Atomic`]: [`Owned`] or [`Shared`].
pub trait Pointer<T> {
    /// Consumes self, yielding the raw pointer (ownership moves with it).
    fn into_ptr(self) -> *mut T;

    /// Reconstitutes the pointer type after a failed installation.
    ///
    /// # Safety
    ///
    /// `ptr` must be the value a prior `into_ptr` of the same logical
    /// pointer returned, with ownership unconsumed.
    unsafe fn from_ptr(ptr: *mut T) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let ptr = self.ptr;
        std::mem::forget(self);
        ptr
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Owned { ptr }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

/// The error type of [`Atomic::compare_exchange`], handing `new` back to
/// the caller for the retry (matching the real crate's shape).
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value actually observed in the atomic.
    pub current: Shared<'g, T>,
    /// The pointer that failed to install, returned to the caller.
    pub new: P,
}

/// An atomic pointer into epoch-managed shared memory.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub fn null() -> Atomic<T> {
        Atomic {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Heap-allocates `value` and points at it.
    pub fn new(value: T) -> Atomic<T> {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the pointer under `guard`'s protection.
    pub fn load<'g>(&self, ordering: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ordering),
            _marker: PhantomData,
        }
    }

    /// Stores `new`, transferring its ownership into the structure.
    pub fn store<P: Pointer<T>>(&self, new: P, ordering: Ordering) {
        self.ptr.store(new.into_ptr(), ordering);
    }

    /// Compare-and-swap: installs `new` if the current value is `current`.
    ///
    /// # Errors
    ///
    /// On failure, returns the observed value and hands `new` back.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self
            .ptr
            .compare_exchange(current.ptr, new_ptr, success, failure)
        {
            Ok(_) => Ok(Shared {
                ptr: new_ptr,
                _marker: PhantomData,
            }),
            Err(actual) => Err(CompareExchangeError {
                current: Shared {
                    ptr: actual,
                    _marker: PhantomData,
                },
                // Safety: installation failed, so ownership of `new_ptr`
                // never transferred; reconstituting it is sound.
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

// --- guards -----------------------------------------------------------------

/// Keeps the current thread's epoch pin alive; dropping unpins.
pub struct Guard {
    /// False for the [`unprotected`] guard, which never pins or unpins.
    pinned: bool,
}

impl Guard {
    /// Defers destruction of the value behind `shared` until no pinned
    /// thread can still hold a reference to it.
    ///
    /// # Safety
    ///
    /// `shared` must be non-null, unlinked from every shared location (no
    /// new readers can reach it), and deferred exactly once.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        unsafe fn drop_box<T>(ptr: *mut u8) {
            drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
        }
        let item = Deferred {
            ptr: shared.ptr.cast::<u8>(),
            drop_fn: drop_box::<T>,
            epoch: GLOBAL_EPOCH.load(Ordering::SeqCst),
        };
        if self.pinned {
            with_local(|local| {
                local.garbage.push(item);
                local.defers_since_collect += 1;
                if local.defers_since_collect >= COLLECT_THRESHOLD {
                    local.defers_since_collect = 0;
                    try_collect(&mut local.garbage);
                }
            });
        } else {
            // Unprotected guard (teardown paths): destroy immediately —
            // the caller asserts exclusive access.
            unsafe { (item.drop_fn)(item.ptr) };
        }
    }

    /// Collects deferred garbage opportunistically; exposed for tests.
    pub fn flush(&self) {
        if self.pinned {
            with_local(|local| try_collect(&mut local.garbage));
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.pinned {
            let _ = LOCAL.try_with(|local| {
                if let Some(local) = local.borrow_mut().as_mut() {
                    local.pin_count -= 1;
                    if local.pin_count == 0 {
                        PARTICIPANTS[local.slot].state.store(0, Ordering::SeqCst);
                    }
                }
            });
        }
    }
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Guard(pinned={})", self.pinned)
    }
}

/// Pins the current thread: until the returned [`Guard`] drops, no value
/// unlinked from now on will be destroyed out from under it.
pub fn pin() -> Guard {
    with_local(|local| {
        if local.pin_count == 0 {
            let slot = &PARTICIPANTS[local.slot];
            loop {
                let epoch = GLOBAL_EPOCH.load(Ordering::SeqCst);
                slot.state.store((epoch << 1) | 1, Ordering::SeqCst);
                // Re-validate: if the global epoch moved between the load
                // and the publication, re-pin at the new epoch so the
                // recorded epoch is never stale at birth.
                if GLOBAL_EPOCH.load(Ordering::SeqCst) == epoch {
                    break;
                }
            }
        }
        local.pin_count += 1;
    });
    Guard { pinned: true }
}

/// Returns a guard that does not pin, for use with exclusive access.
///
/// # Safety
///
/// Callers must guarantee no other thread can concurrently access the data
/// structure (e.g. inside `Drop` with `&mut self`). Deferred destructions
/// through this guard happen immediately.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { pinned: false };
    &UNPROTECTED
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    struct DropCounter(Arc<StdAtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn owned_round_trip() {
        let guard = pin();
        let owned = Owned::new(41_u64);
        let shared = owned.into_shared(&guard);
        assert_eq!(unsafe { *shared.deref() }, 41);
        drop(unsafe { shared.into_owned() });
    }

    #[test]
    fn cas_failure_returns_new() {
        let atomic = Atomic::new(1_u64);
        let guard = pin();
        let current = atomic.load(Ordering::Acquire, &guard);
        let stale = Shared::null();
        let err = atomic
            .compare_exchange(
                stale,
                Owned::new(2_u64),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            )
            .expect_err("stale expected value must fail");
        assert_eq!(*err.new, 2, "new handed back intact");
        assert_eq!(err.current, current);
        drop(err);
        // Clean up.
        let last = atomic.load(Ordering::Acquire, &guard);
        drop(unsafe { last.into_owned() });
    }

    #[test]
    fn deferred_destruction_happens_after_unpin() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let atomic = Atomic::new(DropCounter(Arc::clone(&drops)));
        {
            let guard = pin();
            let old = atomic.load(Ordering::Acquire, &guard);
            atomic.store(
                Owned::new(DropCounter(Arc::clone(&drops))),
                Ordering::Release,
            );
            unsafe { guard.defer_destroy(old) };
        }
        // Drive epochs forward from a clean (unpinned) state. Other tests
        // in this process may hold pins transiently, so spin with yields
        // rather than assuming a fixed number of flushes suffices.
        for _ in 0..100_000 {
            if drops.load(Ordering::SeqCst) == 1 {
                break;
            }
            let guard = pin();
            guard.flush();
            drop(guard);
            std::thread::yield_now();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "old value destroyed");
        let guard = unsafe { unprotected() };
        let last = atomic.load(Ordering::Relaxed, guard);
        drop(unsafe { last.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn pinned_reader_blocks_destruction() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let atomic = Arc::new(Atomic::new(DropCounter(Arc::clone(&drops))));

        // A reader thread pins and holds while we retire the value.
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let reader = {
            let atomic = Arc::clone(&atomic);
            std::thread::spawn(move || {
                let guard = pin();
                let shared = atomic.load(Ordering::Acquire, &guard);
                assert!(!shared.is_null());
                ready_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                drop(guard);
            })
        };
        ready_rx.recv().unwrap();

        {
            let guard = pin();
            let old = atomic.load(Ordering::Acquire, &guard);
            atomic.store(
                Owned::new(DropCounter(Arc::clone(&drops))),
                Ordering::Release,
            );
            unsafe { guard.defer_destroy(old) };
            for _ in 0..8 {
                guard.flush();
            }
            assert_eq!(drops.load(Ordering::SeqCst), 0, "reader still pinned");
        }

        release_tx.send(()).unwrap();
        reader.join().unwrap();
        for _ in 0..100_000 {
            if drops.load(Ordering::SeqCst) == 1 {
                break;
            }
            let guard = pin();
            guard.flush();
            drop(guard);
            std::thread::yield_now();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "destroyed after unpin");
        let guard = unsafe { unprotected() };
        let last = atomic.load(Ordering::Relaxed, guard);
        drop(unsafe { last.into_owned() });
    }
}
