//! Vendored minimal stand-in for the parts of `parking_lot` this workspace
//! uses, so the build works without network access to a registry.
//!
//! [`Mutex`] wraps [`std::sync::Mutex`] behind `parking_lot`'s
//! panic-free, guard-returning `lock()` signature. Poisoning is ignored
//! (as in the real crate): a panicked critical section hands the data to
//! the next locker as-is.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s API shape: `lock()`
/// returns the guard directly rather than a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1_u64);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_increments_are_exact() {
        let m = Arc::new(Mutex::new(0_u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0_u64);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
