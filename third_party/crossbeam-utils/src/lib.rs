//! Vendored minimal stand-in for the parts of `crossbeam-utils` this
//! workspace uses, so the build works without network access to a registry.
//!
//! Only [`CachePadded`] is provided; the API is signature-compatible with
//! the real crate for the call sites in this repository.

#![warn(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing false
/// sharing between adjacent hot atomics.
///
/// 128 bytes covers the spatial-prefetcher pairing on modern x86 as well as
/// the 128-byte lines on several aarch64 parts — the same conservative
/// choice the real crate makes on these targets.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns `value` to the cache-line length.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_cache_line_aligned() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(core::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn derefs_to_inner() {
        let mut padded = CachePadded::new(7_u64);
        assert_eq!(*padded, 7);
        *padded = 9;
        assert_eq!(padded.into_inner(), 9);
    }
}
