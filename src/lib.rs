//! # ms-queues
//!
//! A full reproduction of **M. M. Michael and M. L. Scott, "Simple, Fast,
//! and Practical Non-Blocking and Blocking Concurrent Queue Algorithms"**
//! (PODC 1996 / University of Rochester TR 600, 1995): the two contributed
//! algorithms, every baseline the paper compares against, and the
//! experimental apparatus that regenerates its three evaluation figures —
//! including a deterministic multiprocessor simulator standing in for the
//! paper's 12-processor SGI Challenge.
//!
//! This crate is a facade: it re-exports the workspace's public API.
//!
//! ## The contributions ([`mod@core`])
//!
//! * [`MsQueue`] / [`TwoLockQueue`] — idiomatic heap-allocated generic
//!   queues for downstream use (hazard-pointer reclamation, `parking_lot`
//!   locks respectively).
//! * [`WordMsQueue`] / [`WordTwoLockQueue`] — the paper's Figure 1 and
//!   Figure 2 pseudo-code, line for line, over the [`platform`]
//!   abstraction and an arena free list, runnable natively or simulated.
//! * [`SegQueue`] / [`WordSegQueue`] — beyond the paper: the same linked
//!   structure with array *segments* for nodes, so most operations are a
//!   single `fetch_add` instead of a CAS retry loop. Both expose bulk
//!   `enqueue_batch`/`dequeue_batch` operations that splice privately
//!   pre-filled segments with a single link CAS.
//! * [`ShardedQueue`] / [`WordShardedQueue`] — a relaxed-FIFO front-end
//!   striping load across independent seg-batched sub-queues behind
//!   thread-affine dispatch (per-shard FIFO, visible emptiness).
//!
//! ## The baselines ([`baselines`])
//!
//! [`SingleLockQueue`], [`McQueue`] (Mellor-Crummey), [`PljQueue`]
//! (Prakash–Lee–Johnson), [`ValoisQueue`], plus [`TreiberStack`] and
//! [`LamportQueue`].
//!
//! ## The apparatus
//!
//! * [`sim`] — deterministic virtual-time multiprocessor ([`Simulation`]),
//!   with seeded schedule perturbation ([`schedule_sweep`]).
//! * [`MemBudget`] — a process-global bound on live segments, shared
//!   across queues, with reclaim pressure and backpressure on exhaustion.
//! * [`harness`] — the Section 4 workload and figure sweeps
//!   ([`run_simulated`], [`run_figure`]).
//! * [`linearize`] — history recording and linearizability checking.
//!
//! ## Quickstart
//!
//! ```
//! use ms_queues::MsQueue;
//! use std::sync::Arc;
//!
//! let queue = Arc::new(MsQueue::new());
//! let handle = {
//!     let queue = Arc::clone(&queue);
//!     std::thread::spawn(move || queue.enqueue(42))
//! };
//! handle.join().unwrap();
//! assert_eq!(queue.dequeue(), Some(42));
//! ```

#![warn(missing_docs)]

pub mod guide;

pub use msq_arena as arena;
pub use msq_baselines as baselines;
pub use msq_core as core;
pub use msq_harness as harness;
pub use msq_hazard as hazard;
pub use msq_linearize as linearize;
pub use msq_platform as platform;
pub use msq_sim as sim;
pub use msq_sync as sync;

pub use msq_arena::{MemBudget, Reservation, SegArena};
pub use msq_baselines::{
    HerlihyQueue, LamportQueue, McQueue, PljQueue, RepairableMcQueue, RepairableSingleLockQueue,
    SingleLockQueue, TreiberStack, ValoisQueue,
};
pub use msq_core::{
    spsc_channel, EpochMsQueue, LockFreeStack, MsQueue, RepairableTwoLockQueue, SegConfig,
    SegQueue, SegStats, ShardedQueue, TwoLockQueue, WordMsQueue, WordSegQueue, WordShardedQueue,
    WordTwoLockQueue, DEFAULT_SHARDS,
};
pub use msq_harness::{
    percentile_ns, run_figure, run_native, run_native_batched, run_scenario_native,
    run_scenario_simulated, run_simulated, run_simulated_batched, run_simulated_faulted,
    run_simulated_recovered, run_simulated_repaired, Algorithm, BatchedScenario, FaultedPoint,
    MeasuredPoint, OpenLoopScenario, PairedScenario, PipelineScenario, PolicyScenario, Scenario,
    ScenarioCounters, ScenarioCtx, ScenarioOutcome, StealingScenario, WorkloadConfig,
};
pub use msq_linearize::{is_linearizable_queue, History, Recorder};
pub use msq_platform::{
    AtomicWord, Backoff, BackoffConfig, BatchFull, ConcurrentStack, ConcurrentWordQueue,
    NativePlatform, Platform, QueueFull, Tagged,
};
pub use msq_sim::{
    schedule_sweep, BlockedKind, FaultAction, FaultPlan, FaultSpec, FaultTrigger, RecoveryPolicy,
    RecoveryReport, RepairReport, SimConfig, SimPlatform, SimReport, Simulation,
};
pub use msq_sync::{
    Acquired, ClhLock, McsLock, RawLock, RevocableLock, TasLock, TicketLock, TokenLock, TtasLock,
};
