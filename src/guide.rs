//! # A guided tour: from the paper's pseudo-code to this crate
//!
//! This module contains no code — it is the map between Michael & Scott's
//! TR 600 and the implementation, for readers following along with the
//! paper.
//!
//! ## Figure 1 → [`WordMsQueue`](crate::WordMsQueue)
//!
//! The paper's non-blocking queue names three shared structures:
//!
//! ```text
//! structure pointer_t {ptr: pointer to node_t, count: unsigned integer}
//! structure node_t    {value: data type, next: pointer_t}
//! structure queue_t   {Head: pointer_t, Tail: pointer_t}
//! ```
//!
//! | Paper | Here |
//! |---|---|
//! | `pointer_t` (counted pointer) | [`Tagged`](crate::Tagged): `{index: u32, tag: u32}` in one 64-bit word — the paper's own suggestion to "use array indices instead of pointers, so that they may share a single word with a counter" |
//! | `node_t` pool + free list | [`arena::NodeArena`](crate::arena::NodeArena): one value cell and one tagged next cell per node, threaded through a Treiber-stack free list exactly as the paper prescribes ("We use Treiber's simple and efficient non-blocking stack algorithm to implement a non-blocking free list") |
//! | `queue_t` | [`WordMsQueue`](crate::WordMsQueue): `head` and `tail` cells plus the arena |
//! | `CAS(addr, expected, <new, count+1>)` | [`Tagged::with_index`](crate::Tagged::with_index) builds the counter-bumped word; `AtomicWord::cas` installs it |
//!
//! Every line `E1`–`E13` and `D1`–`D15` of the pseudo-code appears as a
//! comment at the corresponding statement in
//! `crates/core/src/word_ms.rs`; the dequeue's load-bearing subtlety —
//! *read the value before the CAS* (D11), because afterwards another
//! dequeuer may free and reuse the node — is preserved and tested by
//! node-recycling tests that push 10,000 values through a two-node pool.
//!
//! ## Figure 2 → [`WordTwoLockQueue`](crate::WordTwoLockQueue)
//!
//! The two-lock queue keeps the dummy node so "enqueuers never have to
//! access Head, and dequeuers never have to access Tail": `H_lock` and
//! `T_lock` are [`sync::TtasLock`](crate::sync::TtasLock)s —
//! test-and-test_and_set with bounded exponential backoff, the lock used
//! in the paper's experiments. The heap-allocated
//! [`TwoLockQueue`](crate::TwoLockQueue) is the same algorithm with
//! `parking_lot` mutexes and `Box`ed nodes.
//!
//! ## Section 3 (correctness) → executable checks
//!
//! * Safety properties 1–5 (list connectivity, insert-at-end,
//!   delete-at-front, Head/Tail invariants) manifest as conservation and
//!   per-producer-FIFO assertions in `tests/correctness_native.rs` and
//!   `tests/correctness_sim.rs`.
//! * Linearizability (§3.2) is checked mechanically:
//!   [`Recorder`](crate::Recorder) captures real interleavings and
//!   [`is_linearizable_queue`](crate::is_linearizable_queue) runs the
//!   Wing–Gong search against
//!   [`linearize::SequentialQueue`](crate::linearize::SequentialQueue).
//! * Non-blocking liveness (§3.3) shows up as the multiprogrammed
//!   experiments: stalled processes do not stop the non-blocking queues
//!   (`tests/figure_shapes.rs`).
//!
//! ## Section 4 (performance) → [`harness`](crate::harness) + [`sim`](crate::sim)
//!
//! The paper's 12-processor SGI Challenge is replaced by
//! [`Simulation`](crate::Simulation), a deterministic virtual-time
//! multiprocessor with an invalidation-based cache cost model and
//! quantum-preemptive scheduling (see `DESIGN.md` §5). The workload loop
//! — enqueue, ~6 µs of "other work", dequeue, more other work, for 10⁶/p
//! iterations per process — is
//! [`run_simulated`](crate::run_simulated) /
//! [`run_native`](crate::run_native), and
//! `cargo run -p msq-harness --release --bin figures` regenerates
//! Figures 3–5 (results in `EXPERIMENTS.md`).
//!
//! ## The baselines (Section 1's related work)
//!
//! | Paper reference | Here |
//! |---|---|
//! | "straightforward single-lock queue" | [`SingleLockQueue`](crate::SingleLockQueue) |
//! | Mellor-Crummey \[11\] | [`McQueue`](crate::McQueue) — `fetch_and_store`-modify sequence, ABA-immune but blocking |
//! | Prakash, Lee & Johnson \[16\] | [`PljQueue`](crate::PljQueue) — two-variable snapshot + helping |
//! | Valois \[24\] + corrected memory management \[13\] | [`ValoisQueue`](crate::ValoisQueue) over [`arena::RcArena`](crate::arena::RcArena) |
//! | Treiber's stack \[21\] | [`TreiberStack`](crate::TreiberStack) (word/arena) and [`LockFreeStack`](crate::LockFreeStack) (generic) |
//! | Lamport's SPSC queue \[9\] | [`LamportQueue`](crate::LamportQueue) (word) and [`core::spsc`](crate::core::spsc) (typed, statically SPSC) |
//! | MCS locks \[12\] | [`sync::McsLock`](crate::sync::McsLock) / [`sync::ClhLock`](crate::sync::ClhLock) |
//!
//! ## Choosing a queue (the paper's conclusions, in API terms)
//!
//! * Machine with universal atomics (every modern CPU), any workload:
//!   [`MsQueue`](crate::MsQueue) — "the clear algorithm of choice".
//! * Heavily-used queue, no universal atomic primitive, dedicated
//!   machine: [`TwoLockQueue`](crate::TwoLockQueue).
//! * Queue touched by only one or two threads: a single lock "will run a
//!   little faster" — `Mutex<VecDeque>`; and if the two threads are one
//!   producer and one consumer, [`spsc_channel`](crate::spsc_channel)
//!   beats everything without a single atomic RMW.
