//! Quickstart: the idiomatic Michael–Scott queue as a work channel.
//!
//! Four producers and two consumers share one lock-free `MsQueue<Job>`;
//! nothing blocks, values are never lost or duplicated.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ms_queues::MsQueue;

#[derive(Debug)]
struct Job {
    producer: usize,
    payload: u64,
}

fn main() {
    const PRODUCERS: usize = 4;
    const JOBS_EACH: u64 = 25_000;

    let queue: Arc<MsQueue<Job>> = Arc::new(MsQueue::new());
    let done_producing = Arc::new(AtomicBool::new(false));
    let processed = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|producer| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for payload in 0..JOBS_EACH {
                    queue.enqueue(Job { producer, payload });
                }
            })
        })
        .collect();

    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let done_producing = Arc::clone(&done_producing);
            let processed = Arc::clone(&processed);
            let checksum = Arc::clone(&checksum);
            std::thread::spawn(move || loop {
                match queue.dequeue() {
                    Some(job) => {
                        checksum.fetch_add(job.payload + job.producer as u64, Ordering::Relaxed);
                        processed.fetch_add(1, Ordering::Relaxed);
                    }
                    None if done_producing.load(Ordering::Acquire) => break,
                    None => std::hint::spin_loop(),
                }
            })
        })
        .collect();

    for p in producers {
        p.join().expect("producer");
    }
    done_producing.store(true, Ordering::Release);
    for c in consumers {
        c.join().expect("consumer");
    }

    let expected_jobs = PRODUCERS as u64 * JOBS_EACH;
    let expected_checksum = PRODUCERS as u64 * (0..JOBS_EACH).sum::<u64>()
        + (0..PRODUCERS as u64).sum::<u64>() * JOBS_EACH;
    assert_eq!(processed.load(Ordering::Relaxed), expected_jobs);
    assert_eq!(checksum.load(Ordering::Relaxed), expected_checksum);
    println!(
        "processed {} jobs from {} producers across 2 consumers — checksum OK",
        expected_jobs, PRODUCERS
    );
    assert!(queue.is_empty());
}
