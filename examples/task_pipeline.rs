//! A three-stage processing pipeline glued together with MS queues — the
//! "queues are ubiquitous in parallel programs" workload the paper's
//! introduction motivates.
//!
//! Stage 1 parses raw records, stage 2 enriches them, stage 3 aggregates;
//! each stage runs on its own threads and hands work to the next through a
//! lock-free `MsQueue`. A `TwoLockQueue` would drop in identically (both
//! implement the same shape of API); swap `type Chan<T>` to compare.
//!
//! ```text
//! cargo run --example task_pipeline
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ms_queues::MsQueue;

type Chan<T> = MsQueue<T>;

#[derive(Debug)]
struct Raw(String);

#[derive(Debug)]
struct Parsed {
    key: u64,
    weight: u64,
}

fn main() {
    const RECORDS: u64 = 50_000;

    let raw: Arc<Chan<Raw>> = Arc::new(Chan::new());
    let parsed: Arc<Chan<Parsed>> = Arc::new(Chan::new());
    let stage1_done = Arc::new(AtomicBool::new(false));
    let stage2_done = Arc::new(AtomicBool::new(false));

    // Stage 0: source.
    let source = {
        let raw = Arc::clone(&raw);
        std::thread::spawn(move || {
            for i in 0..RECORDS {
                raw.enqueue(Raw(format!("{i}:{}", i % 97)));
            }
        })
    };

    // Stage 1: two parser threads.
    let parsers: Vec<_> = (0..2)
        .map(|_| {
            let raw = Arc::clone(&raw);
            let parsed = Arc::clone(&parsed);
            let stage1_done = Arc::clone(&stage1_done);
            std::thread::spawn(move || loop {
                match raw.dequeue() {
                    Some(Raw(line)) => {
                        let (key, weight) = line.split_once(':').expect("well-formed");
                        parsed.enqueue(Parsed {
                            key: key.parse().expect("numeric key"),
                            weight: weight.parse().expect("numeric weight"),
                        });
                    }
                    None if stage1_done.load(Ordering::Acquire) => break,
                    None => std::hint::spin_loop(),
                }
            })
        })
        .collect();

    // Stage 2: two aggregator threads.
    let total = Arc::new(AtomicU64::new(0));
    let count = Arc::new(AtomicU64::new(0));
    let aggregators: Vec<_> = (0..2)
        .map(|_| {
            let parsed = Arc::clone(&parsed);
            let stage2_done = Arc::clone(&stage2_done);
            let total = Arc::clone(&total);
            let count = Arc::clone(&count);
            std::thread::spawn(move || loop {
                match parsed.dequeue() {
                    Some(record) => {
                        total.fetch_add(record.key + record.weight, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                    None if stage2_done.load(Ordering::Acquire) => break,
                    None => std::hint::spin_loop(),
                }
            })
        })
        .collect();

    source.join().expect("source");
    stage1_done.store(true, Ordering::Release);
    for p in parsers {
        p.join().expect("parser");
    }
    stage2_done.store(true, Ordering::Release);
    for a in aggregators {
        a.join().expect("aggregator");
    }

    let expected: u64 = (0..RECORDS).map(|i| i + i % 97).sum();
    assert_eq!(count.load(Ordering::Relaxed), RECORDS);
    assert_eq!(total.load(Ordering::Relaxed), expected);
    println!(
        "pipeline processed {RECORDS} records; aggregate {} (verified)",
        expected
    );
}
