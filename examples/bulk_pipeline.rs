//! A bulk producer/consumer pipeline: what batch splicing and sharding
//! buy over per-op traffic on the same hand-off pattern.
//!
//! Stage 1 threads produce records in batches; stage 2 threads drain them
//! in batches and fold them into a checksum. The same pipeline runs three
//! ways:
//!
//! 1. `SegQueue` with per-op `enqueue`/`dequeue` — one `fetch_add` plus a
//!    slot handshake per value;
//! 2. `SegQueue` with `enqueue_batch`/`dequeue_batch` — producers fill
//!    private segments and splice whole chains with one link CAS, while
//!    consumers claim a run of slots with one index CAS;
//! 3. `ShardedQueue` (4 shards) with the same batch calls — hot words are
//!    striped across shards, at the price of FIFO order only *within* a
//!    shard (each producer stays on its home shard, so per-producer order
//!    still holds; cross-producer order is deliberately given up).
//!
//! ```text
//! cargo run --release --example bulk_pipeline
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ms_queues::{SegQueue, ShardedQueue};

const PRODUCERS: u64 = 2;
const CONSUMERS: u64 = 2;
const ROUNDS: u64 = 2_000;
const BATCH: u64 = 64;

/// Drives the two-stage pipeline through any queue given batch-shaped
/// closures, and checks every value arrives exactly once.
fn drive<Q: Send + Sync + 'static>(
    queue: Arc<Q>,
    enqueue_batch: impl Fn(&Q, &[u64]) + Send + Sync + Copy + 'static,
    dequeue_batch: impl Fn(&Q, &mut Vec<u64>, usize) -> usize + Send + Sync + Copy + 'static,
) -> Duration {
    let total = PRODUCERS * ROUNDS * BATCH;
    let checksum = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        handles.push(std::thread::spawn(move || {
            let mut values = Vec::with_capacity(BATCH as usize);
            for round in 0..ROUNDS {
                values.clear();
                let base = t * ROUNDS * BATCH + round * BATCH;
                values.extend(base + 1..=base + BATCH);
                enqueue_batch(&queue, &values);
            }
        }));
    }
    for _ in 0..CONSUMERS {
        let queue = Arc::clone(&queue);
        let checksum = Arc::clone(&checksum);
        let delivered = Arc::clone(&delivered);
        handles.push(std::thread::spawn(move || {
            let mut out: Vec<u64> = Vec::with_capacity(BATCH as usize);
            let mut local = 0_u64;
            while delivered.load(Ordering::Relaxed) < total {
                let taken = dequeue_batch(&queue, &mut out, BATCH as usize);
                if taken == 0 {
                    std::hint::spin_loop();
                    continue;
                }
                local += out.iter().sum::<u64>();
                out.clear();
                delivered.fetch_add(taken as u64, Ordering::Relaxed);
            }
            checksum.fetch_add(local, Ordering::SeqCst);
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let elapsed = start.elapsed();
    assert_eq!(
        checksum.load(Ordering::SeqCst),
        (1..=total).sum::<u64>(),
        "every value delivered exactly once"
    );
    elapsed
}

fn main() {
    let total = PRODUCERS * ROUNDS * BATCH;
    println!(
        "pipeline: {PRODUCERS} producers -> {CONSUMERS} consumers, \
         {total} values in batches of {BATCH}\n"
    );

    let per_op: Arc<SegQueue<u64>> = Arc::new(SegQueue::new());
    let per_op_elapsed = drive(
        per_op,
        |q, values| {
            for &v in values {
                q.enqueue(v);
            }
        },
        |q, out, max| {
            let mut taken = 0;
            while taken < max {
                match q.dequeue() {
                    Some(v) => {
                        out.push(v);
                        taken += 1;
                    }
                    None => break,
                }
            }
            taken
        },
    );
    println!("seg-queue, per-op calls:   {per_op_elapsed:?}");

    let batched: Arc<SegQueue<u64>> = Arc::new(SegQueue::new());
    let batched_elapsed = drive(
        batched,
        |q, values| q.enqueue_batch(values),
        |q, out, max| q.dequeue_batch(out, max),
    );
    println!("seg-queue, batch splices:  {batched_elapsed:?}");

    let sharded: Arc<ShardedQueue<u64>> = Arc::new(ShardedQueue::new());
    let sharded_elapsed = drive(
        Arc::clone(&sharded),
        |q, values| q.enqueue_batch(values),
        |q, out, max| q.dequeue_batch(out, max),
    );
    println!(
        "sharded ({} shards), batch: {sharded_elapsed:?}",
        sharded.shards()
    );

    println!(
        "\nbatching turns {BATCH} tail handshakes into one splice CAS; \
         sharding then spreads the remaining hot words across {} \
         independent sub-queues (per-shard FIFO only).",
        sharded.shards()
    );
}
