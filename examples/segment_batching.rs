//! Segment batching: what one `fetch_add` per operation buys.
//!
//! Runs the same mixed producer/consumer workload through the paper's
//! Michael–Scott queue (`MsQueue`) and the segment-batched extension
//! (`SegQueue`), then shows the segment-lifecycle counters: with 32-slot
//! segments the expensive link/unlink CAS machinery runs once every 32
//! operations, and drained segments are recycled through a small pool
//! instead of round-tripping the allocator — the paper's node free list,
//! at segment granularity.
//!
//! Each thread alternates enqueue and dequeue bursts so the backlog stays
//! bounded; a pure fill-then-drain run would never reuse a segment (every
//! take happens before the first retire), which says nothing about the
//! pool.
//!
//! ```text
//! cargo run --release --example segment_batching
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ms_queues::{MsQueue, SegConfig, SegQueue};

const THREADS: u64 = 4;
const ROUNDS: u64 = 1_000;
const BURST: u64 = 100;

fn drive<Q: Send + Sync + 'static>(
    queue: Arc<Q>,
    enqueue: impl Fn(&Q, u64) + Send + Sync + Copy + 'static,
    dequeue: impl Fn(&Q) -> Option<u64> + Send + Sync + Copy + 'static,
) -> std::time::Duration {
    let total = THREADS * ROUNDS * BURST;
    let checksum = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let queue = Arc::clone(&queue);
        let checksum = Arc::clone(&checksum);
        handles.push(std::thread::spawn(move || {
            let mut local = 0_u64;
            for round in 0..ROUNDS {
                for i in 0..BURST {
                    enqueue(&queue, t * ROUNDS * BURST + round * BURST + i + 1);
                }
                for _ in 0..BURST {
                    loop {
                        if let Some(v) = dequeue(&queue) {
                            local += v;
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            checksum.fetch_add(local, Ordering::SeqCst);
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let elapsed = start.elapsed();
    assert_eq!(
        checksum.load(Ordering::SeqCst),
        (1..=total).sum::<u64>(),
        "every value delivered exactly once"
    );
    elapsed
}

fn main() {
    let total = THREADS * ROUNDS * BURST;

    let ms: Arc<MsQueue<u64>> = Arc::new(MsQueue::new());
    let ms_elapsed = drive(ms, |q, v| q.enqueue(v), |q| q.dequeue());
    println!("ms-queue     (one node + 2 CAS per op):    {total} values in {ms_elapsed:?}");

    let seg: Arc<SegQueue<u64>> = Arc::new(SegQueue::with_config(SegConfig {
        seg_size: 32,
        pool_limit: 8,
        ..SegConfig::DEFAULT
    }));
    let seg_elapsed = drive(Arc::clone(&seg), |q, v| q.enqueue(v), |q| q.dequeue());
    println!("seg-batched  (fetch_add, CAS every 32 ops): {total} values in {seg_elapsed:?}");

    let stats = seg.stats();
    let segments_consumed = total / 32;
    println!();
    println!("segment lifecycle for ~{segments_consumed} drained segments:");
    println!("  allocated fresh : {}", stats.segs_allocated);
    println!("  recycled (pool) : {}", stats.segs_pooled);
    println!("  retired (hazard): {}", stats.segs_retired);
    println!();
    println!(
        "{} of ~{} segment appends were served from the pool — the paper's \
         type-stable free list, at segment granularity",
        stats.segs_pooled, segments_consumed
    );
}
