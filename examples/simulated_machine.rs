//! Drive all six queue algorithms on the simulated multiprocessor and
//! print a miniature Figure 3 (dedicated machine, small op count).
//!
//! For the full-size reproduction use the harness binary:
//! `cargo run -p msq-harness --release --bin figures`.
//!
//! ```text
//! cargo run --release --example simulated_machine
//! ```

use ms_queues::{run_simulated, Algorithm, SimConfig, WorkloadConfig};

fn main() {
    let workload = WorkloadConfig {
        pairs_total: 4_000,
        other_work_ns: 6_000,
        capacity: 1_024,
        mem_budget: None,
    };
    let processors = [1, 2, 4, 8];
    println!(
        "net time (s per 10^6 pairs), dedicated machine, {} pairs\n",
        workload.pairs_total
    );
    print!("{:<16}", "algorithm");
    for p in processors {
        print!(" p={p:<7}");
    }
    println!();
    for algorithm in Algorithm::ALL {
        print!("{:<16}", algorithm.label());
        for p in processors {
            let point = run_simulated(
                algorithm,
                SimConfig {
                    processors: p,
                    ..SimConfig::default()
                },
                &workload,
            );
            print!(" {:<9.3}", point.net_secs_per_million_pairs());
        }
        println!();
    }
    println!(
        "\nExpect the paper's shape: the new non-blocking queue leads beyond ~3\n\
         processors; the two-lock queue beats the single lock at higher counts;\n\
         Valois pays its reference-counting tax everywhere."
    );
}
