//! Checking linearizability of real executions — Section 3.2 as a demo.
//!
//! Records genuinely concurrent operations against the MS queue, runs the
//! fast whole-history safety checks, and then the exhaustive Wing–Gong
//! search on small windows. Also shows the checker *catching* a broken
//! "queue" (a stack pretending to be one), so you can see a failure.
//!
//! ```text
//! cargo run --release --example linearizability_check
//! ```

use std::sync::Arc;

use ms_queues::platform::ConcurrentStack;
use ms_queues::{
    is_linearizable_queue, Algorithm, ConcurrentWordQueue, NativePlatform, QueueFull, Recorder,
    TreiberStack,
};

fn main() {
    // --- a real queue: every recorded window must linearize -----------
    let platform = NativePlatform::new();
    let mut windows_checked = 0;
    for round in 0..40_u64 {
        let queue = Algorithm::NewNonBlocking.build(&platform, 64);
        let recorder = Recorder::new();
        let mut handles = Vec::new();
        for thread in 0..3_u64 {
            let queue = Arc::clone(&queue);
            let mut handle = recorder.handle(thread as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_u64 {
                    handle
                        .enqueue(&*queue, (round << 16) | (thread << 8) | i)
                        .expect("capacity");
                    handle.dequeue(&*queue);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("worker");
        }
        let history = recorder.finish();
        assert!(history.check_queue_safety().is_empty());
        assert!(is_linearizable_queue(history.events()));
        windows_checked += 1;
    }
    println!("MS queue: {windows_checked} concurrent windows, all linearizable as a FIFO queue");

    // --- a stack wearing a queue costume: caught immediately ----------
    struct StackAsQueue(TreiberStack<NativePlatform>);
    impl ConcurrentWordQueue for StackAsQueue {
        fn enqueue(&self, value: u64) -> Result<(), QueueFull> {
            self.0.push(value)
        }
        fn dequeue(&self) -> Option<u64> {
            self.0.pop()
        }
        fn name(&self) -> &'static str {
            "stack-in-disguise"
        }
        fn is_nonblocking(&self) -> bool {
            true
        }
    }

    let imposter = StackAsQueue(TreiberStack::with_capacity(&platform, 16));
    let recorder = Recorder::new();
    let mut handle = recorder.handle(0);
    handle.enqueue(&imposter, 1).unwrap();
    handle.enqueue(&imposter, 2).unwrap();
    handle.dequeue(&imposter); // returns 2: LIFO, not FIFO
    handle.dequeue(&imposter);
    drop(handle);
    let history = recorder.finish();
    let violations = history.check_queue_safety();
    let linearizable = is_linearizable_queue(history.events());
    println!(
        "stack-in-disguise: fast checks found {} violation(s); Wing-Gong verdict: linearizable = {}",
        violations.len(),
        linearizable
    );
    for violation in &violations {
        println!("  - {violation}");
    }
    assert!(
        !linearizable,
        "a LIFO history must not pass as a FIFO queue"
    );
}
