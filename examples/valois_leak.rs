//! Reproduces the paper's Valois memory-exhaustion experiment.
//!
//! Section 1: "In experiments with a queue of maximum length 12 items, we
//! ran out of memory several times during runs of ten million enqueues and
//! dequeues, using a free list initialized with 64,000 nodes." The cause:
//! a delayed process holding a single node reference pins that node *and
//! all of its successors*, so churn devours any finite pool.
//!
//! This example stalls one reader while another thread churns a
//! max-12-item queue against a 64,000-node pool, and reports how many
//! operations it took to exhaust it. The Michael–Scott queue running the
//! identical workload afterwards never needs more than 13 nodes.
//!
//! ```text
//! cargo run --release --example valois_leak
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ms_queues::{ConcurrentWordQueue, NativePlatform, ValoisQueue, WordMsQueue};

const POOL: u32 = 64_000;
const MAX_QUEUE_LEN: u64 = 12;
const OPS_BUDGET: u64 = 10_000_000;

fn churn(queue: &dyn ConcurrentWordQueue, ops: u64) -> Result<u64, u64> {
    let mut performed = 0;
    let mut len = 0u64;
    for i in 0..ops {
        if len < MAX_QUEUE_LEN {
            if queue.enqueue(i).is_err() {
                return Err(performed);
            }
            len += 1;
        } else {
            queue.dequeue().expect("queue holds items");
            len -= 1;
        }
        performed += 1;
    }
    Ok(performed)
}

fn main() {
    let platform = NativePlatform::new();

    // --- Valois with a stalled reader ---------------------------------
    let valois = Arc::new(ValoisQueue::with_capacity(&platform, POOL));
    valois.enqueue(0).unwrap();
    let stalled = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let reader = {
        let valois = Arc::clone(&valois);
        let stalled = Arc::clone(&stalled);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            valois.with_pinned_head(|| {
                stalled.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
        })
    };
    while !stalled.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    match churn(&*valois, OPS_BUDGET) {
        Err(done) => println!(
            "Valois queue: pool of {POOL} nodes EXHAUSTED after {done} operations\n\
             (queue never held more than {MAX_QUEUE_LEN} items — the paper's failure mode)"
        ),
        Ok(done) => {
            println!("Valois queue: survived {done} operations (increase OPS_BUDGET to reproduce)")
        }
    }
    release.store(true, Ordering::Release);
    reader.join().expect("reader");

    // --- Michael–Scott on the identical workload ----------------------
    // Capacity of just max-len + 1 suffices: dequeued nodes are reusable
    // immediately.
    let ms = WordMsQueue::with_capacity(&platform, (MAX_QUEUE_LEN + 1) as u32);
    match churn(&ms, OPS_BUDGET) {
        Ok(done) => println!(
            "Michael-Scott queue: completed all {done} operations with a pool of only {} nodes",
            MAX_QUEUE_LEN + 1
        ),
        Err(done) => unreachable!("MS queue exhausted after {done} ops — should be impossible"),
    }
}
