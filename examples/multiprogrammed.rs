//! Why non-blocking matters: blocking vs non-blocking queues under
//! multiprogramming (the story of Figures 4 and 5) on the simulator.
//!
//! Runs the paper's workload on a simulated 4-processor machine at 1, 2,
//! and 3 processes per processor and prints the slowdown each algorithm
//! suffers. Blocking algorithms degrade dramatically — a preempted lock
//! holder stalls everyone for up to a 10 ms quantum — while the
//! non-blocking queues degrade only in proportion to lost CPU time.
//!
//! ```text
//! cargo run --release --example multiprogrammed
//! ```

use ms_queues::{run_simulated, Algorithm, SimConfig, WorkloadConfig};

fn main() {
    let workload = WorkloadConfig {
        pairs_total: 4_000,
        other_work_ns: 6_000,
        capacity: 2_048,
        mem_budget: None,
    };
    // The paper ran 10^6 pairs against a 10 ms quantum; with the op count
    // scaled down 250x, scale the quantum (and switch cost) to match so
    // each process still experiences many preemptions over its lifetime.
    let quantum_ns = 10_000_000 * workload.pairs_total / 1_000_000;
    let processors = 4;
    println!("net time (s per 10^6 pairs) on a simulated {processors}-processor machine\n");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>18}",
        "algorithm", "dedicated", "2x multi", "3x multi", "slowdown (3x/1x)"
    );
    for algorithm in Algorithm::ALL {
        let mut nets = Vec::new();
        for processes_per_processor in 1..=3 {
            let point = run_simulated(
                algorithm,
                SimConfig {
                    processors,
                    processes_per_processor,
                    quantum_ns,
                    ctx_switch_ns: quantum_ns / 400, // paper ratio: 25 µs : 10 ms
                    ..SimConfig::default()
                },
                &workload,
            );
            nets.push(point.net_secs_per_million_pairs());
        }
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>17.1}x{}",
            algorithm.label(),
            nets[0],
            nets[1],
            nets[2],
            nets[2] / nets[0],
            if algorithm.is_nonblocking() {
                "   (non-blocking)"
            } else {
                "   (blocking)"
            }
        );
    }
}
